//! Implementation of the `geoalign` command-line tool.
//!
//! Subcommands:
//!
//! * `crosswalk` — realign an aggregate table from its source units to the
//!   target units of one or more reference crosswalk files;
//! * `evaluate` — additionally compare the estimate against a ground-truth
//!   table and report RMSE / NRMSE;
//! * `weights` — print only the learned reference weights;
//! * `profile` — run the crosswalk pipeline repeatedly under the
//!   std-only sampling profiler and emit collapsed stacks plus a
//!   top-phases table (`geoalign-obs`);
//! * `serve` — run the batch crosswalk HTTP service (`geoalign-serve`);
//! * `store` — administer a durable store directory (`geoalign-store`):
//!   initialise, inspect, compact, or verify it offline;
//! * `agg` — inspect or merge mergeable aggregate states
//!   (`geoalign-agg`), either standalone state files or the streaming
//!   rollups inside a durable store.
//!
//! All inputs are CSV: aggregate tables are `unit,value` with a header,
//! crosswalk files are `source,target,value` (the HUD USPS crosswalk
//! shape). The estimate is written as a `unit,value` table.

#![warn(missing_docs)]

use geoalign_core::{CoreError, GeoAlign, PhaseTimings, ReferenceData};
use geoalign_linalg::stats;
use geoalign_partition::{AggregateTable, CrosswalkTable, UnitIndex};
use std::fmt::Write as _;

/// Errors surfaced to the CLI user with exit code 1.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O failure reading or writing a file.
    Io(String, std::io::Error),
    /// Parse or algorithm failure.
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(path, e) => write!(f, "cannot access '{path}': {e}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Run(e.to_string())
    }
}

/// Parsed command line for the crosswalk-style subcommands.
#[derive(Debug, Clone)]
pub struct CrosswalkArgs {
    /// Path of the objective aggregate table.
    pub table: String,
    /// Paths of the reference crosswalk files (at least one).
    pub references: Vec<String>,
    /// Optional ground-truth table for `evaluate`.
    pub truth: Option<String>,
    /// Output path (stdout when absent).
    pub out: Option<String>,
    /// Print the learned weights to stderr.
    pub show_weights: bool,
    /// Print per-phase wall-clock timings to stderr.
    pub show_timings: bool,
    /// Write JSON-lines span records of the run to this path.
    pub trace: Option<String>,
    /// Override of the process-wide thread budget (`--threads`).
    pub threads: Option<usize>,
}

/// Usage text.
pub const USAGE: &str = "\
geoalign — multi-reference crosswalk of aggregate tables (GeoAlign, EDBT 2018)

USAGE:
    geoalign crosswalk --table T.csv --reference X1.csv [--reference X2.csv ...]
                       [--out OUT.csv] [--weights] [--timings] [--trace SPANS.jsonl]
                       [--threads N]
    geoalign evaluate  --table T.csv --reference X1.csv [...] --truth TRUE.csv
    geoalign weights   --table T.csv --reference X1.csv [...]
    geoalign profile   --table T.csv --reference X1.csv [...]
                       [--hz HZ] [--rounds N] [--out STACKS.txt] [--top N]
                       [--threads N]
    geoalign serve     [--addr HOST:PORT] [--workers N] [--cache-capacity M]
                       [--access-log LOG.jsonl] [--threads N]
                       [--max-connections N] [--idle-timeout SECS]
                       [--max-requests-per-conn N] [--drain-timeout SECS]
                       [--event-loop epoll|poll] [--data-dir DIR]
                       [--debug-endpoints]
    geoalign store     <init|inspect|compact|verify> --data-dir DIR
    geoalign agg       inspect (FILE | --data-dir DIR)
    geoalign agg       merge OUT.aggstate IN1.aggstate [IN2.aggstate ...]

FLAGS:
    --timings          print per-phase wall-clock timings to stderr
    --trace            write JSON-lines span records of the run to a file
    --threads          process-wide thread budget for parallel work
                       (default: GEOALIGN_THREADS, else available parallelism;
                       results are bit-identical at any setting)
    --addr             serve: listen address (default 127.0.0.1:8077)
    --workers          serve: compute worker threads (default: the thread
                       budget); bounds concurrent request execution only —
                       idle connections don't hold workers
    --cache-capacity   serve: prepared-crosswalk cache size (default 64)
    --access-log       serve: append one JSON line per request to a file
    --max-connections  serve: open connections admitted beyond the workers
                       (cap = workers + N); arrivals past the cap are shed
                       with 503 (default 128)
    --idle-timeout     serve: seconds a keep-alive connection may idle, and
                       the stalled-request deadline (default 30)
    --max-requests-per-conn
                       serve: requests served over one connection before the
                       server closes it (default 1000)
    --drain-timeout    serve: seconds shutdown waits for in-flight requests
                       before force-closing their connections (default 5)
    --event-loop       serve: readiness backend for the connection reactor,
                       epoll (default) or poll
    --data-dir         serve: durable store directory; registrations and
                       prepared crosswalks survive restarts (snapshot + WAL)
                       store: the directory the subcommand operates on
    --debug-endpoints  serve: enable GET /debug/{profile,spans,slow,threads}
                       (off by default; they 404 when disabled)
    --hz               profile: sampling frequency (default 997)
    --rounds           profile: pipeline repetitions under the profiler
                       (default 20)
    --top              profile: rows in the stderr phase table (default 10)
    --out              profile: write collapsed stacks here instead of
                       stdout (feed to flamegraph.pl)

STORE SUBCOMMANDS:
    store init      create an empty durable store (fails on a non-empty dir)
    store inspect   open the store (running recovery) and summarise contents
    store compact   flush the WAL into a fresh snapshot and drop old segments
    store verify    read-only structural check; exits 1 on any defect

AGG SUBCOMMANDS:
    agg inspect FILE           decode one mergeable aggregate state file
                               (the versioned `AggState` codec) and summarise it
    agg inspect --data-dir DIR open a durable store and summarise every
                               streaming-ingest rollup under agg/
    agg merge OUT IN [IN ...]  merge state files into OUT; the merge is
                               commutative and associative, so any order and
                               grouping writes the identical bytes

FILES:
    aggregate tables:  CSV `unit,value` with a header line
    crosswalk files:   CSV `source,target,value` with a header line
                       (the value is the reference attribute's aggregate in
                       each source∩target intersection, e.g. population)
";

/// Parses the flags shared by all subcommands.
pub fn parse_args(args: &[String]) -> Result<CrosswalkArgs, CliError> {
    let mut table = None;
    let mut references = Vec::new();
    let mut truth = None;
    let mut out = None;
    let mut show_weights = false;
    let mut show_timings = false;
    let mut trace = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => table = Some(need(&mut it, "--table")?),
            "--reference" => references.push(need(&mut it, "--reference")?),
            "--truth" => truth = Some(need(&mut it, "--truth")?),
            "--out" => out = Some(need(&mut it, "--out")?),
            "--weights" => show_weights = true,
            "--timings" => show_timings = true,
            "--trace" => trace = Some(need(&mut it, "--trace")?),
            "--threads" => threads = Some(positive(&mut it, "--threads")?),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    let table = table.ok_or_else(|| CliError::Usage("--table is required".into()))?;
    if references.is_empty() {
        return Err(CliError::Usage(
            "at least one --reference is required".into(),
        ));
    }
    Ok(CrosswalkArgs {
        table,
        references,
        truth,
        out,
        show_weights,
        show_timings,
        trace,
        threads,
    })
}

/// Parsed command line for `geoalign serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address.
    pub addr: String,
    /// Worker thread count override; `None` follows the process-wide
    /// thread budget ([`geoalign_exec::global_threads`]).
    pub workers: Option<usize>,
    /// Prepared-crosswalk cache capacity.
    pub cache_capacity: usize,
    /// JSON-lines access-log path (`--access-log`); `None` disables it.
    pub access_log: Option<String>,
    /// Override of the process-wide thread budget (`--threads`).
    pub threads: Option<usize>,
    /// Connections queued for a worker before new arrivals are shed
    /// with 503 (`--max-connections`).
    pub max_connections: usize,
    /// Seconds a keep-alive connection may idle — also the stalled-
    /// request read deadline (`--idle-timeout`).
    pub idle_timeout_secs: u64,
    /// Requests served over one connection before the server closes it
    /// (`--max-requests-per-conn`).
    pub max_requests_per_conn: usize,
    /// Seconds shutdown waits for in-flight requests before force-closing
    /// their connections (`--drain-timeout`).
    pub drain_timeout_secs: u64,
    /// Readiness backend for the connection reactor (`--event-loop`).
    pub event_loop: geoalign_serve::EventLoopKind,
    /// Durable store directory (`--data-dir`); `None` serves from memory.
    pub data_dir: Option<String>,
    /// Enable the `/debug/*` introspection endpoints
    /// (`--debug-endpoints`); off by default — they 404 otherwise.
    pub debug_endpoints: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:8077".to_owned(),
            workers: None,
            cache_capacity: 64,
            access_log: None,
            threads: None,
            max_connections: geoalign_serve::server::DEFAULT_MAX_CONNECTIONS,
            idle_timeout_secs: geoalign_serve::server::DEFAULT_IDLE_TIMEOUT.as_secs(),
            max_requests_per_conn: geoalign_serve::server::DEFAULT_MAX_REQUESTS_PER_CONN,
            drain_timeout_secs: geoalign_serve::server::DEFAULT_DRAIN_TIMEOUT.as_secs(),
            event_loop: geoalign_serve::EventLoopKind::default(),
            data_dir: None,
            debug_endpoints: false,
        }
    }
}

/// Parses the `serve` subcommand's flags.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut parsed = ServeArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => parsed.addr = need(&mut it, "--addr")?,
            "--workers" => parsed.workers = Some(positive(&mut it, "--workers")?),
            "--cache-capacity" => {
                parsed.cache_capacity = need(&mut it, "--cache-capacity")?
                    .parse()
                    .map_err(|_| CliError::Usage("--cache-capacity needs an integer".into()))?;
            }
            "--access-log" => parsed.access_log = Some(need(&mut it, "--access-log")?),
            "--threads" => parsed.threads = Some(positive(&mut it, "--threads")?),
            "--max-connections" => {
                // 0 is meaningful: a rendezvous queue that only accepts a
                // connection when a worker is already free.
                parsed.max_connections = need(&mut it, "--max-connections")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-connections needs an integer".into()))?;
            }
            "--idle-timeout" => {
                parsed.idle_timeout_secs = positive(&mut it, "--idle-timeout")? as u64;
            }
            "--max-requests-per-conn" => {
                parsed.max_requests_per_conn = positive(&mut it, "--max-requests-per-conn")?;
            }
            "--drain-timeout" => {
                // 0 is meaningful: shutdown force-closes in-flight
                // connections immediately.
                parsed.drain_timeout_secs = need(&mut it, "--drain-timeout")?
                    .parse()
                    .map_err(|_| CliError::Usage("--drain-timeout needs an integer".into()))?;
            }
            "--event-loop" => {
                parsed.event_loop = need(&mut it, "--event-loop")?
                    .parse()
                    .map_err(|e: String| CliError::Usage(e))?;
            }
            "--data-dir" => parsed.data_dir = Some(need(&mut it, "--data-dir")?),
            "--debug-endpoints" => parsed.debug_endpoints = true,
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(parsed)
}

/// Parsed command line for `geoalign profile`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileArgs {
    /// Path of the objective aggregate table.
    pub table: String,
    /// Paths of the reference crosswalk files (at least one).
    pub references: Vec<String>,
    /// Sampling frequency in Hz (`--hz`, default 997 — a prime, so the
    /// sampler does not phase-lock with periodic work).
    pub hz: u64,
    /// Pipeline repetitions under the profiler (`--rounds`).
    pub rounds: usize,
    /// Collapsed-stack output path (stdout when absent).
    pub out: Option<String>,
    /// Rows in the stderr phase table (`--top`).
    pub top: usize,
    /// Override of the process-wide thread budget (`--threads`).
    pub threads: Option<usize>,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            table: String::new(),
            references: Vec::new(),
            hz: 997,
            rounds: 20,
            out: None,
            top: 10,
            threads: None,
        }
    }
}

/// Parses the `profile` subcommand's flags.
pub fn parse_profile_args(args: &[String]) -> Result<ProfileArgs, CliError> {
    let mut parsed = ProfileArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--table" => parsed.table = need(&mut it, "--table")?,
            "--reference" => parsed.references.push(need(&mut it, "--reference")?),
            "--hz" => parsed.hz = positive(&mut it, "--hz")? as u64,
            "--rounds" => parsed.rounds = positive(&mut it, "--rounds")?,
            "--out" => parsed.out = Some(need(&mut it, "--out")?),
            "--top" => parsed.top = positive(&mut it, "--top")?,
            "--threads" => parsed.threads = Some(positive(&mut it, "--threads")?),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    if parsed.table.is_empty() {
        return Err(CliError::Usage("--table is required".into()));
    }
    if parsed.references.is_empty() {
        return Err(CliError::Usage(
            "at least one --reference is required".into(),
        ));
    }
    Ok(parsed)
}

/// Everything one profiling run produced.
#[derive(Debug)]
pub struct ProfileOutput {
    /// Collapsed-stack lines (`thread;span;... count`), ready for
    /// `flamegraph.pl`.
    pub collapsed: String,
    /// The plain-text top-phases table for stderr.
    pub phase_table: String,
    /// Sampler sweeps performed.
    pub sweeps: u64,
    /// Samples that captured a non-empty span stack.
    pub stack_samples: u64,
    /// Wall-clock duration of the profiled section.
    pub duration: std::time::Duration,
}

/// Runs the crosswalk pipeline `rounds` times under the sampling
/// profiler and returns the collapsed stacks plus a phase summary.
/// Each round is wrapped in a `pipeline` span so the profile is
/// non-empty even when individual phases finish between samples.
pub fn run_profile(
    table_csv: &str,
    reference_csvs: &[(String, String)],
    args: &ProfileArgs,
) -> Result<ProfileOutput, CliError> {
    let profiler = geoalign_obs::Profiler::start(args.hz);
    for _ in 0..args.rounds {
        let _span = geoalign_obs::span!("pipeline");
        run_crosswalk(table_csv, reference_csvs, None)?;
    }
    let report = profiler.stop();
    Ok(ProfileOutput {
        collapsed: report.collapsed_text(),
        phase_table: report.phase_table(args.top),
        sweeps: report.sweeps,
        stack_samples: report.stack_samples,
        duration: report.duration,
    })
}

/// What `geoalign store` should do to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAction {
    /// Create an empty store (refuses a directory that already has one).
    Init,
    /// Open the store (running recovery) and summarise its contents.
    Inspect,
    /// Flush the WAL into a fresh snapshot and drop superseded segments.
    Compact,
    /// Read-only structural check of snapshot and WAL segments.
    Verify,
}

/// Parsed command line for `geoalign store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreArgs {
    /// The action to run.
    pub action: StoreAction,
    /// The store directory (`--data-dir`).
    pub data_dir: String,
}

/// Parses the `store` subcommand's action and flags.
pub fn parse_store_args(args: &[String]) -> Result<StoreArgs, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "store needs an action: init, inspect, compact, or verify".into(),
        ));
    };
    let action = match action.as_str() {
        "init" => StoreAction::Init,
        "inspect" => StoreAction::Inspect,
        "compact" => StoreAction::Compact,
        "verify" => StoreAction::Verify,
        other => {
            return Err(CliError::Usage(format!(
                "unknown store action '{other}' (expected init, inspect, compact, or verify)"
            )))
        }
    };
    let mut data_dir = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data-dir" => data_dir = Some(need(&mut it, "--data-dir")?),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    let data_dir = data_dir.ok_or_else(|| CliError::Usage("store needs --data-dir".into()))?;
    Ok(StoreArgs { action, data_dir })
}

/// Runs a `geoalign store` action and returns the report text to print.
/// `verify` returns `Err` when the store has any structural defect, so
/// the process exits nonzero for scripts.
pub fn run_store(args: &StoreArgs) -> Result<String, CliError> {
    use geoalign_store::Store;
    let dir = &args.data_dir;
    let store_err = |e: geoalign_store::StoreError| CliError::Run(e.to_string());
    match args.action {
        StoreAction::Init => {
            Store::init(dir).map_err(store_err)?;
            Ok(format!("initialised empty store at {dir}\n"))
        }
        StoreAction::Inspect => {
            let store = Store::open(dir).map_err(store_err)?;
            let count = |prefix: &str| store.iter_prefix(prefix).len();
            let r = store.recovery();
            let mut out = String::new();
            let _ = writeln!(out, "store at {dir}");
            let _ = writeln!(out, "  entries:              {}", store.len());
            let _ = writeln!(out, "    unit systems:       {}", count("sys/"));
            let _ = writeln!(out, "    references:         {}", count("ref/"));
            let _ = writeln!(out, "    prepared crosswalks:{}", count("prep/"));
            let _ = writeln!(out, "  last sequence:        {}", store.last_seq());
            let _ = writeln!(out, "  snapshot records:     {}", r.snapshot_records);
            let _ = writeln!(out, "  wal records replayed: {}", r.wal_records_replayed);
            let _ = writeln!(out, "  wal segments:         {}", r.wal_segments);
            let _ = writeln!(out, "  repairs:              {}", r.repairs);
            if let Some(torn) = &r.torn_tail {
                let _ = writeln!(out, "  torn tail repaired:   {torn}");
            }
            if let Some(defect) = &r.snapshot_defect {
                let _ = writeln!(out, "  snapshot discarded:   {defect}");
            }
            Ok(out)
        }
        StoreAction::Compact => {
            let store = Store::open(dir).map_err(store_err)?;
            let report = store.checkpoint().map_err(store_err)?;
            Ok(format!(
                "compacted store at {dir}\n  records:              {}\n  snapshot bytes:       {}\n  wal segments removed: {}\n",
                report.records, report.snapshot_bytes, report.wal_segments_removed
            ))
        }
        StoreAction::Verify => {
            let report = Store::verify(dir).map_err(store_err)?;
            let mut out = String::new();
            let _ = writeln!(out, "store at {dir}");
            let _ = writeln!(out, "  snapshot present:     {}", report.snapshot_present);
            let _ = writeln!(out, "  snapshot records:     {}", report.snapshot_records);
            let _ = writeln!(out, "  wal records:          {}", report.wal_records);
            let _ = writeln!(out, "  wal segments:         {}", report.segments.len());
            let _ = writeln!(out, "  last sequence:        {}", report.last_seq);
            let mut defects = Vec::new();
            if let Some(d) = &report.snapshot_defect {
                defects.push(format!("snapshot: {d}"));
            }
            for seg in &report.segments {
                if let Some(d) = &seg.defect {
                    defects.push(format!("segment {}: {d}", seg.index));
                }
            }
            if defects.is_empty() {
                let _ = writeln!(out, "  clean");
                Ok(out)
            } else {
                for d in &defects {
                    let _ = writeln!(out, "  DEFECT {d}");
                }
                Err(CliError::Run(format!(
                    "{out}store has {} defect(s); `geoalign store inspect` repairs what it can",
                    defects.len()
                )))
            }
        }
    }
}

/// Parsed command line for `geoalign agg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggArgs {
    /// Decode one aggregate state file and summarise it.
    InspectFile(String),
    /// Open a durable store and summarise every `agg/` rollup.
    InspectStore(String),
    /// Merge state files into one output file.
    Merge {
        /// Output path for the merged state.
        out: String,
        /// Input state files (at least one).
        inputs: Vec<String>,
    },
}

/// Parses the `agg` subcommand's action and flags.
pub fn parse_agg_args(args: &[String]) -> Result<AggArgs, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "agg needs an action: inspect or merge".into(),
        ));
    };
    match action.as_str() {
        "inspect" => match rest {
            [flag, dir] if flag == "--data-dir" => Ok(AggArgs::InspectStore(dir.clone())),
            [file] if file != "--data-dir" => Ok(AggArgs::InspectFile(file.clone())),
            _ => Err(CliError::Usage(
                "agg inspect needs exactly one of FILE or --data-dir DIR".into(),
            )),
        },
        "merge" => match rest {
            [] | [_] => Err(CliError::Usage(
                "agg merge needs an output path and at least one input file".into(),
            )),
            [out, inputs @ ..] => Ok(AggArgs::Merge {
                out: out.clone(),
                inputs: inputs.to_vec(),
            }),
        },
        other => Err(CliError::Usage(format!(
            "unknown agg action '{other}' (expected inspect or merge)"
        ))),
    }
}

/// Renders one state as the `agg inspect` report lines, indented by
/// `pad`.
fn format_agg_state(out: &mut String, state: &geoalign_agg::AggState, pad: &str) {
    let fin = state.finalize();
    let source_total: f64 = fin.source.iter().sum();
    let target_total: f64 = fin.target.iter().sum();
    let _ = writeln!(
        out,
        "{pad}shape:           {} x {} (source x target)",
        state.n_source(),
        state.n_target()
    );
    let _ = writeln!(out, "{pad}points absorbed: {}", state.count());
    let _ = writeln!(out, "{pad}points skipped:  {}", state.skipped());
    let _ = writeln!(out, "{pad}nonzero cells:   {}", state.n_cells());
    let _ = writeln!(out, "{pad}source total:    {source_total}");
    let _ = writeln!(out, "{pad}target total:    {target_total}");
}

fn read_agg_state(path: &str) -> Result<geoalign_agg::AggState, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.to_owned(), e))?;
    geoalign_agg::AggState::decode(&bytes).map_err(|e| CliError::Run(format!("{path}: {e}")))
}

/// Runs a `geoalign agg` action and returns the report text to print.
pub fn run_agg(args: &AggArgs) -> Result<String, CliError> {
    match args {
        AggArgs::InspectFile(path) => {
            let state = read_agg_state(path)?;
            let mut out = String::new();
            let _ = writeln!(out, "aggregate state '{}' ({path})", state.attribute());
            format_agg_state(&mut out, &state, "  ");
            Ok(out)
        }
        AggArgs::InspectStore(dir) => {
            let store =
                geoalign_store::Store::open(dir).map_err(|e| CliError::Run(e.to_string()))?;
            let rollups = store.iter_prefix("agg/");
            let mut out = String::new();
            let _ = writeln!(out, "store at {dir}: {} streaming rollup(s)", rollups.len());
            for (key, bytes) in rollups {
                let (source, target, state) = geoalign_core::persist::decode_agg_rollup(&bytes)
                    .map_err(|e| CliError::Run(format!("{key}: {e}")))?;
                let _ = writeln!(
                    out,
                    "  {key}: '{}' on {source} -> {target}",
                    state.attribute()
                );
                format_agg_state(&mut out, &state, "    ");
            }
            Ok(out)
        }
        AggArgs::Merge { out, inputs } => {
            let mut states = inputs.iter().map(|p| read_agg_state(p));
            let mut merged = states.next().expect("parse enforces at least one input")?;
            for state in states {
                merged
                    .merge(&state?)
                    .map_err(|e| CliError::Run(e.to_string()))?;
            }
            std::fs::write(out, merged.encode()).map_err(|e| CliError::Io(out.clone(), e))?;
            Ok(format!(
                "merged {} state(s) into {out}: '{}', {} points, {} cells\n",
                inputs.len(),
                merged.attribute(),
                merged.count(),
                merged.n_cells()
            ))
        }
    }
}

/// Renders per-phase timings as the stderr lines `--timings` prints.
pub fn format_timings(t: &PhaseTimings) -> String {
    let micros = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    format!(
        "phase[weight_learning] = {:.1} µs\nphase[disaggregation] = {:.1} µs\nphase[reaggregation] = {:.1} µs\nphase[total] = {:.1} µs",
        micros(t.weight_learning),
        micros(t.disaggregation),
        micros(t.reaggregation),
        micros(t.total()),
    )
}

fn need(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// Parses a flag value as a positive integer (thread/worker counts).
fn positive(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, CliError> {
    let n: usize = need(it, flag)?
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} needs an integer")))?;
    if n == 0 {
        return Err(CliError::Usage(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Everything the run produced, for the caller to print or write.
#[derive(Debug)]
pub struct CrosswalkOutput {
    /// The realigned table as CSV.
    pub csv: String,
    /// `(reference name, weight)` pairs.
    pub weights: Vec<(String, f64)>,
    /// RMSE / NRMSE vs the truth table, when supplied.
    pub accuracy: Option<(f64, f64)>,
    /// Per-phase wall-clock timings of the run (the same struct the
    /// serving layer's `/metrics` histograms are fed from).
    pub timings: PhaseTimings,
}

/// Runs a crosswalk from in-memory CSV strings (the testable core of the
/// CLI; `main` only shuttles files).
pub fn run_crosswalk(
    table_csv: &str,
    reference_csvs: &[(String, String)],
    truth_csv: Option<&str>,
) -> Result<CrosswalkOutput, CliError> {
    let table = AggregateTable::parse_csv(table_csv)
        .map_err(|e| CliError::Run(format!("objective table: {e}")))?;

    // The source index is defined by the union of the crosswalk files'
    // source units (tables may cover a subset). Target likewise.
    let mut source = UnitIndex::new();
    let mut target = UnitIndex::new();
    let parsed: Vec<(String, CrosswalkTable)> = reference_csvs
        .iter()
        .map(|(name, csv)| {
            CrosswalkTable::parse_csv(csv)
                .map(|t| (name.clone(), t))
                .map_err(|e| CliError::Run(format!("crosswalk '{name}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    for (_, x) in &parsed {
        for (s, t, _) in &x.rows {
            source.intern(s);
            target.intern(t);
        }
    }

    let refs: Vec<ReferenceData> = parsed
        .iter()
        .map(|(name, x)| {
            let dm = x
                .to_matrix(&source, &target)
                .map_err(|e| CliError::Run(format!("crosswalk '{name}': {e}")))?;
            let attr = if x.attribute.is_empty() {
                name.clone()
            } else {
                x.attribute.clone()
            };
            ReferenceData::from_dm(attr, dm).map_err(CliError::from)
        })
        .collect::<Result<_, _>>()?;

    let objective = table
        .to_vector(&source)
        .map_err(|e| CliError::Run(format!("objective table: {e}")))?;

    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let result = GeoAlign::new().estimate(&objective, &ref_slices)?;

    let mut csv = String::new();
    let _ = writeln!(csv, "unit,{}", table.attribute);
    for (j, id) in target.ids().iter().enumerate() {
        let _ = writeln!(csv, "{},{}", id, result.estimate[j]);
    }

    let weights = refs
        .iter()
        .zip(&result.weights)
        .map(|(r, &w)| (r.name().to_owned(), w))
        .collect();

    let accuracy = match truth_csv {
        Some(text) => {
            let truth_table = AggregateTable::parse_csv(text)
                .map_err(|e| CliError::Run(format!("truth table: {e}")))?;
            let truth = truth_table
                .to_vector(&target)
                .map_err(|e| CliError::Run(format!("truth table: {e}")))?;
            let rmse = stats::rmse(&result.estimate, truth.values())
                .map_err(|e| CliError::Run(e.to_string()))?;
            let nrmse = stats::nrmse(&result.estimate, truth.values())
                .map_err(|e| CliError::Run(e.to_string()))?;
            Some((rmse, nrmse))
        }
        None => None,
    };

    Ok(CrosswalkOutput {
        csv,
        weights,
        accuracy,
        timings: result.timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEAM: &str = "zip,steam\nz1,10\nz2,20\nz3,30\n";
    const POP: &str = "zip,county,population\nz1,A,100\nz2,A,60\nz2,B,40\nz3,B,80\n";
    const ACC: &str = "zip,county,accidents\nz1,A,5\nz2,A,1\nz2,B,9\nz3,B,4\n";

    #[test]
    fn crosswalk_from_strings() {
        let out = run_crosswalk(STEAM, &[("pop".into(), POP.into())], None).unwrap();
        assert!(out.csv.contains("unit,steam"));
        assert!(out.csv.contains("A,22"));
        assert!(out.csv.contains("B,38"));
        assert_eq!(out.weights.len(), 1);
        assert_eq!(out.weights[0].0, "population");
        assert!(out.accuracy.is_none());
    }

    #[test]
    fn evaluate_reports_accuracy() {
        // Objective proportional to the population reference: the learned
        // mixture concentrates on population and reproduces its split
        // exactly, so the truth table derived from that split gives
        // zero error.
        let steam = "zip,steam
z1,50
z2,50
z3,40
";
        let truth = "county,steam
A,80
B,60
";
        let out = run_crosswalk(
            steam,
            &[("pop".into(), POP.into()), ("acc".into(), ACC.into())],
            Some(truth),
        )
        .unwrap();
        let (rmse, nrmse) = out.accuracy.unwrap();
        assert!(rmse < 1e-6, "rmse {rmse}");
        assert!(nrmse < 1e-6);
        assert_eq!(out.weights.len(), 2);
        let wsum: f64 = out.weights.iter().map(|(_, w)| w).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        assert!(
            out.weights[0].1 > 0.99,
            "population should dominate: {:?}",
            out.weights
        );
    }

    #[test]
    fn informative_errors() {
        let e = run_crosswalk("zip,steam\n", &[("p".into(), POP.into())], None).unwrap_err();
        assert!(e.to_string().contains("objective table"));
        let e = run_crosswalk(STEAM, &[("p".into(), "a,b\nbad\n".into())], None).unwrap_err();
        assert!(e.to_string().contains("crosswalk 'p'"), "{e}");
        // Objective mentions a zip absent from every crosswalk.
        let e = run_crosswalk("zip,steam\nz9,1\n", &[("p".into(), POP.into())], None).unwrap_err();
        assert!(e.to_string().contains("z9"), "{e}");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = [
            "--table",
            "t.csv",
            "--reference",
            "x.csv",
            "--weights",
            "--timings",
            "--trace",
            "spans.jsonl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let a = parse_args(&args).unwrap();
        assert_eq!(a.table, "t.csv");
        assert_eq!(a.references, vec!["x.csv".to_owned()]);
        assert!(a.show_weights);
        assert!(a.show_timings);
        assert_eq!(a.trace.as_deref(), Some("spans.jsonl"));
        assert!(a.out.is_none());
        assert!(a.threads.is_none());

        assert!(parse_args(&["--table".into()]).is_err());
        assert!(parse_args(&["--trace".into()]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--table".into(), "t".into()]).is_err()); // no refs
    }

    #[test]
    fn agg_arg_parsing() {
        let sv = |xs: &[&str]| -> Vec<String> { xs.iter().map(|s| s.to_string()).collect() };
        assert_eq!(
            parse_agg_args(&sv(&["inspect", "s.aggstate"])).unwrap(),
            AggArgs::InspectFile("s.aggstate".into())
        );
        assert_eq!(
            parse_agg_args(&sv(&["inspect", "--data-dir", "d"])).unwrap(),
            AggArgs::InspectStore("d".into())
        );
        assert_eq!(
            parse_agg_args(&sv(&["merge", "out", "a", "b"])).unwrap(),
            AggArgs::Merge {
                out: "out".into(),
                inputs: vec!["a".into(), "b".into()],
            }
        );
        assert!(parse_agg_args(&[]).is_err());
        assert!(parse_agg_args(&sv(&["inspect"])).is_err());
        assert!(parse_agg_args(&sv(&["inspect", "--data-dir"])).is_err());
        assert!(parse_agg_args(&sv(&["inspect", "a", "b"])).is_err());
        assert!(parse_agg_args(&sv(&["merge", "out"])).is_err());
        assert!(parse_agg_args(&sv(&["bogus"])).is_err());
    }

    #[test]
    fn agg_inspect_and_merge_roundtrip() {
        let dir = std::env::temp_dir().join(format!("geoalign-cli-agg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let mut a = geoalign_agg::AggState::new("footfall", 3, 2).unwrap();
        a.absorb(0, 0, 2.5).unwrap();
        a.absorb(2, 1, 1.25).unwrap();
        a.record_skipped();
        let mut b = geoalign_agg::AggState::new("footfall", 3, 2).unwrap();
        b.absorb(0, 0, 0.5).unwrap();
        b.absorb(1, 1, 4.0).unwrap();
        std::fs::write(path("a.aggstate"), a.encode()).unwrap();
        std::fs::write(path("b.aggstate"), b.encode()).unwrap();

        let report = run_agg(&AggArgs::InspectFile(path("a.aggstate"))).unwrap();
        assert!(report.contains("'footfall'"), "{report}");
        assert!(report.contains("3 x 2"), "{report}");
        assert!(report.contains("points absorbed: 2"), "{report}");
        assert!(report.contains("points skipped:  1"), "{report}");

        // Merge in both orders: commutativity means identical bytes.
        run_agg(&AggArgs::Merge {
            out: path("ab.aggstate"),
            inputs: vec![path("a.aggstate"), path("b.aggstate")],
        })
        .unwrap();
        run_agg(&AggArgs::Merge {
            out: path("ba.aggstate"),
            inputs: vec![path("b.aggstate"), path("a.aggstate")],
        })
        .unwrap();
        let ab = std::fs::read(path("ab.aggstate")).unwrap();
        let ba = std::fs::read(path("ba.aggstate")).unwrap();
        assert_eq!(ab, ba, "merge order must not change the bytes");
        let merged = geoalign_agg::AggState::decode(&ab).unwrap();
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.skipped(), 1);

        // Mismatched shapes refuse to merge.
        let other = geoalign_agg::AggState::new("footfall", 2, 2).unwrap();
        std::fs::write(path("other.aggstate"), other.encode()).unwrap();
        let e = run_agg(&AggArgs::Merge {
            out: path("bad.aggstate"),
            inputs: vec![path("a.aggstate"), path("other.aggstate")],
        })
        .unwrap_err();
        assert!(e.to_string().contains("cannot merge"), "{e}");

        // Corrupt input errors cleanly with the path named.
        std::fs::write(path("junk.aggstate"), [9u8, 9, 9]).unwrap();
        let e = run_agg(&AggArgs::InspectFile(path("junk.aggstate"))).unwrap_err();
        assert!(e.to_string().contains("junk.aggstate"), "{e}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn threads_flag_parsing() {
        let args: Vec<String> = ["--table", "t.csv", "--reference", "x.csv", "--threads", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args).unwrap().threads, Some(8));
        assert!(parse_args(&["--threads".into(), "0".into()]).is_err());
        assert!(parse_args(&["--threads".into(), "many".into()]).is_err());

        let a = parse_serve_args(&["--threads".into(), "4".into()]).unwrap();
        assert_eq!(a.threads, Some(4));
        assert!(a.workers.is_none());
        assert!(parse_serve_args(&["--threads".into(), "0".into()]).is_err());
    }

    #[test]
    fn serve_arg_parsing() {
        assert_eq!(parse_serve_args(&[]).unwrap(), ServeArgs::default());
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--cache-capacity",
            "16",
            "--access-log",
            "access.jsonl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let a = parse_serve_args(&args).unwrap();
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.workers, Some(8));
        assert_eq!(a.cache_capacity, 16);
        assert_eq!(a.access_log.as_deref(), Some("access.jsonl"));
        assert!(parse_serve_args(&["--workers".into(), "zero".into()]).is_err());
        assert!(parse_serve_args(&["--access-log".into()]).is_err());
        assert!(parse_serve_args(&["--workers".into(), "0".into()]).is_err());
        assert!(parse_serve_args(&["--nope".into()]).is_err());
    }

    #[test]
    fn serve_hardening_flag_parsing() {
        // Defaults mirror the server's.
        let d = parse_serve_args(&[]).unwrap();
        assert_eq!(
            d.max_connections,
            geoalign_serve::server::DEFAULT_MAX_CONNECTIONS
        );
        assert_eq!(
            d.idle_timeout_secs,
            geoalign_serve::server::DEFAULT_IDLE_TIMEOUT.as_secs()
        );
        assert_eq!(
            d.max_requests_per_conn,
            geoalign_serve::server::DEFAULT_MAX_REQUESTS_PER_CONN
        );

        let args: Vec<String> = [
            "--max-connections",
            "4",
            "--idle-timeout",
            "5",
            "--max-requests-per-conn",
            "100",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let a = parse_serve_args(&args).unwrap();
        assert_eq!(a.max_connections, 4);
        assert_eq!(a.idle_timeout_secs, 5);
        assert_eq!(a.max_requests_per_conn, 100);

        // --max-connections 0 means a rendezvous queue and is legal;
        // the time and per-connection caps must stay positive.
        assert_eq!(
            parse_serve_args(&["--max-connections".into(), "0".into()])
                .unwrap()
                .max_connections,
            0
        );
        assert!(parse_serve_args(&["--max-connections".into(), "many".into()]).is_err());
        assert!(parse_serve_args(&["--idle-timeout".into(), "0".into()]).is_err());
        assert!(parse_serve_args(&["--max-requests-per-conn".into(), "0".into()]).is_err());
    }

    #[test]
    fn serve_reactor_flag_parsing() {
        let d = parse_serve_args(&[]).unwrap();
        assert_eq!(
            d.drain_timeout_secs,
            geoalign_serve::server::DEFAULT_DRAIN_TIMEOUT.as_secs()
        );
        assert_eq!(d.event_loop, geoalign_serve::EventLoopKind::Epoll);

        let a = parse_serve_args(&[
            "--drain-timeout".into(),
            "9".into(),
            "--event-loop".into(),
            "poll".into(),
        ])
        .unwrap();
        assert_eq!(a.drain_timeout_secs, 9);
        assert_eq!(a.event_loop, geoalign_serve::EventLoopKind::Poll);

        // 0 is legal: shutdown force-closes in-flight work immediately.
        assert_eq!(
            parse_serve_args(&["--drain-timeout".into(), "0".into()])
                .unwrap()
                .drain_timeout_secs,
            0
        );
        assert!(parse_serve_args(&["--event-loop".into(), "kqueue".into()]).is_err());
        assert!(parse_serve_args(&["--drain-timeout".into(), "soon".into()]).is_err());
    }

    #[test]
    fn serve_data_dir_flag_parsing() {
        assert!(parse_serve_args(&[]).unwrap().data_dir.is_none());
        let a = parse_serve_args(&["--data-dir".into(), "/tmp/ga".into()]).unwrap();
        assert_eq!(a.data_dir.as_deref(), Some("/tmp/ga"));
        assert!(parse_serve_args(&["--data-dir".into()]).is_err());
    }

    #[test]
    fn serve_debug_endpoints_flag_parsing() {
        // Off by default: /debug/* must not be reachable unless asked for.
        assert!(!parse_serve_args(&[]).unwrap().debug_endpoints);
        let a = parse_serve_args(&["--debug-endpoints".into()]).unwrap();
        assert!(a.debug_endpoints);
    }

    #[test]
    fn profile_arg_parsing() {
        let a = parse_profile_args(&[
            "--table".into(),
            "t.csv".into(),
            "--reference".into(),
            "x.csv".into(),
        ])
        .unwrap();
        assert_eq!(a.table, "t.csv");
        assert_eq!(a.references, vec!["x.csv".to_owned()]);
        assert_eq!(a.hz, 997);
        assert_eq!(a.rounds, 20);
        assert_eq!(a.top, 10);
        assert!(a.out.is_none());

        let b = parse_profile_args(&[
            "--table".into(),
            "t.csv".into(),
            "--reference".into(),
            "x.csv".into(),
            "--hz".into(),
            "2000".into(),
            "--rounds".into(),
            "3".into(),
            "--top".into(),
            "5".into(),
            "--out".into(),
            "stacks.txt".into(),
        ])
        .unwrap();
        assert_eq!(b.hz, 2000);
        assert_eq!(b.rounds, 3);
        assert_eq!(b.top, 5);
        assert_eq!(b.out.as_deref(), Some("stacks.txt"));

        assert!(parse_profile_args(&[]).is_err());
        assert!(parse_profile_args(&["--table".into(), "t.csv".into()]).is_err());
        assert!(parse_profile_args(&[
            "--table".into(),
            "t.csv".into(),
            "--reference".into(),
            "x.csv".into(),
            "--hz".into(),
            "0".into(),
        ])
        .is_err());
    }

    #[test]
    fn profile_run_captures_the_pipeline_span() {
        let args = ProfileArgs {
            table: "t".into(),
            references: vec!["pop".into()],
            hz: 4000,
            rounds: 40,
            ..ProfileArgs::default()
        };
        let out = run_profile(STEAM, &[("pop".into(), POP.into())], &args).unwrap();
        // The tiny fixture may finish between samples, but sweeps must
        // have happened and any captured stack must mention `pipeline`.
        assert!(out.sweeps > 0);
        if !out.collapsed.is_empty() {
            assert!(out.collapsed.contains("pipeline"), "{}", out.collapsed);
        }
    }

    #[test]
    fn store_arg_parsing() {
        let a = parse_store_args(&["init".into(), "--data-dir".into(), "d".into()]).unwrap();
        assert_eq!(a.action, StoreAction::Init);
        assert_eq!(a.data_dir, "d");
        for (name, action) in [
            ("inspect", StoreAction::Inspect),
            ("compact", StoreAction::Compact),
            ("verify", StoreAction::Verify),
        ] {
            let a = parse_store_args(&[name.into(), "--data-dir".into(), "d".into()]).unwrap();
            assert_eq!(a.action, action);
        }
        assert!(parse_store_args(&[]).is_err()); // no action
        assert!(parse_store_args(&["frobnicate".into()]).is_err()); // bad action
        assert!(parse_store_args(&["init".into()]).is_err()); // no --data-dir
        assert!(parse_store_args(&["init".into(), "--bogus".into()]).is_err());
    }

    #[test]
    fn store_actions_init_inspect_compact_verify() {
        let dir = std::env::temp_dir().join(format!("geoalign-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_string_lossy().into_owned();
        let args = |action| StoreArgs {
            action,
            data_dir: dir_str.clone(),
        };

        let report = run_store(&args(StoreAction::Init)).unwrap();
        assert!(report.contains("initialised"), "{report}");
        // Init refuses to clobber an existing store.
        assert!(run_store(&args(StoreAction::Init)).is_err());

        // Put something in it through the store API, as serve would.
        {
            let store = geoalign_store::Store::open(&dir).unwrap();
            store.put("sys/zip", vec![1, 2, 3]).unwrap();
            store.put("prep/abc", vec![4, 5]).unwrap();
        }

        let report = run_store(&args(StoreAction::Inspect)).unwrap();
        assert!(report.contains("unit systems:       1"), "{report}");
        assert!(report.contains("prepared crosswalks:1"), "{report}");

        let report = run_store(&args(StoreAction::Compact)).unwrap();
        assert!(report.contains("records:              2"), "{report}");

        let report = run_store(&args(StoreAction::Verify)).unwrap();
        assert!(report.contains("clean"), "{report}");

        // Damage the WAL tail: verify reports the defect and errs.
        {
            let store = geoalign_store::Store::open(&dir).unwrap();
            store.put("sys/county", vec![9; 64]).unwrap();
        }
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "log"))
            .max()
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let err = run_store(&args(StoreAction::Verify)).unwrap_err();
        assert!(err.to_string().contains("DEFECT"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timings_are_returned_and_formatted() {
        let out = run_crosswalk(STEAM, &[("pop".into(), POP.into())], None).unwrap();
        let text = format_timings(&out.timings);
        assert!(text.contains("phase[weight_learning]"), "{text}");
        assert!(text.contains("phase[total]"));
        assert_eq!(text.lines().count(), 4);
    }
}
