//! The `geoalign` command-line entry point; see [`geoalign_cli`] for the
//! testable implementation.

use geoalign_cli::{
    format_timings, parse_agg_args, parse_args, parse_profile_args, parse_serve_args,
    parse_store_args, run_agg, run_crosswalk, run_profile, run_store, CliError, USAGE,
};
use std::process::ExitCode;

// Byte-level cost accounting (the alloc_bytes of X-Cost and the access
// log) is opt-in per binary; the CLI opts in. See DESIGN.md §13.
geoalign_obs::install_counting_allocator!();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_owned(), e))
}

fn real_main(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    match cmd.as_str() {
        "crosswalk" | "evaluate" | "weights" => {
            let mut parsed = parse_args(rest)?;
            if cmd == "evaluate" && parsed.truth.is_none() {
                return Err(CliError::Usage("evaluate requires --truth".into()));
            }
            if let Some(n) = parsed.threads {
                geoalign_exec::set_global_threads(n);
            }
            // `--trace PATH`: stream every span the run finishes (prepare,
            // weight learning, disaggregation, ...) to PATH as JSON lines.
            let trace_subscriber = match &parsed.trace {
                Some(path) => {
                    let subscriber = geoalign_obs::JsonLinesSubscriber::create(path)
                        .map_err(|e| CliError::Io(path.clone(), e))?;
                    Some(geoalign_obs::trace::subscribe(std::sync::Arc::new(
                        subscriber,
                    )))
                }
                None => None,
            };
            let table_csv = read(&parsed.table)?;
            let reference_csvs: Vec<(String, String)> = parsed
                .references
                .iter()
                .map(|p| read(p).map(|text| (p.clone(), text)))
                .collect::<Result<_, _>>()?;
            let truth_csv = match &parsed.truth {
                Some(p) => Some(read(p)?),
                None => None,
            };
            let result = {
                let scope = geoalign_obs::begin_trace(&geoalign_obs::new_trace_id());
                let result = run_crosswalk(&table_csv, &reference_csvs, truth_csv.as_deref());
                scope.finish();
                result
            };
            if let Some(id) = trace_subscriber {
                geoalign_obs::trace::unsubscribe(id);
            }
            let out = result?;

            if cmd == "weights" {
                parsed.show_weights = true;
            } else {
                match &parsed.out {
                    Some(path) => {
                        std::fs::write(path, &out.csv).map_err(|e| CliError::Io(path.clone(), e))?
                    }
                    None => print!("{}", out.csv),
                }
            }
            if parsed.show_weights || cmd == "weights" {
                for (name, w) in &out.weights {
                    eprintln!("weight[{name}] = {w:.6}");
                }
            }
            if let Some((rmse, nrmse)) = out.accuracy {
                eprintln!("RMSE = {rmse:.6}");
                eprintln!("NRMSE = {nrmse:.6}");
            }
            if parsed.show_timings {
                eprintln!("{}", format_timings(&out.timings));
            }
            Ok(())
        }
        "profile" => {
            let parsed = parse_profile_args(rest)?;
            if let Some(n) = parsed.threads {
                geoalign_exec::set_global_threads(n);
            }
            let table_csv = read(&parsed.table)?;
            let reference_csvs: Vec<(String, String)> = parsed
                .references
                .iter()
                .map(|p| read(p).map(|text| (p.clone(), text)))
                .collect::<Result<_, _>>()?;
            let out = run_profile(&table_csv, &reference_csvs, &parsed)?;
            match &parsed.out {
                Some(path) => std::fs::write(path, &out.collapsed)
                    .map_err(|e| CliError::Io(path.clone(), e))?,
                None => print!("{}", out.collapsed),
            }
            eprintln!(
                "profiled {} rounds in {:.1} ms: {} sweeps, {} stack samples",
                parsed.rounds,
                out.duration.as_secs_f64() * 1e3,
                out.sweeps,
                out.stack_samples,
            );
            eprint!("{}", out.phase_table);
            Ok(())
        }
        "serve" => {
            let parsed = parse_serve_args(rest)?;
            if let Some(n) = parsed.threads {
                geoalign_exec::set_global_threads(n);
            }
            let config = geoalign_serve::ServerConfig {
                // `--workers` overrides the request pool alone; otherwise
                // it follows the process-wide thread budget.
                workers: parsed.workers.unwrap_or_else(geoalign_exec::global_threads),
                cache_capacity: parsed.cache_capacity,
                access_log: parsed.access_log.clone(),
                max_connections: parsed.max_connections,
                idle_timeout: std::time::Duration::from_secs(parsed.idle_timeout_secs),
                max_requests_per_conn: parsed.max_requests_per_conn,
                drain_timeout: std::time::Duration::from_secs(parsed.drain_timeout_secs),
                event_loop: parsed.event_loop,
                data_dir: parsed.data_dir.clone().map(std::path::PathBuf::from),
                debug_endpoints: parsed.debug_endpoints,
            };
            let server = geoalign_serve::Server::bind(parsed.addr.as_str(), config)
                .map_err(|e| CliError::Io(parsed.addr.clone(), e))?;
            eprintln!("geoalign-serve listening on http://{}", server.addr());
            eprintln!(
                "endpoints: POST /systems /references /ingest /crosswalk /checkpoint — GET /healthz /metrics"
            );
            if parsed.debug_endpoints {
                eprintln!(
                    "debug endpoints: GET /debug/profile /debug/spans /debug/slow /debug/threads"
                );
            }
            if let Some(dir) = &parsed.data_dir {
                let state = server.state();
                if let Some(backing) = state.durable() {
                    let r = backing.store().recovery();
                    eprintln!(
                        "durable store at {dir}: {} entries ({} from snapshot, {} WAL records replayed, {} repairs)",
                        backing.store().len(),
                        r.snapshot_records,
                        r.wal_records_replayed,
                        r.repairs
                    );
                }
            }
            // Serve until the process is killed.
            loop {
                std::thread::park();
            }
        }
        "store" => {
            let parsed = parse_store_args(rest)?;
            print!("{}", run_store(&parsed)?);
            Ok(())
        }
        "agg" => {
            let parsed = parse_agg_args(rest)?;
            print!("{}", run_agg(&parsed)?);
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}
