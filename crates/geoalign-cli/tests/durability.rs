//! End-to-end durability proof: a `geoalign serve --data-dir` process is
//! killed with SIGKILL after computing a crosswalk, and the restarted
//! process answers the same request byte-identically from disk — warm
//! hits counted, no solver re-run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    /// Starts `geoalign serve --data-dir dir --addr 127.0.0.1:0` and
    /// waits for the listening line on stderr to learn the port.
    fn start(dir: &Path) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_geoalign"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                dir.to_str().unwrap(),
            ])
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn geoalign serve");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before announcing its address")
                .unwrap();
            if let Some(rest) = line.split("listening on http://").nth(1) {
                break rest.trim().to_owned();
            }
        };
        // Drain the rest of stderr in the background so the child never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServeProc { child, addr }
    }

    /// One HTTP/1.1 request with `Connection: close`; returns the full
    /// response text.
    fn request(&self, method: &str, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect to serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk).unwrap() {
                0 => break,
                n => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8(out).unwrap()
    }

    fn kill(mut self) {
        // SIGKILL: no destructors, no flush — the crash the WAL is for.
        self.child.kill().unwrap();
        self.child.wait().unwrap();
    }
}

/// The response body (after the blank line).
fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// The `"columns":[...]` slice of a /crosswalk body — the part of the
/// answer that must be byte-identical across a restart (`cache_hit`
/// legitimately differs).
fn columns_of(body: &str) -> &str {
    let start = body.find(r#""columns":"#).expect("columns in body");
    &body[start..]
}

#[test]
fn serve_survives_sigkill_and_answers_byte_identically() {
    let dir = std::env::temp_dir().join(format!("geoalign-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let crosswalk_body = r#"{"source":"zip","target":"county",
        "attributes":[{"name":"steam","values":[10,20,30]}]}"#;

    // ---- Cold process: register, compute, checkpoint, SIGKILL. ----
    let cold_columns;
    {
        let serve = ServeProc::start(&dir);
        let r = serve.request(
            "POST",
            "/systems",
            r#"{"name":"zip","units":["z1","z2","z3"]}"#,
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        let r = serve.request("POST", "/systems", r#"{"name":"county","units":["A","B"]}"#);
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        let r = serve.request(
            "POST",
            "/references",
            r#"{"source":"zip","target":"county","name":"population",
               "entries":[["z1","A",100],["z2","A",60],["z2","B",40],["z3","B",80]]}"#,
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");

        let r = serve.request("POST", "/crosswalk", crosswalk_body);
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        let body = body_of(&r);
        assert!(body.contains(r#""cache_hit":false"#), "{body}");
        cold_columns = columns_of(body).to_owned();

        // Checkpoint drains the write-behind persister, so the prepared
        // crosswalk is durable before the kill.
        let r = serve.request("POST", "/checkpoint", "");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");

        serve.kill();
    }

    // ---- Warm process: same data dir, no registration calls at all. ----
    let serve = ServeProc::start(&dir);

    let r = serve.request("GET", "/healthz", "");
    let health = body_of(&r);
    assert!(health.contains(r#""enabled":true"#), "{health}");

    let r = serve.request("POST", "/crosswalk", crosswalk_body);
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    let body = body_of(&r);
    // Served from the revived snapshot: a hit, not a recompute.
    assert!(body.contains(r#""cache_hit":true"#), "{body}");
    assert_eq!(
        columns_of(body),
        cold_columns,
        "warm answer must be byte-identical to the pre-kill answer"
    );

    // The solver never ran in this process...
    let r = serve.request("GET", "/metrics", "");
    let metrics = body_of(&r);
    let prepare = metrics
        .split(r#""prepare_latency":{"#)
        .nth(1)
        .expect("prepare_latency in metrics");
    assert!(
        prepare.starts_with(r#""count":0"#),
        "warm start must not re-run prepare: {prepare}"
    );
    // ...and the warm hit is visible on the store's counter.
    let r = serve.request("GET", "/metrics?format=prometheus", "");
    let prom = body_of(&r);
    let warm_hits = prom
        .lines()
        .find(|l| l.starts_with("geoalign_store_warm_hits_total"))
        .expect("warm-hits counter exported");
    let count: u64 = warm_hits
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(count >= 1, "{warm_hits}");

    serve.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}
