//! Criterion version of paper Figure 6: GeoAlign runtime across the
//! universe hierarchy (at a CI-friendly fraction of the paper's unit
//! counts; the `fig6_scalability` binary runs the full protocol).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoalign::core::eval::Catalog;
use geoalign::GeoAlign;
use geoalign_datagen::{us_catalog, CatalogSize, HIERARCHY};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_geoalign_runtime");
    group.sample_size(20);
    let scale = 0.02;
    for level in HIERARCHY {
        let size = CatalogSize {
            n_source: ((level.n_source as f64 * scale) as usize).max(8),
            n_target: ((level.n_target as f64 * scale) as usize).max(3),
            base_points: 20_000,
        };
        let synth = us_catalog(size, 1).unwrap();
        let catalog: Catalog = geoalign::to_eval_catalog(&synth).unwrap();
        let test_idx = catalog
            .datasets()
            .iter()
            .position(|d| d.name() == "Population")
            .unwrap();
        let refs = catalog.references_excluding(test_idx);
        let objective = catalog.datasets()[test_idx].reference().source();
        let ga = GeoAlign::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{} ({} src)",
                level.name,
                synth.universe.n_source()
            )),
            &(&objective, &refs),
            |bch, (objective, refs)| {
                bch.iter(|| ga.estimate(black_box(objective), black_box(refs)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
