//! End-to-end pipeline bench: catalog generation, overlay, and a full
//! cross-validated Figure-5-style evaluation at small scale — the
//! "everything" path a downstream user exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use geoalign::core::eval::cross_validate;
use geoalign::{
    ArealWeightingInterpolator, DasymetricInterpolator, GeoAlignInterpolator, Interpolator,
};
use geoalign_datagen::{ny_catalog, CatalogSize};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("ny_catalog_generation_small", |b| {
        b.iter(|| ny_catalog(black_box(CatalogSize::small()), 3).unwrap())
    });

    let synth = ny_catalog(CatalogSize::small(), 3).unwrap();
    let catalog = geoalign::to_eval_catalog(&synth).unwrap();
    let ga = GeoAlignInterpolator::new();
    let das = DasymetricInterpolator::new("Population");
    let aw = ArealWeightingInterpolator::new(catalog.measure_dm().clone());
    group.bench_function("cross_validate_ny_small_3methods", |b| {
        let methods: Vec<&dyn Interpolator> = vec![&ga, &das, &aw];
        b.iter(|| cross_validate(black_box(&catalog), black_box(&methods)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
