//! Ablation bench: spatial overlay with R-tree acceleration vs brute
//! force, across unit-system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoalign::geom::clip::clip_convex;
use geoalign::geom::{Aabb, Point2};
use geoalign::partition::{Overlay, PolygonUnitSystem};
use geoalign_datagen::universe::voronoi_system;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn systems(n_source: usize, n_target: usize) -> (PolygonUnitSystem, PolygonUnitSystem) {
    let mut rng = StdRng::seed_from_u64(7);
    let side = (n_source as f64).sqrt();
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(side, side));
    let s = voronoi_system("s", &bounds, n_source, &mut rng).unwrap();
    let t = voronoi_system("t", &bounds, n_target, &mut rng).unwrap();
    (s, t)
}

/// Brute-force overlay: every source against every target, bbox test only.
fn overlay_brute(s: &PolygonUnitSystem, t: &PolygonUnitSystem) -> usize {
    let mut pieces = 0usize;
    for su in s.units() {
        for tu in t.units() {
            if su.bbox().intersects(tu.bbox()) {
                if let Some(p) = clip_convex(su, tu) {
                    pieces += 1;
                    black_box(p.area());
                }
            }
        }
    }
    pieces
}

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    group.sample_size(10);
    for &(ns, nt) in &[(500usize, 50usize), (2_000, 200)] {
        let (s, t) = systems(ns, nt);
        group.bench_with_input(
            BenchmarkId::new("rtree", format!("{ns}x{nt}")),
            &(&s, &t),
            |bch, (s, t)| bch.iter(|| Overlay::polygons(black_box(s), black_box(t)).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("brute_force", format!("{ns}x{nt}")),
            &(&s, &t),
            |bch, (s, t)| bch.iter(|| overlay_brute(black_box(s), black_box(t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
