//! Serving-cache bench: the value of the prepare/apply split.
//!
//! `geoalign-serve` answers `/crosswalk` batches by preparing one
//! [`PreparedCrosswalk`] per (source, target, reference set) and reusing
//! it for every attribute vector. This bench measures the per-query cost
//! of that warm path against the cold one-shot `GeoAlign::estimate`,
//! which rebuilds the design matrix, Gram system, row sums, and the full
//! disaggregation-matrix estimate on every call. The acceptance bar is a
//! ≥5× per-query speedup when one snapshot serves a batch of 16
//! attribute vectors; the `speedup` line printed at the end states the
//! measured ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use geoalign::{AggregateVector, DisaggregationMatrix, GeoAlign, ReferenceData};
use std::hint::black_box;
use std::time::Instant;

const N_SOURCE: usize = 1500;
const N_TARGET: usize = 400;
const N_REFS: usize = 6;
const BATCH: usize = 16;

/// Deterministic pseudo-random stream (splitmix64) — no RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A reference whose every source row spreads over ~5 target units.
fn reference(idx: usize) -> ReferenceData {
    let mut state = 0x5eed_0000 + idx as u64;
    let mut triples = Vec::with_capacity(N_SOURCE * 5);
    for i in 0..N_SOURCE {
        let base = (splitmix(&mut state) as usize) % N_TARGET;
        for k in 0..5 {
            let j = (base + k * 7) % N_TARGET;
            triples.push((i, j, 0.5 + 10.0 * unit_f64(&mut state)));
        }
    }
    let name = format!("ref{idx}");
    let dm = DisaggregationMatrix::from_triples(&name, N_SOURCE, N_TARGET, triples).unwrap();
    ReferenceData::from_dm(&name, dm).unwrap()
}

fn attribute(idx: usize) -> AggregateVector {
    let mut state = 0xa77e_0000 + idx as u64;
    let values: Vec<f64> = (0..N_SOURCE)
        .map(|_| 100.0 * unit_f64(&mut state))
        .collect();
    AggregateVector::new(format!("attr{idx}"), values).unwrap()
}

fn median_ns<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_serve_cache(c: &mut Criterion) {
    let refs: Vec<ReferenceData> = (0..N_REFS).map(reference).collect();
    let refs_view: Vec<&ReferenceData> = refs.iter().collect();
    let attrs: Vec<AggregateVector> = (0..BATCH).map(attribute).collect();
    let aligner = GeoAlign::new();
    let prepared = aligner.prepare(&refs_view).unwrap();

    let mut group = c.benchmark_group("serve_cache");
    group.sample_size(10);
    group.bench_function("cold_estimate_per_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = &attrs[i % BATCH];
            i += 1;
            aligner
                .estimate(black_box(a), black_box(&refs_view))
                .unwrap()
        })
    });
    group.bench_function("prepared_apply_per_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = &attrs[i % BATCH];
            i += 1;
            prepared.apply_values(black_box(a)).unwrap()
        })
    });
    group.finish();

    // Explicit acceptance check: amortize one prepare over a batch of 16
    // queries (the serving pattern) and report per-query speedup over the
    // cold one-shot path.
    let cold = median_ns(
        || {
            for a in &attrs {
                black_box(aligner.estimate(a, &refs_view).unwrap());
            }
        },
        9,
    );
    let warm = median_ns(
        || {
            let p = aligner.prepare(&refs_view).unwrap();
            for a in &attrs {
                black_box(p.apply_values(a).unwrap());
            }
        },
        9,
    );
    let speedup = cold / warm;
    println!(
        "serve_cache/speedup: batch of {BATCH} queries, cold {:.2} ms vs prepared {:.2} ms \
         -> {speedup:.1}x per query",
        cold / 1e6,
        warm / 1e6
    );
    assert!(
        speedup >= 5.0,
        "prepared-crosswalk reuse must be at least 5x faster per query (got {speedup:.2}x)"
    );
}

criterion_group!(benches, bench_serve_cache);
criterion_main!(benches);
