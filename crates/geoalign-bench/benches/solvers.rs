//! Ablation bench: the two Eq. 15 solvers (active set vs projected
//! gradient) across reference counts and source-unit counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoalign::linalg::dense::DMatrix;
use geoalign::linalg::simplex_ls::{solve, SimplexSolver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_problem(m: usize, n: usize, seed: u64) -> (DMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..m).map(|_| rng.random::<f64>()).collect())
        .collect();
    let a = DMatrix::from_columns(&cols).unwrap();
    let beta: Vec<f64> = {
        let raw: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let s: f64 = raw.iter().sum();
        raw.iter().map(|v| v / s).collect()
    };
    let mut b = a.matvec(&beta).unwrap();
    for v in &mut b {
        *v *= 1.0 + 0.05 * (rng.random::<f64>() - 0.5);
    }
    (a, b)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_ls");
    for &(m, n) in &[(1_794usize, 7usize), (30_238, 9), (30_238, 32)] {
        let (a, b) = random_problem(m, n, 42);
        group.bench_with_input(
            BenchmarkId::new("active_set", format!("{m}x{n}")),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| solve(black_box(a), black_box(b), SimplexSolver::ActiveSet)),
        );
        group.bench_with_input(
            BenchmarkId::new("projected_gradient", format!("{m}x{n}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| solve(black_box(a), black_box(b), SimplexSolver::ProjectedGradient))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
