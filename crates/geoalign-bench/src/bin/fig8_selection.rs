//! Regenerates paper Figure 8: robustness of GeoAlign to the choice of
//! reference attributes. For each US dataset the reference pool is reduced
//! by leaving out the 1 or 2 references most (or least) correlated with
//! the objective at the source level, and the NRMSE is compared with using
//! all references.
//!
//! Usage: `fig8_selection [--small|--medium|--paper] [--seed N]`

use geoalign::core::eval::{selection_experiment, LeaveOut};
use geoalign::GeoAlignInterpolator;
use geoalign_bench::{us_eval_catalog, ScalePreset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = ScalePreset::Medium;
    let mut seed = 20180326u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            flag => {
                if let Some(p) = ScalePreset::from_flag(flag) {
                    preset = p;
                } else {
                    eprintln!("unknown argument: {flag}");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!("generating US catalog at {preset:?} scale (seed {seed})...");
    let catalog = us_eval_catalog(preset, seed).expect("catalog");

    let policies = [
        LeaveOut::LeastRelated(1),
        LeaveOut::LeastRelated(2),
        LeaveOut::MostRelated(1),
        LeaveOut::MostRelated(2),
        LeaveOut::None,
    ];
    let ga = GeoAlignInterpolator::new();
    let report = selection_experiment(&catalog, &ga, &policies).expect("selection experiment");

    println!("# Figure 8 — NRMSE under reference leave-out policies (GeoAlign)");
    println!(
        "{:28} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "-1 least", "-2 least", "-1 most", "-2 most", "all refs"
    );
    let mut datasets: Vec<&str> = Vec::new();
    for c in &report.cells {
        if !datasets.contains(&c.dataset.as_str()) {
            datasets.push(&c.dataset);
        }
    }
    for d in &datasets {
        print!("{d:28}");
        for p in policies {
            match report.nrmse(d, p) {
                Some(v) => print!(" {v:>12.4}"),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    println!("\n# withheld references per dataset (most-related, n=2):");
    for c in &report.cells {
        if c.policy == LeaveOut::MostRelated(2) {
            println!("{:28} dropped: {}", c.dataset, c.dropped.join(", "));
        }
    }
}
