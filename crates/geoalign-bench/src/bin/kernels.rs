//! Kernel throughput suite: before/after numbers for the cache-aware
//! kernel rework (blocked gram, branch-free CSR matvec, scratch-arena
//! solvers and apply path).
//!
//! "Before" is not a guess: the pre-rework kernels are transliterated
//! into [`old`] below, run against the library's current kernels on the
//! same inputs, and asserted **bit-identical** at 1, 2 and 8 threads
//! before anything is timed. The JSON then records rows/sec and
//! ns/element for both, per universe scale — small, medium, and the
//! paper's 30238×3142 US universe.
//!
//! Writes `BENCH_kernels.json` (see `--out`). At the paper scale the
//! binary additionally gates on the rework actually winning single-thread
//! on gram and CSR matvec — the whole point of the rework.
//!
//! Usage: `kernels [--small|--medium|--paper] [--seed N] [--trials N]
//!                 [--out BENCH_kernels.json]`
//! (no scale flag runs all three scales; `--small` is the CI smoke mode)

use geoalign_core::{GeoAlign, PreparedCrosswalk, ReferenceData};
use geoalign_exec::Executor;
use geoalign_geom::{Aabb, Point2, VoronoiDiagram};
use geoalign_linalg::dense::{axpy, dot, norm2};
use geoalign_linalg::simplex_ls::{
    project_to_simplex, solve_projected_gradient_gram_scratch, GramSystem,
};
use geoalign_linalg::{CooMatrix, CsrMatrix, DMatrix, LinalgError, SolverScratch};
use geoalign_partition::{AggregateVector, DisaggregationMatrix, Overlay, PolygonUnitSystem};
use std::fmt::Write as _;
use std::time::Instant;

/// FISTA budget used by `solve_gram` for the projected-gradient solver.
const PG_MAX_ITER: usize = 2000;
const PG_TOL: f64 = 1e-12;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Times `f` over `trials` runs (after one warm-up) and returns the mean
/// wall time in nanoseconds.
fn time_ns<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f();
    let t = Instant::now();
    for _ in 0..trials {
        let _ = f();
    }
    t.elapsed().as_secs_f64() * 1e9 / trials as f64
}

/// The pre-rework kernels, transliterated from this repository's own
/// history (the commit the rework replaced) so before/after numbers are
/// measured, not remembered. Each must stay bit-identical to its
/// replacement — the mainline asserts it before timing.
mod old {
    use super::*;

    /// Old `DMatrix::gram_with`: one freshly allocated upper-triangle row
    /// `Vec` per column task, assembled into the Gram matrix afterwards.
    pub fn gram_with(a: &DMatrix, exec: Executor) -> Result<DMatrix, LinalgError> {
        let k = a.ncols();
        let upper = exec.map_indexed(k, |i| {
            (i..k)
                .map(|j| dot(a.column(i), a.column(j)))
                .collect::<Vec<f64>>()
        })?;
        let mut g = DMatrix::zeros(k, k);
        for (i, row) in upper.into_iter().enumerate() {
            for (off, v) in row.into_iter().enumerate() {
                let j = i + off;
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        Ok(g)
    }

    /// Old `CsrMatrix::matvec_with`: a materialized chunk-range `Vec`, one
    /// allocated partial-result `Vec` per chunk, and a gather copy at the
    /// end.
    pub fn matvec_with(m: &CsrMatrix, x: &[f64], exec: Executor) -> Result<Vec<f64>, LinalgError> {
        let ranges: Vec<_> = Executor::chunk_ranges(m.nrows()).collect();
        let per_chunk = exec.run_tasks(ranges.len(), |t| {
            ranges[t]
                .clone()
                .map(|i| {
                    let (cols, vals) = m.row(i);
                    cols.iter()
                        .zip(vals)
                        .map(|(&j, &v)| v * x[j as usize])
                        .sum()
                })
                .collect::<Vec<f64>>()
        })?;
        let mut y = Vec::with_capacity(m.nrows());
        for chunk in per_chunk {
            y.extend(chunk);
        }
        Ok(y)
    }

    fn objective(gs: &GramSystem, beta: &[f64], atb: &[f64], btb: f64) -> Result<f64, LinalgError> {
        let gb = gs.gram().matvec(beta)?;
        Ok(0.5 * dot(beta, &gb) - dot(beta, atb) + 0.5 * btb)
    }

    fn gradient(gs: &GramSystem, beta: &[f64], atb: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut g = gs.gram().matvec(beta)?;
        for (gi, ci) in g.iter_mut().zip(atb) {
            *gi -= ci;
        }
        Ok(g)
    }

    /// Old FISTA loop of `solve_projected_gradient_gram`: fresh `grad`,
    /// `z`, `x_next` and `diff` vectors plus two clones per iteration.
    pub fn solve_projected_gradient_gram(
        gs: &GramSystem,
        atb: &[f64],
        btb: f64,
        max_iter: usize,
        tol: f64,
    ) -> Result<(Vec<f64>, f64, usize), LinalgError> {
        let n = gs.n();
        let g = gs.gram();
        let mut lmax = 0.0f64;
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                row_sum += g[(i, j)].abs();
            }
            lmax = lmax.max(row_sum);
        }
        let step = 1.0 / lmax.max(f64::MIN_POSITIVE);

        let mut x = vec![1.0 / n as f64; n];
        let mut y = x.clone();
        let mut t = 1.0f64;
        let mut iterations = 0;
        let scale = btb.sqrt().max(1.0);
        let mut best = x.clone();
        let mut best_obj = objective(gs, &x, atb, btb)?;
        let mut prev_obj = best_obj;
        for _ in 0..max_iter {
            iterations += 1;
            let grad = gradient(gs, &y, atb)?;
            let mut z: Vec<f64> = y.clone();
            axpy(-step, &grad, &mut z);
            let x_next = project_to_simplex(&z);
            let obj = objective(gs, &x_next, atb, btb)?;
            if obj < best_obj {
                best_obj = obj;
                best.clone_from(&x_next);
            }
            let restart = obj > prev_obj;
            prev_obj = obj;
            let t_next = if restart {
                1.0
            } else {
                0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt())
            };
            let momentum = if restart { 0.0 } else { (t - 1.0) / t_next };
            let diff: Vec<f64> = x_next.iter().zip(&x).map(|(p, q)| p - q).collect();
            let delta = norm2(&diff);
            y = x_next.clone();
            axpy(momentum, &diff, &mut y);
            x = x_next;
            t = t_next;
            if delta <= tol * scale {
                break;
            }
        }
        let beta = project_to_simplex(&best);
        let objective = objective(gs, &beta, atb, btb)?;
        Ok((beta, objective, iterations))
    }

    /// Old `apply_batch_with`: each task runs the public allocating
    /// `apply_values` (a fresh working set per query) — exactly the
    /// pre-rework batch path.
    pub fn apply_batch_with(
        prepared: &PreparedCrosswalk,
        objectives: &[AggregateVector],
        exec: Executor,
    ) -> Vec<geoalign_core::CrosswalkEstimate> {
        exec.map_indexed(objectives.len(), |i| {
            prepared.apply_values(&objectives[i]).expect("apply")
        })
        .expect("batch")
    }
}

/// One benchmark universe: a dense design matrix (gram + solver), a
/// sparse crosswalk matrix (matvec), prepared references with a query
/// batch (apply), and jittered-grid dimensions (overlay).
struct Scale {
    name: &'static str,
    n_source: usize,
    n_target: usize,
    refs: usize,
    nnz_per_row: usize,
    batch: usize,
    grid_fine: usize,
    grid_coarse: usize,
}

const SCALES: [Scale; 3] = [
    Scale {
        name: "small",
        n_source: 2_000,
        n_target: 200,
        refs: 4,
        nnz_per_row: 4,
        batch: 8,
        grid_fine: 16,
        grid_coarse: 4,
    },
    Scale {
        name: "medium",
        n_source: 7_560,
        n_target: 786,
        refs: 6,
        nnz_per_row: 5,
        batch: 8,
        grid_fine: 40,
        grid_coarse: 8,
    },
    Scale {
        name: "paper",
        n_source: 30_238,
        n_target: 3_142,
        refs: 8,
        nnz_per_row: 6,
        batch: 8,
        grid_fine: 174,
        grid_coarse: 56,
    },
];

/// A random sparse crosswalk: `nnz_per_row` entries per source row at
/// pseudo-random distinct target columns.
fn random_csr(scale: &Scale, state: &mut u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(scale.n_source, scale.n_target);
    for i in 0..scale.n_source {
        let start = (lcg(state) * scale.n_target as f64) as usize % scale.n_target;
        let stride = 1 + (lcg(state) * 7.0) as usize;
        for s in 0..scale.nnz_per_row {
            let j = (start + s * stride) % scale.n_target;
            let v = 0.1 + lcg(state) * 10.0;
            coo.push(i, j, v).expect("in-bounds push");
        }
        // Duplicate (i, j) pairs are merged by `to_csr`; row occupancy may
        // be below nnz_per_row when the stride wraps, which is fine.
    }
    coo.to_csr()
}

fn random_design(scale: &Scale, state: &mut u64) -> DMatrix {
    let columns: Vec<Vec<f64>> = (0..scale.refs)
        .map(|_| {
            (0..scale.n_source)
                .map(|_| lcg(state) * 100.0)
                .collect::<Vec<f64>>()
        })
        .collect();
    DMatrix::from_columns(&columns).expect("design")
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Before/after timings of one kernel, single-thread and at 8 threads.
struct KernelTimings {
    old_seq_ns: f64,
    new_seq_ns: f64,
    old_t8_ns: f64,
    new_t8_ns: f64,
    /// Logical rows one run processes (throughput numerator).
    rows: u64,
    /// Elements (mul-adds / nonzeros / cells) one run touches.
    elements: u64,
}

impl KernelTimings {
    fn json(&self, label: &str) -> String {
        let mut out = String::new();
        let rps = |ns: f64| self.rows as f64 / (ns.max(1.0) * 1e-9);
        let npe = |ns: f64| ns / (self.elements.max(1) as f64);
        let _ = writeln!(out, "      \"{label}\": {{");
        let _ = writeln!(
            out,
            "        \"old_ms\": {:.4}, \"new_ms\": {:.4}, \"single_thread_speedup\": {:.3},",
            self.old_seq_ns / 1e6,
            self.new_seq_ns / 1e6,
            self.old_seq_ns / self.new_seq_ns.max(1.0)
        );
        let _ = writeln!(
            out,
            "        \"old_rows_per_sec\": {:.0}, \"new_rows_per_sec\": {:.0},",
            rps(self.old_seq_ns),
            rps(self.new_seq_ns)
        );
        let _ = writeln!(
            out,
            "        \"old_ns_per_element\": {:.3}, \"new_ns_per_element\": {:.3},",
            npe(self.old_seq_ns),
            npe(self.new_seq_ns)
        );
        let _ = write!(
            out,
            "        \"old_threads8_ms\": {:.4}, \"new_threads8_ms\": {:.4}\n      }}",
            self.old_t8_ns / 1e6,
            self.new_t8_ns / 1e6
        );
        out
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 30238u64;
    let mut trials = 5usize;
    let mut out_path = "BENCH_kernels.json".to_owned();
    let mut only: Option<&'static str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--trials" => trials = it.next().expect("--trials value").parse().expect("int"),
            "--out" => out_path = it.next().expect("--out value").clone(),
            "--small" => only = Some("small"),
            "--medium" => only = Some("medium"),
            "--paper" | "--full" => only = Some("paper"),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scales: Vec<&Scale> = SCALES
        .iter()
        .filter(|s| only.is_none_or(|o| o == s.name))
        .collect();

    let mut scale_blocks: Vec<String> = Vec::new();
    for scale in &scales {
        let mut state = seed;
        eprintln!(
            "# kernels — scale {} ({}x{}, {} refs), trials {trials}",
            scale.name, scale.n_source, scale.n_target, scale.refs
        );
        let design = random_design(scale, &mut state);
        let csr = random_csr(scale, &mut state);
        let x: Vec<f64> = (0..scale.n_target).map(|_| lcg(&mut state) * 3.0).collect();
        let seq = Executor::sequential();
        let t8 = Executor::new(8);

        // --- gram ---------------------------------------------------------
        let new_gram = design.gram_with(seq).expect("gram");
        for threads in [1usize, 2, 8] {
            let exec = if threads == 1 {
                Executor::sequential()
            } else {
                Executor::new(threads)
            };
            let old_g = old::gram_with(&design, exec).expect("old gram");
            let new_g = design.gram_with(exec).expect("new gram");
            for j in 0..new_gram.ncols() {
                assert_bits_eq(old_g.column(j), new_gram.column(j), "gram old-vs-new");
                assert_bits_eq(new_g.column(j), new_gram.column(j), "gram threads");
            }
        }
        let k = scale.refs as u64;
        let gram = KernelTimings {
            old_seq_ns: time_ns(trials, || old::gram_with(&design, seq).expect("gram")),
            new_seq_ns: time_ns(trials, || design.gram_with(seq).expect("gram")),
            old_t8_ns: time_ns(trials, || old::gram_with(&design, t8).expect("gram")),
            new_t8_ns: time_ns(trials, || design.gram_with(t8).expect("gram")),
            rows: scale.n_source as u64,
            elements: k * (k + 1) / 2 * scale.n_source as u64,
        };

        // --- CSR matvec ---------------------------------------------------
        let new_y = csr.matvec_with(&x, seq).expect("matvec");
        for threads in [1usize, 2, 8] {
            let exec = if threads == 1 {
                Executor::sequential()
            } else {
                Executor::new(threads)
            };
            let old_y = old::matvec_with(&csr, &x, exec).expect("old matvec");
            let par_y = csr.matvec_with(&x, exec).expect("new matvec");
            assert_bits_eq(&old_y, &new_y, "csr_matvec old-vs-new");
            assert_bits_eq(&par_y, &new_y, "csr_matvec threads");
        }
        let matvec = KernelTimings {
            old_seq_ns: time_ns(trials * 4, || old::matvec_with(&csr, &x, seq).expect("mv")),
            new_seq_ns: time_ns(trials * 4, || csr.matvec_with(&x, seq).expect("mv")),
            old_t8_ns: time_ns(trials * 4, || old::matvec_with(&csr, &x, t8).expect("mv")),
            new_t8_ns: time_ns(trials * 4, || csr.matvec_with(&x, t8).expect("mv")),
            rows: csr.nrows() as u64,
            elements: csr.nnz() as u64,
        };

        // --- simplex-LS (FISTA) -------------------------------------------
        let gs = GramSystem::new(&design).expect("gram system");
        let b: Vec<f64> = (0..scale.n_source)
            .map(|_| lcg(&mut state) * 100.0)
            .collect();
        let atb = design.tr_matvec(&b).expect("atb");
        let btb = dot(&b, &b);
        let (old_beta, old_obj, old_iters) =
            old::solve_projected_gradient_gram(&gs, &atb, btb, PG_MAX_ITER, PG_TOL)
                .expect("old pg");
        let mut solver_scratch = SolverScratch::new();
        let new_sol = solve_projected_gradient_gram_scratch(
            &gs,
            &atb,
            btb,
            PG_MAX_ITER,
            PG_TOL,
            &mut solver_scratch,
        )
        .expect("new pg");
        assert_bits_eq(&old_beta, &new_sol.beta, "fista beta old-vs-new");
        assert_eq!(old_obj.to_bits(), new_sol.objective.to_bits(), "fista obj");
        assert_eq!(old_iters, new_sol.iterations, "fista iteration count");
        let iters = old_iters.max(1) as u64;
        let simplex = KernelTimings {
            old_seq_ns: time_ns(trials, || {
                old::solve_projected_gradient_gram(&gs, &atb, btb, PG_MAX_ITER, PG_TOL).expect("pg")
            }),
            new_seq_ns: time_ns(trials, || {
                solve_projected_gradient_gram_scratch(
                    &gs,
                    &atb,
                    btb,
                    PG_MAX_ITER,
                    PG_TOL,
                    &mut solver_scratch,
                )
                .expect("pg")
            }),
            // The solver is single-threaded; reuse the sequential numbers
            // so the JSON schema stays uniform.
            old_t8_ns: 0.0,
            new_t8_ns: 0.0,
            rows: iters,
            elements: iters * k * k,
        };
        let simplex = KernelTimings {
            old_t8_ns: simplex.old_seq_ns,
            new_t8_ns: simplex.new_seq_ns,
            ..simplex
        };

        // --- apply_batch --------------------------------------------------
        let refs: Vec<ReferenceData> = (0..scale.refs)
            .map(|r| {
                let m = random_csr(scale, &mut state);
                let triples: Vec<(usize, usize, f64)> = m.iter().collect();
                let dm = DisaggregationMatrix::from_triples(
                    format!("ref{r}"),
                    scale.n_source,
                    scale.n_target,
                    triples,
                )
                .expect("dm");
                ReferenceData::from_dm(format!("ref{r}"), dm).expect("reference")
            })
            .collect();
        let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
        let prepared = GeoAlign::new().prepare(&ref_slices).expect("prepare");
        let objectives: Vec<AggregateVector> = (0..scale.batch)
            .map(|i| {
                let values: Vec<f64> = (0..scale.n_source)
                    .map(|_| lcg(&mut state) * 100.0)
                    .collect();
                AggregateVector::new(format!("attr{i}"), values).expect("objective")
            })
            .collect();
        let total_nnz: u64 = refs.iter().map(|r| r.dm().matrix().nnz() as u64).sum();
        let baseline = prepared
            .apply_batch_with(&objectives, seq)
            .expect("batch apply");
        for threads in [1usize, 2, 8] {
            let exec = if threads == 1 {
                Executor::sequential()
            } else {
                Executor::new(threads)
            };
            let old_batch = old::apply_batch_with(&prepared, &objectives, exec);
            let new_batch = prepared.apply_batch_with(&objectives, exec).expect("batch");
            for ((o, n), base) in old_batch.iter().zip(&new_batch).zip(&baseline) {
                assert_bits_eq(&o.estimate, &base.estimate, "apply old-vs-new");
                assert_bits_eq(&n.estimate, &base.estimate, "apply threads");
                assert_bits_eq(&o.weights, &base.weights, "apply weights old");
                assert_bits_eq(&n.weights, &base.weights, "apply weights new");
            }
        }
        let apply = KernelTimings {
            old_seq_ns: time_ns(trials, || {
                old::apply_batch_with(&prepared, &objectives, seq)
            }),
            new_seq_ns: time_ns(trials, || {
                prepared.apply_batch_with(&objectives, seq).expect("batch")
            }),
            old_t8_ns: time_ns(trials, || old::apply_batch_with(&prepared, &objectives, t8)),
            new_t8_ns: time_ns(trials, || {
                prepared.apply_batch_with(&objectives, t8).expect("batch")
            }),
            rows: (scale.batch * scale.n_source) as u64,
            elements: scale.batch as u64 * total_nnz,
        };

        // --- overlay (untouched kernel: current numbers only) -------------
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let mut r = |_| lcg(&mut state);
        let fine =
            VoronoiDiagram::jittered_grid(bounds, scale.grid_fine, scale.grid_fine, 0.45, &mut r)
                .expect("fine voronoi");
        let coarse = VoronoiDiagram::jittered_grid(
            bounds,
            scale.grid_coarse,
            scale.grid_coarse,
            0.45,
            &mut r,
        )
        .expect("coarse voronoi");
        let src = PolygonUnitSystem::from_voronoi("fine", fine).expect("source system");
        let tgt = PolygonUnitSystem::from_voronoi("coarse", coarse).expect("target system");
        let overlay_trials = if scale.name == "paper" { 1 } else { trials };
        let seq_overlay = Overlay::polygons_with(&src, &tgt, seq).expect("overlay");
        for threads in [2usize, 8] {
            let par = Overlay::polygons_with(&src, &tgt, Executor::new(threads)).expect("overlay");
            assert_eq!(par.len(), seq_overlay.len(), "overlay determinism");
            for (a, b) in seq_overlay.pieces().iter().zip(par.pieces()) {
                assert_eq!(a.measure.to_bits(), b.measure.to_bits(), "overlay bits");
            }
        }
        let overlay_seq_ns = time_ns(overlay_trials, || {
            Overlay::polygons_with(&src, &tgt, seq).expect("overlay")
        });
        let overlay_t8_ns = time_ns(overlay_trials, || {
            Overlay::polygons_with(&src, &tgt, t8).expect("overlay")
        });

        // --- single-thread win gate (paper scale only) --------------------
        if scale.name == "paper" {
            assert!(
                gram.new_seq_ns <= gram.old_seq_ns,
                "gram rework must win single-thread at paper scale: old {:.3} ms vs new {:.3} ms",
                gram.old_seq_ns / 1e6,
                gram.new_seq_ns / 1e6
            );
            assert!(
                matvec.new_seq_ns <= matvec.old_seq_ns,
                "matvec rework must win single-thread at paper scale: old {:.3} ms vs new {:.3} ms",
                matvec.old_seq_ns / 1e6,
                matvec.new_seq_ns / 1e6
            );
        }
        for (label, t) in [
            ("gram", &gram),
            ("csr_matvec", &matvec),
            ("simplex_ls", &simplex),
            ("apply_batch", &apply),
        ] {
            eprintln!(
                "{label:>11} @{}: old {:>10.3} ms, new {:>10.3} ms ({:.2}x single-thread)",
                scale.name,
                t.old_seq_ns / 1e6,
                t.new_seq_ns / 1e6,
                t.old_seq_ns / t.new_seq_ns.max(1.0)
            );
        }
        eprintln!(
            "    overlay @{}: {:>10.3} ms seq, {:>10.3} ms @8 ({} pieces)",
            scale.name,
            overlay_seq_ns / 1e6,
            overlay_t8_ns / 1e6,
            seq_overlay.len()
        );

        // --- JSON block ---------------------------------------------------
        let mut block = String::new();
        let _ = writeln!(block, "    \"{}\": {{", scale.name);
        let _ = writeln!(
            block,
            "      \"universe\": {{ \"n_source\": {}, \"n_target\": {}, \"refs\": {}, \"nnz\": {}, \"batch\": {}, \"fista_iterations\": {} }},",
            scale.n_source,
            scale.n_target,
            scale.refs,
            csr.nnz(),
            scale.batch,
            old_iters
        );
        block.push_str(&gram.json("gram"));
        block.push_str(",\n");
        block.push_str(&matvec.json("csr_matvec"));
        block.push_str(",\n");
        block.push_str(&simplex.json("simplex_ls"));
        block.push_str(",\n");
        block.push_str(&apply.json("apply_batch"));
        block.push_str(",\n");
        let _ = writeln!(
            block,
            "      \"overlay\": {{ \"ms\": {:.4}, \"threads8_ms\": {:.4}, \"pieces\": {}, \"pieces_per_sec\": {:.0}, \"ns_per_piece\": {:.1} }}",
            overlay_seq_ns / 1e6,
            overlay_t8_ns / 1e6,
            seq_overlay.len(),
            seq_overlay.len() as f64 / (overlay_seq_ns.max(1.0) * 1e-9),
            overlay_seq_ns / seq_overlay.len().max(1) as f64
        );
        block.push_str("    }");
        scale_blocks.push(block);
    }

    // --- BENCH_kernels.json ----------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(
        json,
        "  \"bit_identity\": {{ \"thread_counts\": [1, 2, 8], \"old_equals_new\": true }},"
    );
    json.push_str("  \"scales\": {\n");
    json.push_str(&scale_blocks.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
