//! Structural diagnostics of the synthetic catalogs (not a paper figure).
//!
//! Quantifies the generative properties the evaluation relies on (see
//! DESIGN.md §2 and EXPERIMENTS.md "Known deviations"):
//!
//! * target-level mass concentration (`county pop max/mean`);
//! * how much objective mass sits in boundary-straddling source units;
//! * how much of that mass an area-proportional split would misallocate —
//!   the upper bound on areal weighting's possible error.
use geoalign_bench::ScalePreset;
use geoalign_datagen::us_catalog;

fn main() {
    let preset = ScalePreset::Small;
    let cat = us_catalog(preset.us_size(), 20180326).unwrap();
    let pop = cat.get("Population").unwrap();
    let truth = &pop.target_truth;
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let max = truth.iter().cloned().fold(0.0f64, f64::max);
    println!("county pop max/mean: {:.1}", max / mean);
    // Straddling mass fraction: source units with >1 target in their DM row.
    let dm = pop.dm.matrix();
    let mut straddle_mass = 0.0;
    let mut total = 0.0;
    let mut n_straddle = 0;
    for i in 0..dm.nrows() {
        let (cols, vals) = dm.row(i);
        let m: f64 = vals.iter().sum();
        total += m;
        if cols.len() > 1 {
            straddle_mass += m;
            n_straddle += 1;
        }
    }
    println!(
        "straddling zips: {} / {} holding {:.1}% of mass",
        n_straddle,
        dm.nrows(),
        100.0 * straddle_mass / total
    );
    // For straddling zips: average |area_split - true_split| (L1/2) weighted by mass.
    let area = cat.universe.area_dm.matrix();
    let mut werr = 0.0;
    for i in 0..dm.nrows() {
        let (cols, vals) = dm.row(i);
        if cols.len() < 2 {
            continue;
        }
        let m: f64 = vals.iter().sum();
        let (acols, avals) = area.row(i);
        let asum: f64 = avals.iter().sum();
        let mut l1 = 0.0;
        for (c, v) in cols.iter().zip(vals) {
            let af = acols
                .iter()
                .position(|x| x == c)
                .map(|k| avals[k] / asum)
                .unwrap_or(0.0);
            l1 += (v / m - af).abs();
        }
        werr += m * l1 / 2.0;
    }
    println!(
        "mass misallocated by area split: {:.1}% of total",
        100.0 * werr / total
    );
}
