//! Streaming-ingest cost: what does folding one `/ingest` batch into a
//! live crosswalk cost on the incremental path (state merge + one-column
//! delta re-prepare) versus the naive alternative (re-aggregate every
//! point seen so far and re-run the full `O(n²m)` prepare)?
//!
//! The incremental path is the one geoalign-serve takes; the full path is
//! what a server without mergeable aggregate states would be forced into.
//! Both are timed per batch at a paper-scale universe (the United States
//! 30,238 × 3,142 unit counts by default), and the bench asserts the two
//! paths stay **bit-identical** — the incremental snapshot must answer
//! exactly like a from-scratch prepare over the concatenated points.
//!
//! Batches arrive pre-located (unit-id triples), matching the `/ingest`
//! wire format: the point-in-polygon cost is identical on both paths, so
//! it is excluded; what differs is the fold + prepare work.
//!
//! Writes machine-readable `BENCH_ingest.json` (see `--out`).
//!
//! Usage: `ingest [--small|--medium] [--seed N] [--batches N]
//!                [--batch-points N] [--out BENCH_ingest.json]`

use geoalign_agg::AggState;
use geoalign_core::{GeoAlign, ReferenceData};
use geoalign_partition::{AggregateVector, DisaggregationMatrix};
use std::fmt::Write as _;
use std::time::Instant;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// A synthetic static reference: every source unit spills into 1–3 of the
/// target units around its own scaled position, weights pseudo-random.
fn synthetic_reference(
    name: &str,
    n_source: usize,
    n_target: usize,
    state: &mut u64,
) -> ReferenceData {
    let mut triples = Vec::with_capacity(n_source * 2);
    for i in 0..n_source {
        let spread = 1 + (lcg(state) * 3.0) as usize;
        let base = i * n_target / n_source;
        for k in 0..spread {
            let j = (base + k) % n_target;
            triples.push((i, j, 1.0 + lcg(state) * 99.0));
        }
    }
    let dm = DisaggregationMatrix::from_triples(name, n_source, n_target, triples)
        .expect("synthetic dm");
    ReferenceData::from_dm(name, dm).expect("synthetic reference")
}

/// One pre-located ingest batch: `(source, target, weight)` triples whose
/// target tracks the source position (spatially coherent, like real
/// points), with a few duplicates mixed in.
fn synthetic_batch(
    n_points: usize,
    n_source: usize,
    n_target: usize,
    state: &mut u64,
) -> Vec<(usize, usize, f64)> {
    let mut batch = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        if !batch.is_empty() && lcg(state) < 0.05 {
            // At-least-once delivery re-sends an earlier record verbatim.
            let k = (lcg(state) * batch.len() as f64) as usize;
            batch.push(batch[k.min(batch.len() - 1)]);
            continue;
        }
        let si = (lcg(state) * n_source as f64) as usize % n_source;
        let jitter = (lcg(state) * 3.0) as usize;
        let ti = (si * n_target / n_source + jitter) % n_target;
        batch.push((si, ti, 0.5 + lcg(state) * 2.0));
    }
    batch
}

fn absorb_all(
    attr: &str,
    n_source: usize,
    n_target: usize,
    points: &[(usize, usize, f64)],
) -> AggState {
    let mut s = AggState::new(attr, n_source, n_target).expect("state");
    for &(si, ti, w) in points {
        s.absorb(si, ti, w).expect("absorb");
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20180326u64;
    let mut n_batches = 5usize;
    let mut batch_points = 20_000usize;
    let mut out_path = "BENCH_ingest.json".to_owned();
    // Paper United States unit counts (§4.1: 30,238 zips / 3,142 counties).
    let (mut n_source, mut n_target) = (30_238usize, 3_142usize);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--batches" => n_batches = it.next().expect("--batches value").parse().expect("int"),
            "--batch-points" => {
                batch_points = it
                    .next()
                    .expect("--batch-points value")
                    .parse()
                    .expect("int")
            }
            "--out" => out_path = it.next().expect("--out value").clone(),
            "--small" => {
                (n_source, n_target) = (400, 80);
                batch_points = 2_000;
                n_batches = 3;
            }
            "--medium" => (n_source, n_target) = (3_000, 320),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }

    let mut state = seed;
    let statics: Vec<ReferenceData> = (0..2)
        .map(|k| synthetic_reference(&format!("ref{k}"), n_source, n_target, &mut state))
        .collect();

    eprintln!(
        "# ingest — {n_source}x{n_target} units, 2 static references, \
         {n_batches} batches x {batch_points} points"
    );

    // Seed the streaming reference with a first batch so both paths start
    // from a live (already-prepared) pair, the steady-state a server is in.
    let first = synthetic_batch(batch_points, n_source, n_target, &mut state);
    let mut live = absorb_all("stream", n_source, n_target, &first);
    let mut all_points = first;
    let streaming_index = statics.len();

    let make_ref = |s: &AggState| {
        let dm = DisaggregationMatrix::from_state(s).expect("dm from state");
        ReferenceData::from_dm(s.attribute(), dm).expect("reference from state")
    };
    let full_prepare = |stream_ref: ReferenceData| {
        let mut refs: Vec<&ReferenceData> = statics.iter().collect();
        let r = stream_ref;
        refs.push(&r);
        GeoAlign::new().prepare(&refs).expect("prepare")
    };

    let mut prepared = full_prepare(make_ref(&live));

    let mut batches_json: Vec<String> = Vec::new();
    let (mut sum_inc, mut sum_full) = (0.0f64, 0.0f64);
    for b in 0..n_batches {
        let batch = synthetic_batch(batch_points, n_source, n_target, &mut state);

        // --- Incremental: fold the batch, delta-update one column -------
        let t0 = Instant::now();
        let part = absorb_all("stream", n_source, n_target, &batch);
        let mut next = live.clone();
        next.merge(&part).expect("merge");
        let (inc_prepared, touched) = prepared
            .with_reference_updated(streaming_index, make_ref(&next))
            .expect("incremental prepare");
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;

        // --- Full: re-aggregate everything, re-prepare from scratch -----
        all_points.extend_from_slice(&batch);
        let t1 = Instant::now();
        let whole = absorb_all("stream", n_source, n_target, &all_points);
        let full_prepared = full_prepare(make_ref(&whole));
        let full_ms = t1.elapsed().as_secs_f64() * 1e3;

        // The streamed fold must be indistinguishable from the re-run.
        assert_eq!(
            next.encode(),
            whole.encode(),
            "batch {b}: folded state diverged from re-aggregation"
        );
        let probe = AggregateVector::new(
            "probe",
            (0..n_source).map(|_| lcg(&mut state) * 100.0).collect(),
        )
        .expect("probe");
        let inc_est = inc_prepared.apply_values(&probe).expect("inc apply");
        let full_est = full_prepared.apply_values(&probe).expect("full apply");
        for (x, y) in inc_est.estimate.iter().zip(&full_est.estimate) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "batch {b}: incremental answers diverged from full re-prepare"
            );
        }

        live = next;
        prepared = inc_prepared;
        sum_inc += incremental_ms;
        sum_full += full_ms;
        eprintln!(
            "batch {b}: incremental {incremental_ms:>9.3} ms ({touched} rows touched), \
             full {full_ms:>9.3} ms, speedup {:>6.2}x",
            full_ms / incremental_ms.max(1e-9)
        );
        batches_json.push(format!(
            "    {{ \"batch\": {b}, \"incremental_ms\": {incremental_ms:.3}, \
             \"full_ms\": {full_ms:.3}, \"touched_rows\": {touched} }}"
        ));
    }

    let mean_inc = sum_inc / n_batches as f64;
    let mean_full = sum_full / n_batches as f64;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ingest\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(
        json,
        "  \"universe\": {{ \"n_source\": {n_source}, \"n_target\": {n_target}, \"static_references\": 2 }},"
    );
    let _ = writeln!(json, "  \"batch_points\": {batch_points},");
    let _ = writeln!(json, "  \"batches\": [");
    let _ = writeln!(json, "{}", batches_json.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"mean_incremental_ms\": {mean_inc:.3},");
    let _ = writeln!(json, "  \"mean_full_ms\": {mean_full:.3},");
    let _ = writeln!(
        json,
        "  \"mean_speedup\": {:.3}",
        mean_full / mean_inc.max(1e-9)
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_ingest.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
