//! Regenerates paper Figure 5: NRMSE of GeoAlign vs the dasymetric
//! baselines (Population, USPS Residential, USPS Business) and areal
//! weighting, under leave-one-dataset-out cross-validation.
//!
//! Usage: `fig5_nrmse [ny|us] [--small|--medium|--paper] [--seed N]
//!                    [--no-normalize]`

use geoalign::core::eval::cross_validate;
use geoalign::{
    ArealWeightingInterpolator, DasymetricInterpolator, GeoAlignConfig, GeoAlignInterpolator,
    Interpolator,
};
use geoalign_bench::{ny_eval_catalog, us_eval_catalog, ScalePreset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut universe = "ny".to_owned();
    let mut preset = ScalePreset::Medium;
    let mut seed = 20180326u64; // EDBT 2018 opening day
    let mut normalize = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "ny" | "us" => universe = a.clone(),
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed int")
            }
            "--no-normalize" => normalize = false,
            flag => {
                if let Some(p) = ScalePreset::from_flag(flag) {
                    preset = p;
                } else {
                    eprintln!("unknown argument: {flag}");
                    std::process::exit(2);
                }
            }
        }
    }

    eprintln!("generating {universe} catalog at {preset:?} scale (seed {seed})...");
    let catalog = match universe.as_str() {
        "ny" => ny_eval_catalog(preset, seed),
        _ => us_eval_catalog(preset, seed),
    }
    .expect("catalog generation");
    eprintln!(
        "universe: {} ({} source units, {} target units, {} datasets)",
        catalog.universe(),
        catalog.n_source(),
        catalog.n_target(),
        catalog.len()
    );

    let ga = GeoAlignInterpolator::with_config(GeoAlignConfig {
        normalize,
        ..GeoAlignConfig::default()
    });
    let das_pop = DasymetricInterpolator::new("Population");
    let das_res = DasymetricInterpolator::new("USPS Residential Address");
    let das_bus = DasymetricInterpolator::new("USPS Business Address");
    let aw = ArealWeightingInterpolator::new(catalog.measure_dm().clone());
    let methods: Vec<&dyn Interpolator> = vec![&ga, &das_pop, &das_res, &das_bus, &aw];

    let report = cross_validate(&catalog, &methods).expect("cross validation");
    println!(
        "# Figure 5 ({}) — NRMSE by dataset and method",
        report.universe
    );
    println!("{}", report.to_table());

    // The paper's headline claims, restated on this run's numbers.
    let ga_max = report.method_max_nrmse("GeoAlign").unwrap_or(f64::NAN);
    let aw_vals = report.method_nrmses("areal weighting");
    let ga_vals = report.method_nrmses("GeoAlign");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("GeoAlign max NRMSE: {ga_max:.4}");
    if !aw_vals.is_empty() {
        println!(
            "areal weighting mean NRMSE is {:.1}x GeoAlign's (paper: >15x NY, >50x US)",
            mean(&aw_vals) / mean(&ga_vals)
        );
    }
}
