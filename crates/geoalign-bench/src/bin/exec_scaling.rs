//! Executor scaling baseline: sequential vs 2/4/8-thread wall times for
//! the two hottest parallel paths — polygon overlay construction and
//! prepared-crosswalk batch apply — on a Fig. 6-scale synthetic universe.
//!
//! Writes machine-readable `BENCH_exec.json` (see `--out`) so future PRs
//! can compare against a recorded perf baseline. The file also records
//! `hardware_threads`: speedups are only meaningful when the host actually
//! has spare cores — on a single-core container every thread count
//! measures the same serialized work and the speedup columns read ~1.0.
//!
//! Usage: `exec_scaling [--small|--medium] [--seed N] [--trials N]
//!                      [--out BENCH_exec.json]`

use geoalign_core::{GeoAlign, ReferenceData};
use geoalign_exec::Executor;
use geoalign_geom::{Aabb, Point2, VoronoiDiagram};
use geoalign_partition::{AggregateVector, Overlay, PolygonUnitSystem};
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Times `f` over `trials` runs and returns the mean wall time in ms.
fn time_ms<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f(); // warm-up
    let t = Instant::now();
    for _ in 0..trials {
        let _ = f();
    }
    t.elapsed().as_secs_f64() * 1e3 / trials as f64
}

fn json_timing_block(label: &str, sequential_ms: f64, parallel_ms: &[(usize, f64)]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"sequential_ms\": {sequential_ms:.3}"
    );
    for &(threads, ms) in parallel_ms {
        let _ = write!(out, ",\n    \"threads_{threads}_ms\": {ms:.3}");
    }
    for &(threads, ms) in parallel_ms {
        let _ = write!(
            out,
            ",\n    \"speedup_{threads}x\": {:.3}",
            sequential_ms / ms.max(1e-9)
        );
    }
    out.push_str("\n  }");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20180326u64;
    let mut trials = 5usize;
    let mut out_path = "BENCH_exec.json".to_owned();
    // Fine/coarse jittered-grid sizes: ~Fig. 6's medium universe.
    let (mut fine, mut coarse) = (40usize, 8usize);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--trials" => trials = it.next().expect("--trials value").parse().expect("int"),
            "--out" => out_path = it.next().expect("--out value").clone(),
            "--small" => (fine, coarse) = (16, 4),
            "--medium" => (fine, coarse) = (40, 8),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }

    // Build the synthetic universe: a fine and a coarse Voronoi partition
    // of the unit square (jittered grids, like the Fig. 6 catalogs).
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
    let mut state = seed;
    let mut r = |_| lcg(&mut state);
    let f = VoronoiDiagram::jittered_grid(bounds, fine, fine, 0.45, &mut r).expect("fine voronoi");
    let c = VoronoiDiagram::jittered_grid(bounds, coarse, coarse, 0.45, &mut r)
        .expect("coarse voronoi");
    let source = PolygonUnitSystem::from_voronoi("fine", f).expect("source system");
    let target = PolygonUnitSystem::from_voronoi("coarse", c).expect("target system");

    eprintln!(
        "# exec_scaling — overlay {}x{} units, trials {trials}, hardware threads {}",
        source.len(),
        target.len(),
        geoalign_exec::global_threads()
    );

    // --- Overlay construction -------------------------------------------
    let seq_overlay =
        Overlay::polygons_with(&source, &target, Executor::sequential()).expect("overlay");
    let overlay_seq_ms = time_ms(trials, || {
        Overlay::polygons_with(&source, &target, Executor::sequential()).expect("overlay")
    });
    let mut overlay_par = Vec::new();
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        // The parallel overlay must be bit-identical to the sequential one.
        let par = Overlay::polygons_with(&source, &target, exec).expect("overlay");
        assert_eq!(par.len(), seq_overlay.len(), "overlay determinism violated");
        for (a, b) in seq_overlay.pieces().iter().zip(par.pieces()) {
            assert_eq!(a.measure.to_bits(), b.measure.to_bits());
        }
        let ms = time_ms(trials, || {
            Overlay::polygons_with(&source, &target, exec).expect("overlay")
        });
        overlay_par.push((threads, ms));
        eprintln!("overlay   @{threads} threads: {ms:>9.3} ms (seq {overlay_seq_ms:.3} ms)");
    }

    // --- Prepared batch apply -------------------------------------------
    // References: the overlay's measure matrix plus two pseudo-random
    // rescalings of it, prepared once; the timed operation is applying the
    // snapshot to a batch of objective vectors.
    let mut refs = Vec::new();
    for k in 0..3 {
        let dm = seq_overlay
            .measure_dm(format!("ref{k}"))
            .expect("measure dm");
        let scaled = if k == 0 {
            dm
        } else {
            let triples: Vec<(usize, usize, f64)> = dm
                .matrix()
                .iter()
                .map(|(i, j, v)| (i, j, v * (0.2 + lcg(&mut state))))
                .collect();
            geoalign_partition::DisaggregationMatrix::from_triples(
                format!("ref{k}"),
                source.len(),
                target.len(),
                triples,
            )
            .expect("scaled dm")
        };
        refs.push(ReferenceData::from_dm(format!("ref{k}"), scaled).expect("reference"));
    }
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let prepared = GeoAlign::new().prepare(&ref_slices).expect("prepare");
    let objectives: Vec<AggregateVector> = (0..32)
        .map(|i| {
            let values: Vec<f64> = (0..source.len()).map(|_| lcg(&mut state) * 100.0).collect();
            AggregateVector::new(format!("attr{i}"), values).expect("objective")
        })
        .collect();

    let seq_batch = prepared
        .apply_batch_with(&objectives, Executor::sequential())
        .expect("batch apply");
    let batch_seq_ms = time_ms(trials, || {
        prepared
            .apply_batch_with(&objectives, Executor::sequential())
            .expect("batch apply")
    });
    let mut batch_par = Vec::new();
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        let par = prepared
            .apply_batch_with(&objectives, exec)
            .expect("batch apply");
        for (a, b) in seq_batch.iter().zip(&par) {
            assert_eq!(
                a.estimate.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.estimate.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "batch apply determinism violated"
            );
        }
        let ms = time_ms(trials, || {
            prepared
                .apply_batch_with(&objectives, exec)
                .expect("batch apply")
        });
        batch_par.push((threads, ms));
        eprintln!("batch     @{threads} threads: {ms:>9.3} ms (seq {batch_seq_ms:.3} ms)");
    }

    // --- Speedup sanity gate --------------------------------------------
    // On a host with real parallelism the hottest path must show at least
    // a 2x speedup at some thread count; on a single-hardware-thread host
    // every configuration measures the same serialized work, so the gate
    // is skipped and the JSON says why.
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let best_speedup = overlay_par
        .iter()
        .map(|&(_, ms)| overlay_seq_ms / ms.max(1e-9))
        .chain(batch_par.iter().map(|&(_, ms)| batch_seq_ms / ms.max(1e-9)))
        .fold(0.0f64, f64::max);
    if hardware_threads > 1 {
        assert!(
            best_speedup >= 2.0,
            "expected a >=2x speedup on a {hardware_threads}-thread host (best {best_speedup:.2}x)"
        );
    } else {
        eprintln!("single-hardware-thread host; skipping the >=2x speedup gate");
    }

    // --- BENCH_exec.json ------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"exec_scaling\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    if hardware_threads == 1 {
        let _ = writeln!(
            json,
            "  \"speedup_note\": \"single-hardware-thread host; speedups not meaningful\","
        );
    }
    let _ = writeln!(
        json,
        "  \"universe\": {{ \"n_source\": {}, \"n_target\": {}, \"overlay_pieces\": {}, \"batch_size\": {} }},",
        source.len(),
        target.len(),
        seq_overlay.len(),
        objectives.len()
    );
    json.push_str(&json_timing_block("overlay", overlay_seq_ms, &overlay_par));
    json.push_str(",\n");
    json.push_str(&json_timing_block("batch_apply", batch_seq_ms, &batch_par));
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_exec.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
