//! Ablation study of GeoAlign's design choices (DESIGN.md §5):
//!
//! * **normalization** (§3.4's scale adjustment) on vs off;
//! * **Eq. 15 solver**: exact active set vs projected gradient;
//! * **simplex constraint**: GeoAlign vs the unconstrained-regression
//!   combiner of related work.
//!
//! Usage: `ablation [ny|us] [--small|--medium|--paper] [--seed N]`

use geoalign::core::eval::cross_validate;
use geoalign::linalg::simplex_ls::SimplexSolver;
use geoalign::{GeoAlignConfig, GeoAlignInterpolator, Interpolator, RegressionInterpolator};
use geoalign_bench::{ny_eval_catalog, us_eval_catalog, ScalePreset};

/// Wraps a GeoAlign variant with a distinguishing report name.
struct Named {
    name: &'static str,
    inner: GeoAlignInterpolator,
}

impl Interpolator for Named {
    fn name(&self) -> String {
        self.name.to_owned()
    }
    fn estimate(
        &self,
        objective_source: &geoalign::AggregateVector,
        refs: &[&geoalign::ReferenceData],
    ) -> Result<Vec<f64>, geoalign::CoreError> {
        self.inner.estimate(objective_source, refs)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut universe = "us".to_owned();
    let mut preset = ScalePreset::Medium;
    let mut seed = 20180326u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "ny" | "us" => universe = a.clone(),
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            flag => {
                if let Some(p) = ScalePreset::from_flag(flag) {
                    preset = p;
                } else {
                    eprintln!("unknown argument: {flag}");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!("generating {universe} catalog at {preset:?} scale (seed {seed})...");
    let catalog = match universe.as_str() {
        "ny" => ny_eval_catalog(preset, seed),
        _ => us_eval_catalog(preset, seed),
    }
    .expect("catalog");

    let default = Named {
        name: "GeoAlign (default)",
        inner: GeoAlignInterpolator::new(),
    };
    let no_norm = Named {
        name: "no normalization",
        inner: GeoAlignInterpolator::with_config(GeoAlignConfig {
            normalize: false,
            ..GeoAlignConfig::default()
        }),
    };
    let pg = Named {
        name: "projected gradient",
        inner: GeoAlignInterpolator::with_config(GeoAlignConfig {
            solver: SimplexSolver::ProjectedGradient,
            ..GeoAlignConfig::default()
        }),
    };
    let regression = RegressionInterpolator;
    let methods: Vec<&dyn Interpolator> = vec![&default, &no_norm, &pg, &regression];
    let report = cross_validate(&catalog, &methods).expect("cross validation");
    println!(
        "# Ablation — NRMSE by dataset and GeoAlign variant ({})",
        report.universe
    );
    println!("{}", report.to_table());

    let mean = |m: &str| {
        let v = report.method_nrmses(m);
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!("mean NRMSE — default: {:.4}", mean("GeoAlign (default)"));
    println!(
        "mean NRMSE — no normalization: {:.4}",
        mean("no normalization")
    );
    println!(
        "mean NRMSE — projected gradient: {:.4} (should match default)",
        mean("projected gradient")
    );
    println!(
        "mean NRMSE — unconstrained regression: {:.4}",
        mean("regression (unconstrained)")
    );
}
