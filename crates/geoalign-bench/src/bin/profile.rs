//! Profiler overhead benchmark: paper-scale `prepare` (30238 source x
//! 3142 target units, the Fig. 5 census universe) timed with and without
//! the `geoalign-obs` sampling profiler attached.
//!
//! Rounds are interleaved — each round times one baseline prepare and one
//! prepare under a freshly started profiler — and the minimum of each
//! side is compared, so cache/thermal drift hits both sides equally and
//! one clean round per side suffices. Writes `BENCH_profile.json` and
//! fails when the measured overhead exceeds the 5% budget the profiler
//! is designed to (DESIGN.md §13).
//!
//! Usage: `profile [--small] [--seed N] [--rounds N] [--hz HZ]
//!                 [--out BENCH_profile.json]`

use geoalign_core::{GeoAlign, ReferenceData};
use geoalign_obs::Profiler;
use geoalign_partition::DisaggregationMatrix;
use std::fmt::Write as _;
use std::time::Instant;

/// Overhead budget: the profiled prepare may be at most this much slower.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds one synthetic reference: each source unit splits over 1–3
/// pseudo-random target units with positive intersection aggregates.
fn synthetic_reference(
    name: &str,
    n_source: usize,
    n_target: usize,
    state: &mut u64,
) -> ReferenceData {
    let mut triples = Vec::with_capacity(n_source * 2);
    for i in 0..n_source {
        let fanout = 1 + (lcg(state) * 3.0) as usize; // 1..=3
        for k in 0..fanout {
            let j = ((lcg(state) * n_target as f64) as usize + k) % n_target;
            triples.push((i, j, 0.5 + lcg(state) * 99.5));
        }
    }
    // Collapse duplicate (i, j) cells the jittered draw may produce.
    triples.sort_by_key(|t| (t.0, t.1));
    triples.dedup_by(|a, b| {
        if a.0 == b.0 && a.1 == b.1 {
            b.2 += a.2;
            true
        } else {
            false
        }
    });
    let dm = DisaggregationMatrix::from_triples(name.to_owned(), n_source, n_target, triples)
        .expect("synthetic dm");
    ReferenceData::from_dm(name.to_owned(), dm).expect("reference")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20180326u64;
    let mut rounds = 7usize;
    let mut hz = 997u64;
    let mut out_path = "BENCH_profile.json".to_owned();
    // Paper scale: census blocks onto counties (Fig. 5's universe).
    let (mut n_source, mut n_target) = (30238usize, 3142usize);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--rounds" => rounds = it.next().expect("--rounds value").parse().expect("int"),
            "--hz" => hz = it.next().expect("--hz value").parse().expect("int"),
            "--out" => out_path = it.next().expect("--out value").clone(),
            "--small" => (n_source, n_target) = (2000, 200),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }

    let mut state = seed;
    let refs: Vec<ReferenceData> = (0..3)
        .map(|k| synthetic_reference(&format!("ref{k}"), n_source, n_target, &mut state))
        .collect();
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let nnz: usize = refs.iter().map(|r| r.dm().matrix().nnz()).sum();
    eprintln!(
        "# profile — prepare over {n_source}x{n_target} units, {} refs ({nnz} cells), \
         {rounds} rounds @ {hz} Hz",
        refs.len()
    );

    // Warm-up, and calibration: one prepare is only a few ms at this
    // scale, far too short to resolve a %-level overhead against
    // scheduler noise, so each measurement times a batch of prepares
    // sized to roughly 200 ms of work.
    let t = Instant::now();
    let _ = GeoAlign::new().prepare(&ref_slices).expect("prepare");
    let once_ms = (t.elapsed().as_secs_f64() * 1e3).max(1e-3);
    let iters = ((200.0 / once_ms).ceil() as usize).clamp(1, 500);
    eprintln!("# one prepare ~{once_ms:.3} ms -> {iters} prepares per measurement");

    let time_batch = |iters: usize| -> f64 {
        let t = Instant::now();
        for _ in 0..iters {
            let _ = GeoAlign::new().prepare(&ref_slices).expect("prepare");
        }
        t.elapsed().as_secs_f64() * 1e3 / iters as f64
    };

    let mut base_min = f64::INFINITY;
    let mut prof_min = f64::INFINITY;
    let mut sweeps = 0u64;
    let mut stack_samples = 0u64;
    let mut sampler_busy_micros = 0u128;
    let mut gram_profiled = false;
    for round in 0..rounds {
        let base_ms = time_batch(iters);
        base_min = base_min.min(base_ms);

        let profiler = Profiler::start(hz);
        let prof_ms = time_batch(iters);
        let report = profiler.stop();
        prof_min = prof_min.min(prof_ms);
        sweeps += report.sweeps;
        stack_samples += report.stack_samples;
        sampler_busy_micros += report.sampler_busy.as_micros();
        gram_profiled |= report.collapsed_text().contains("gram");
        eprintln!(
            "round {round}: baseline {base_ms:>8.3} ms/prepare, profiled {prof_ms:>8.3} ms/prepare"
        );
    }

    let overhead_pct = 100.0 * (prof_min - base_min) / base_min;
    eprintln!(
        "baseline min {base_min:.3} ms, profiled min {prof_min:.3} ms -> overhead {overhead_pct:.2}%"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"profile_overhead\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"hz\": {hz},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(
        json,
        "  \"universe\": {{ \"n_source\": {n_source}, \"n_target\": {n_target}, \"refs\": {}, \"nnz\": {nnz} }},",
        refs.len()
    );
    let _ = writeln!(json, "  \"baseline_ms_min\": {base_min:.3},");
    let _ = writeln!(json, "  \"profiled_ms_min\": {prof_min:.3},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(json, "  \"overhead_budget_pct\": {OVERHEAD_BUDGET_PCT},");
    let _ = writeln!(json, "  \"sweeps\": {sweeps},");
    let _ = writeln!(json, "  \"stack_samples\": {stack_samples},");
    let _ = writeln!(json, "  \"sampler_busy_micros\": {sampler_busy_micros},");
    let _ = writeln!(json, "  \"gram_span_profiled\": {gram_profiled}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_profile.json");
    eprintln!("wrote {out_path}");
    print!("{json}");

    assert!(
        overhead_pct <= OVERHEAD_BUDGET_PCT,
        "profiler overhead {overhead_pct:.2}% exceeds the {OVERHEAD_BUDGET_PCT}% budget"
    );
}
