//! Regenerates paper Figure 7: robustness of GeoAlign to noisy reference
//! attributes. Every reference's source aggregates are perturbed by ±x%
//! (random sign) at levels 1–50%, and the ratio
//! RMSE(perturbed) / RMSE(original) is reported as a five-number summary
//! over replicates, per US dataset.
//!
//! Usage: `fig7_noise [--small|--medium|--paper] [--seed N]
//!                    [--replicates N]`

use geoalign::core::eval::noise_experiment;
use geoalign::GeoAlignInterpolator;
use geoalign_bench::{us_eval_catalog, ScalePreset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = ScalePreset::Medium;
    let mut seed = 20180326u64;
    let mut replicates = 20usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--replicates" => {
                replicates = it.next().expect("--replicates value").parse().expect("int")
            }
            flag => {
                if let Some(p) = ScalePreset::from_flag(flag) {
                    preset = p;
                } else {
                    eprintln!("unknown argument: {flag}");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!("generating US catalog at {preset:?} scale (seed {seed})...");
    let catalog = us_eval_catalog(preset, seed).expect("catalog");
    eprintln!(
        "universe: {} ({} sources, {} targets)",
        catalog.universe(),
        catalog.n_source(),
        catalog.n_target()
    );

    let levels = [1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0];
    let ga = GeoAlignInterpolator::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut rand01 = move || rng.random::<f64>();
    let report = noise_experiment(&catalog, &ga, &levels, replicates, &mut rand01)
        .expect("noise experiment");

    println!(
        "# Figure 7 — RMSE(perturbed)/RMSE(orig), {replicates} replicates per level ({})",
        report.method
    );
    println!(
        "{:28} {:>6}  {:>7} {:>7} {:>7} {:>7} {:>7}",
        "dataset", "noise%", "min", "q1", "median", "q3", "max"
    );
    for cell in &report.cells {
        let s = cell.summary;
        println!(
            "{:28} {:>6.0}  {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            cell.dataset, cell.level_pct, s.min, s.q1, s.median, s.q3, s.max
        );
    }
    // Paper's headline: deviations stay near 1 even at 50% noise.
    let worst_median = report
        .cells
        .iter()
        .map(|c| c.summary.median)
        .fold(0.0f64, f64::max);
    println!("\nworst median ratio across all cells: {worst_median:.3} (paper: ~1, <1.1 mean even at 50%)");
}
