//! Regenerates paper Figure 6: GeoAlign runtime vs the number of source
//! and target units across the six nested universes (NY → Mid-Atlantic →
//! Northeast → Eastern TZ → Non-West → US), averaged over trials.
//!
//! Also reproduces the §4.3 per-phase observation that the disaggregation
//! step dominates runtime, and (with `--per-dataset`) the per-dataset
//! runtime table whose residual variance tracks the DM's non-zero count.
//!
//! Usage: `fig6_scalability [--small|--medium|--paper] [--seed N]
//!                          [--trials N] [--per-dataset]`

use geoalign::core::eval::Catalog;
use geoalign::{GeoAlign, Interpolator as _};
use geoalign_bench::ScalePreset;
use geoalign_datagen::{us_catalog, CatalogSize, HIERARCHY};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = ScalePreset::Medium;
    let mut seed = 20180326u64;
    let mut trials = 10usize;
    let mut per_dataset = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--trials" => trials = it.next().expect("--trials value").parse().expect("int"),
            "--per-dataset" => per_dataset = true,
            flag => {
                if let Some(p) = ScalePreset::from_flag(flag) {
                    preset = p;
                } else {
                    eprintln!("unknown argument: {flag}");
                    std::process::exit(2);
                }
            }
        }
    }
    // Fraction of the paper's unit counts per preset.
    let scale = match preset {
        ScalePreset::Small => 0.01,
        ScalePreset::Medium => 0.08,
        ScalePreset::Paper => 1.0,
    };

    println!(
        "# Figure 6 — GeoAlign runtime vs unit counts ({} trials, scale {:.2} of paper counts, seed {seed})",
        trials, scale
    );
    println!(
        "{:26}  {:>9}  {:>9}  {:>12}  {:>12}  {:>8}",
        "universe", "sources", "targets", "runtime (ms)", "disagg (ms)", "disagg %"
    );

    for (li, level) in HIERARCHY.iter().enumerate() {
        let size = CatalogSize {
            n_source: ((level.n_source as f64 * scale).round() as usize).max(8),
            n_target: ((level.n_target as f64 * scale).round() as usize).max(3),
            // Point budget scales with the universe like the paper's
            // subsetting of the national datasets.
            base_points:
                ((600_000.0 * scale * level.n_source as f64 / HIERARCHY[5].n_source as f64).round()
                    as usize)
                    .max(2_000),
        };
        let synth = us_catalog(size, seed + li as u64).expect("catalog");
        let catalog: Catalog = geoalign::to_eval_catalog(&synth).expect("eval catalog");
        // The timed operation is the GeoAlign run itself for a fixed test
        // dataset (Population held out), matching the paper's protocol of
        // timing the crosswalk, not the data preparation.
        let test_idx = catalog
            .datasets()
            .iter()
            .position(|d| d.name() == "Population")
            .expect("population dataset");
        let refs = catalog.references_excluding(test_idx);
        let objective = catalog.datasets()[test_idx].reference().source();

        let ga = GeoAlign::new();
        // Warm-up.
        let warm = ga.estimate(objective, &refs).expect("estimate");
        let mut total_ms = 0.0;
        let mut disagg_ms = 0.0;
        for _ in 0..trials {
            let t = Instant::now();
            let out = ga.estimate(objective, &refs).expect("estimate");
            total_ms += t.elapsed().as_secs_f64() * 1e3;
            disagg_ms += out.timings.disaggregation.as_secs_f64() * 1e3;
        }
        total_ms /= trials as f64;
        disagg_ms /= trials as f64;
        println!(
            "{:26}  {:>9}  {:>9}  {:>12.3}  {:>12.3}  {:>7.1}%",
            level.name,
            synth.universe.n_source(),
            synth.universe.n_target(),
            total_ms,
            disagg_ms,
            100.0 * disagg_ms / total_ms.max(1e-12)
        );
        drop(warm);

        if per_dataset && li == HIERARCHY.len() - 1 {
            println!(
                "\n# §4.3 — per-dataset runtime at the largest universe (nnz drives the variance)"
            );
            println!(
                "{:28}  {:>12}  {:>10}",
                "test dataset", "runtime (ms)", "DM nnz"
            );
            for (di, d) in catalog.datasets().iter().enumerate() {
                let refs = catalog.references_excluding(di);
                let obj = d.reference().source();
                let ga_i = geoalign::GeoAlignInterpolator::new();
                let t = Instant::now();
                for _ in 0..trials {
                    let _ = ga_i.estimate(obj, &refs).expect("estimate");
                }
                let ms = t.elapsed().as_secs_f64() * 1e3 / trials as f64;
                println!(
                    "{:28}  {:>12.3}  {:>10}",
                    d.name(),
                    ms,
                    d.reference().dm().nnz()
                );
            }
        }
    }
}
