//! Serve front-end baseline: per-request latency of `/crosswalk` batches
//! over one persistent keep-alive connection versus a fresh TCP
//! connection per request, against a real `geoalign-serve` instance on a
//! loopback socket — plus a `connections_held` sweep that parks N idle
//! keep-alive connections and measures what they cost a foreground
//! client (p99 latency) and the process (resident thread count).
//!
//! Writes machine-readable `BENCH_serve.json` (see `--out`) so future
//! PRs can compare the connection-lifecycle overhead against a recorded
//! baseline. The file also records `hardware_threads`: the server's
//! worker pool and the client share the host, so absolute numbers are
//! only comparable on similar hosts.
//!
//! Usage: `serve_keepalive [--seed N] [--requests N] [--trials N]
//!                         [--connections 100,1000,5000] [--pin-workers]
//!                         [--label NAME] [--out BENCH_serve.json]`

use geoalign_serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn post_bytes(path: &str, body: &str, close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Connection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads exactly one `Content-Length`-framed response from `reader` and
/// returns its status, leaving the connection usable for the next one.
fn read_response(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status = 0u16;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("response head") == 0 {
            panic!("EOF mid-response");
        }
        if status == 0 {
            status = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad status line: {line}"));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("Content-Length");
            }
        }
        if line == "\r\n" {
            break;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    status
}

/// One request on a dedicated connection (connect + close every time).
fn request_fresh(addr: SocketAddr, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&post_bytes(path, body, true))
        .expect("write");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Resident thread count of this process, from `/proc/self/status`.
/// Returns 0 where procfs is unavailable.
fn resident_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// One idle keep-alive connection: proven live by a single `/healthz`
/// round-trip, then parked (the socket stays open, nothing more is sent).
struct IdleConn {
    _stream: TcpStream,
}

fn open_idle_conn(addr: SocketAddr) -> IdleConn {
    let stream = TcpStream::connect(addr).expect("connect idle");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
        .expect("write idle");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    assert_eq!(read_response(&mut reader), 200);
    IdleConn { _stream: stream }
}

/// Registers the bench's crosswalk world on a server and returns the
/// `/crosswalk` request body whose latency the bench measures.
fn register_world(addr: SocketAddr, seed: u64, n_source: usize, n_target: usize) -> String {
    let mut state = seed;
    let units: Vec<String> = (0..n_source).map(|i| format!("\"z{i}\"")).collect();
    assert_eq!(
        request_fresh(
            addr,
            "/systems",
            &format!("{{\"name\":\"zip\",\"units\":[{}]}}", units.join(","))
        ),
        200
    );
    let targets: Vec<String> = (0..n_target).map(|j| format!("\"c{j}\"")).collect();
    assert_eq!(
        request_fresh(
            addr,
            "/systems",
            &format!("{{\"name\":\"county\",\"units\":[{}]}}", targets.join(","))
        ),
        200
    );
    let entries: Vec<String> = (0..n_source)
        .map(|i| {
            let j = i % n_target;
            format!("[\"z{i}\",\"c{j}\",{:.3}]", 10.0 + 90.0 * lcg(&mut state))
        })
        .collect();
    assert_eq!(
        request_fresh(
            addr,
            "/references",
            &format!(
                "{{\"source\":\"zip\",\"target\":\"county\",\"name\":\"population\",\"entries\":[{}]}}",
                entries.join(",")
            )
        ),
        200
    );
    let values: Vec<String> = (0..n_source)
        .map(|_| format!("{:.3}", 100.0 * lcg(&mut state)))
        .collect();
    format!(
        "{{\"source\":\"zip\",\"target\":\"county\",\"attributes\":[{{\"name\":\"load\",\"values\":[{}]}}]}}",
        values.join(",")
    )
}

/// One sweep point: park `connections` idle keep-alive connections, then
/// measure a foreground keep-alive client's per-request latency.
struct SweepPoint {
    connections: usize,
    p50_us: f64,
    p99_us: f64,
    threads: usize,
}

fn run_sweep_point(
    connections: usize,
    requests: usize,
    seed: u64,
    pin_workers: bool,
) -> SweepPoint {
    let mut config = ServerConfig {
        max_connections: connections + 64,
        ..ServerConfig::default()
    };
    if pin_workers {
        // Pre-reactor comparison mode: a thread-per-connection server can
        // only hold an idle keep-alive connection by pinning a worker, so
        // holding N connections requires N workers.
        config.workers = connections + 8;
    }
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    let body = register_world(addr, seed, 16, 4);
    assert_eq!(request_fresh(addr, "/crosswalk", &body), 200); // warm the cache

    let held: Vec<IdleConn> = (0..connections).map(|_| open_idle_conn(addr)).collect();
    let threads = resident_threads();

    // Foreground client: one keep-alive connection, per-request latency.
    let stream = TcpStream::connect(addr).expect("connect fg");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let raw = post_bytes("/crosswalk", &body, false);
    let mut lat_us: Vec<f64> = Vec::with_capacity(requests);
    for _ in 0..requests {
        let t = Instant::now();
        writer.write_all(&raw).expect("write fg");
        assert_eq!(read_response(&mut reader), 200);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() as f64 * p).ceil() as usize).min(lat_us.len()) - 1];
    let point = SweepPoint {
        connections,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        threads,
    };
    drop(held);
    server.shutdown();
    point
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20180326u64;
    let mut requests = 200usize;
    let mut trials = 3usize;
    let mut sweep: Vec<usize> = vec![100, 1000, 5000];
    let mut pin_workers = false;
    let mut label = "reactor".to_owned();
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--requests" => requests = it.next().expect("--requests value").parse().expect("int"),
            "--trials" => trials = it.next().expect("--trials value").parse().expect("int"),
            "--connections" => {
                sweep = it
                    .next()
                    .expect("--connections value")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("int"))
                    .collect();
            }
            "--pin-workers" => pin_workers = true,
            "--label" => label = it.next().expect("--label value").clone(),
            "--out" => out_path = it.next().expect("--out value").clone(),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();

    // A small crosswalk world: 16 zips onto 4 counties, one reference.
    // The measured request: one attribute vector, snapshot served from
    // the prepared-crosswalk cache after the first hit, so the timing is
    // dominated by the connection lifecycle rather than the solver.
    let n_source = 16usize;
    let n_target = 4usize;
    let body = register_world(addr, seed, n_source, n_target);
    assert_eq!(request_fresh(addr, "/crosswalk", &body), 200); // warm the cache

    eprintln!(
        "# serve_keepalive — {requests} requests x {trials} trials, hardware threads {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // --- keep-alive: all requests on one persistent connection ----------
    let keepalive_us = {
        let t = Instant::now();
        for _ in 0..trials {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let raw = post_bytes("/crosswalk", &body, false);
            for _ in 0..requests {
                writer.write_all(&raw).expect("write");
                assert_eq!(read_response(&mut reader), 200);
            }
        }
        t.elapsed().as_secs_f64() * 1e6 / (trials * requests) as f64
    };
    eprintln!("keep-alive connection: {keepalive_us:>9.1} us/request");

    // --- per-request connections: connect + close every time -------------
    let fresh_us = {
        let t = Instant::now();
        for _ in 0..trials {
            for _ in 0..requests {
                assert_eq!(request_fresh(addr, "/crosswalk", &body), 200);
            }
        }
        t.elapsed().as_secs_f64() * 1e6 / (trials * requests) as f64
    };
    eprintln!("fresh connections:     {fresh_us:>9.1} us/request");

    let reused = server.state().metrics.keepalive_reuse.get();
    server.shutdown();

    // --- connections_held sweep: cost of parked idle keep-alive conns ----
    let mut points: Vec<SweepPoint> = Vec::with_capacity(sweep.len());
    for &connections in &sweep {
        let point = run_sweep_point(connections, requests, seed, pin_workers);
        eprintln!(
            "held {:>5} idle conns: fg p50 {:>8.1} us, p99 {:>8.1} us, {} resident threads",
            point.connections, point.p50_us, point.p99_us, point.threads
        );
        points.push(point);
    }

    // --- BENCH_serve.json ------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_keepalive\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(
        json,
        "  \"universe\": {{ \"n_source\": {n_source}, \"n_target\": {n_target}, \"body_bytes\": {} }},",
        body.len()
    );
    let _ = writeln!(json, "  \"keepalive_reuse_total\": {reused},");
    let _ = writeln!(json, "  \"crosswalk\": {{");
    let _ = writeln!(json, "    \"keepalive_us_per_request\": {keepalive_us:.1},");
    let _ = writeln!(json, "    \"fresh_conn_us_per_request\": {fresh_us:.1},");
    let _ = writeln!(
        json,
        "    \"fresh_over_keepalive\": {:.3}",
        fresh_us / keepalive_us.max(1e-9)
    );
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"connections_held\": {{");
    let _ = writeln!(json, "    \"label\": \"{label}\",");
    let _ = writeln!(json, "    \"pin_workers\": {pin_workers},");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"connections\": {}, \"foreground_p50_us\": {:.1}, \
             \"foreground_p99_us\": {:.1}, \"resident_threads\": {} }}{comma}",
            p.connections, p.p50_us, p.p99_us, p.threads
        );
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
