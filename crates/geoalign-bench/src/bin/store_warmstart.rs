//! Warm-start baseline for the durable store: what does reviving a
//! prepared crosswalk from disk cost compared to re-running prepare, and
//! how long does recovery (WAL replay / snapshot load) take at boot? The
//! `warm_speedup` column is honest — at small scales decoding can cost
//! more than re-preparing; the durable tier's value there is surviving
//! restarts with byte-identical answers, not raw speed.
//!
//! Three timed paths:
//!
//! * `cold_prepare` — `GeoAlign::prepare` from the raw references (the
//!   work a restart without `--data-dir` repeats);
//! * `warm_revive` — read + decode the persisted snapshot through
//!   [`DurableBacking::lookup_prepared`], apply-equivalent bit for bit;
//! * `recovery` — `Store` open time with the entries in the WAL
//!   (`wal_replay_ms`) vs compacted into a snapshot (`snapshot_load_ms`).
//!
//! Writes machine-readable `BENCH_store.json` (see `--out`) so future PRs
//! can compare against a recorded baseline.
//!
//! Usage: `store_warmstart [--small|--medium] [--seed N] [--trials N]
//!                         [--out BENCH_store.json]`

use geoalign_core::{CrosswalkKey, DurableBacking, GeoAlign, ReferenceData};
use geoalign_partition::{AggregateVector, DisaggregationMatrix};
use geoalign_store::{Store, StoreOptions};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Times `f` over `trials` runs and returns the mean wall time in ms.
fn time_ms<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f(); // warm-up
    let t = Instant::now();
    for _ in 0..trials {
        let _ = f();
    }
    t.elapsed().as_secs_f64() * 1e3 / trials as f64
}

/// A synthetic reference: every source unit spills into 1–3 of the
/// target units around its own scaled position, weights pseudo-random.
fn synthetic_reference(
    name: &str,
    n_source: usize,
    n_target: usize,
    state: &mut u64,
) -> ReferenceData {
    let mut triples = Vec::with_capacity(n_source * 2);
    for i in 0..n_source {
        let spread = 1 + (lcg(state) * 3.0) as usize;
        let base = i * n_target / n_source;
        for k in 0..spread {
            let j = (base + k) % n_target;
            triples.push((i, j, 1.0 + lcg(state) * 99.0));
        }
    }
    let dm = DisaggregationMatrix::from_triples(name, n_source, n_target, triples)
        .expect("synthetic dm");
    ReferenceData::from_dm(name, dm).expect("synthetic reference")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20180326u64;
    let mut trials = 5usize;
    let mut out_path = "BENCH_store.json".to_owned();
    let (mut n_source, mut n_target) = (1600usize, 320usize);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().expect("--seed value").parse().expect("int"),
            "--trials" => trials = it.next().expect("--trials value").parse().expect("int"),
            "--out" => out_path = it.next().expect("--out value").clone(),
            "--small" => (n_source, n_target) = (400, 80),
            "--medium" => (n_source, n_target) = (1600, 320),
            flag => {
                eprintln!("unknown argument: {flag}");
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("geoalign-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || StoreOptions {
        segment_max_bytes: 64 << 20,
        fsync: false,
    };

    let mut state = seed;
    let refs: Vec<ReferenceData> = (0..3)
        .map(|k| synthetic_reference(&format!("ref{k}"), n_source, n_target, &mut state))
        .collect();
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let key = CrosswalkKey::new("fine", "coarse", &ref_slices);

    eprintln!("# store_warmstart — {n_source}x{n_target} units, 3 references, trials {trials}");

    // --- Cold prepare: the work a warm start avoids ---------------------
    let prepared = Arc::new(GeoAlign::new().prepare(&ref_slices).expect("prepare"));
    let cold_prepare_ms = time_ms(trials, || {
        GeoAlign::new().prepare(&ref_slices).expect("prepare")
    });
    eprintln!("cold prepare:   {cold_prepare_ms:>9.3} ms");

    // --- Persist, then revive from disk ---------------------------------
    let backing = DurableBacking::open_with(&dir, opts()).expect("open backing");
    backing.persist_prepared(&key, &prepared);
    backing.flush();
    let encoded_bytes = backing
        .store()
        .get(&geoalign_core::persist::prepared_key(&key))
        .map_or(0, |v| v.len());
    let revived = backing.lookup_prepared(&key).expect("warm lookup");
    let warm_revive_ms = time_ms(trials, || {
        backing.lookup_prepared(&key).expect("warm lookup")
    });
    eprintln!("warm revive:    {warm_revive_ms:>9.3} ms ({encoded_bytes} bytes)");

    // The revived snapshot must answer byte-identically.
    let objective = AggregateVector::new(
        "bench",
        (0..n_source).map(|_| lcg(&mut state) * 100.0).collect(),
    )
    .expect("objective");
    let cold = prepared.apply_values(&objective).expect("cold apply");
    let warm = revived.apply_values(&objective).expect("warm apply");
    for (a, b) in cold.estimate.iter().zip(&warm.estimate) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm apply must be bit-identical");
    }
    drop(backing);

    // --- Recovery: WAL replay vs snapshot load --------------------------
    let wal_replay_ms = time_ms(trials, || Store::open_with(&dir, opts()).expect("open"));
    {
        let store = Store::open_with(&dir, opts()).expect("open");
        store.checkpoint().expect("checkpoint");
    }
    let snapshot_load_ms = time_ms(trials, || Store::open_with(&dir, opts()).expect("open"));
    eprintln!("wal replay:     {wal_replay_ms:>9.3} ms");
    eprintln!("snapshot load:  {snapshot_load_ms:>9.3} ms");

    let _ = std::fs::remove_dir_all(&dir);

    // --- BENCH_store.json ------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"store_warmstart\",");
    json.push_str(&geoalign_bench::metadata_json_lines());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(
        json,
        "  \"universe\": {{ \"n_source\": {n_source}, \"n_target\": {n_target}, \"references\": 3 }},"
    );
    let _ = writeln!(json, "  \"encoded_bytes\": {encoded_bytes},");
    let _ = writeln!(json, "  \"cold_prepare_ms\": {cold_prepare_ms:.3},");
    let _ = writeln!(json, "  \"warm_revive_ms\": {warm_revive_ms:.3},");
    let _ = writeln!(
        json,
        "  \"warm_speedup\": {:.3},",
        cold_prepare_ms / warm_revive_ms.max(1e-9)
    );
    let _ = writeln!(json, "  \"wal_replay_ms\": {wal_replay_ms:.3},");
    let _ = writeln!(json, "  \"snapshot_load_ms\": {snapshot_load_ms:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
