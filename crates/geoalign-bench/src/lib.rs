//! Shared plumbing for the GeoAlign benchmark harness: catalog
//! construction helpers and text rendering used by the per-figure
//! binaries.

#![warn(missing_docs)]

use geoalign::core::eval::Catalog;
use geoalign::CoreError;
use geoalign_datagen::{CatalogSize, SyntheticCatalog};

/// Scale presets shared by the figure binaries: `--small` (CI-friendly),
/// `--medium` (minutes) and `--paper` (full unit counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// Tiny catalogs for smoke runs.
    Small,
    /// Default: large enough for stable figure shapes, minutes of runtime.
    Medium,
    /// The paper's unit counts (30k zips / 3.1k counties for the US).
    Paper,
}

impl ScalePreset {
    /// Parses `--small` / `--medium` / `--paper` style flags; unknown
    /// flags return `None`.
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag.trim_start_matches('-') {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" | "full" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The catalog size for the NY universe at this preset.
    pub fn ny_size(self) -> CatalogSize {
        match self {
            Self::Small => CatalogSize::small(),
            Self::Medium => CatalogSize::paper_ny().scaled(0.25),
            Self::Paper => CatalogSize::paper_ny(),
        }
    }

    /// The catalog size for the US universe at this preset.
    pub fn us_size(self) -> CatalogSize {
        match self {
            Self::Small => CatalogSize::small(),
            Self::Medium => CatalogSize::paper_us().scaled(0.04),
            Self::Paper => CatalogSize::paper_us(),
        }
    }
}

/// Provenance metadata every `BENCH_*.json` writer embeds right after its
/// `"bench"` field: the git revision the numbers were measured at and an
/// ISO-8601 UTC timestamp. Returns ready-to-splice JSON lines (each ends
/// with `,\n`), so callers `push_str` it into their hand-rolled writer.
pub fn metadata_json_lines() -> String {
    format!(
        "  \"git_rev\": \"{}\",\n  \"timestamp\": \"{}\",\n",
        git_rev(),
        iso8601_utc_now()
    )
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (benchmarks keep working from an exported tarball).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// `YYYY-MM-DDThh:mm:ssZ` for the current wall clock, from the UNIX epoch
/// via the proleptic-Gregorian civil-from-days conversion (std only).
fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    let tod = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

/// Days-since-epoch → (year, month, day) in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Generates the NY evaluation catalog at a preset.
pub fn ny_eval_catalog(preset: ScalePreset, seed: u64) -> Result<Catalog, CoreError> {
    let synth =
        geoalign_datagen::ny_catalog(preset.ny_size(), seed).map_err(CoreError::Partition)?;
    geoalign::to_eval_catalog(&synth)
}

/// Generates the US evaluation catalog at a preset.
pub fn us_eval_catalog(preset: ScalePreset, seed: u64) -> Result<Catalog, CoreError> {
    let synth =
        geoalign_datagen::us_catalog(preset.us_size(), seed).map_err(CoreError::Partition)?;
    geoalign::to_eval_catalog(&synth)
}

/// Generates both the raw synthetic catalog and its eval version (some
/// binaries need the universe geometry too).
pub fn us_catalog_pair(
    preset: ScalePreset,
    seed: u64,
) -> Result<(SyntheticCatalog, Catalog), CoreError> {
    let synth =
        geoalign_datagen::us_catalog(preset.us_size(), seed).map_err(CoreError::Partition)?;
    let eval = geoalign::to_eval_catalog(&synth)?;
    Ok((synth, eval))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_675), (2026, 8, 10));
    }

    #[test]
    fn metadata_lines_are_splicable_json() {
        let lines = metadata_json_lines();
        assert!(lines.starts_with("  \"git_rev\": \""));
        assert!(lines.contains("\"timestamp\": \""));
        assert!(lines.ends_with(",\n"));
        // The timestamp parses shape-wise: YYYY-MM-DDThh:mm:ssZ.
        let ts = lines
            .split("\"timestamp\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap();
        assert_eq!(ts.len(), 20, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert_eq!(&ts[19..], "Z");
    }

    #[test]
    fn preset_parsing() {
        assert_eq!(ScalePreset::from_flag("--small"), Some(ScalePreset::Small));
        assert_eq!(ScalePreset::from_flag("paper"), Some(ScalePreset::Paper));
        assert_eq!(ScalePreset::from_flag("full"), Some(ScalePreset::Paper));
        assert_eq!(ScalePreset::from_flag("--bogus"), None);
    }

    #[test]
    fn small_catalogs_build() {
        let ny = ny_eval_catalog(ScalePreset::Small, 1).unwrap();
        assert_eq!(ny.len(), 8);
        let us = us_eval_catalog(ScalePreset::Small, 1).unwrap();
        assert_eq!(us.len(), 10);
    }
}
