//! Shared plumbing for the GeoAlign benchmark harness: catalog
//! construction helpers and text rendering used by the per-figure
//! binaries.

#![warn(missing_docs)]

use geoalign::core::eval::Catalog;
use geoalign::CoreError;
use geoalign_datagen::{CatalogSize, SyntheticCatalog};

/// Scale presets shared by the figure binaries: `--small` (CI-friendly),
/// `--medium` (minutes) and `--paper` (full unit counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// Tiny catalogs for smoke runs.
    Small,
    /// Default: large enough for stable figure shapes, minutes of runtime.
    Medium,
    /// The paper's unit counts (30k zips / 3.1k counties for the US).
    Paper,
}

impl ScalePreset {
    /// Parses `--small` / `--medium` / `--paper` style flags; unknown
    /// flags return `None`.
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag.trim_start_matches('-') {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" | "full" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The catalog size for the NY universe at this preset.
    pub fn ny_size(self) -> CatalogSize {
        match self {
            Self::Small => CatalogSize::small(),
            Self::Medium => CatalogSize::paper_ny().scaled(0.25),
            Self::Paper => CatalogSize::paper_ny(),
        }
    }

    /// The catalog size for the US universe at this preset.
    pub fn us_size(self) -> CatalogSize {
        match self {
            Self::Small => CatalogSize::small(),
            Self::Medium => CatalogSize::paper_us().scaled(0.04),
            Self::Paper => CatalogSize::paper_us(),
        }
    }
}

/// Generates the NY evaluation catalog at a preset.
pub fn ny_eval_catalog(preset: ScalePreset, seed: u64) -> Result<Catalog, CoreError> {
    let synth =
        geoalign_datagen::ny_catalog(preset.ny_size(), seed).map_err(CoreError::Partition)?;
    geoalign::to_eval_catalog(&synth)
}

/// Generates the US evaluation catalog at a preset.
pub fn us_eval_catalog(preset: ScalePreset, seed: u64) -> Result<Catalog, CoreError> {
    let synth =
        geoalign_datagen::us_catalog(preset.us_size(), seed).map_err(CoreError::Partition)?;
    geoalign::to_eval_catalog(&synth)
}

/// Generates both the raw synthetic catalog and its eval version (some
/// binaries need the universe geometry too).
pub fn us_catalog_pair(
    preset: ScalePreset,
    seed: u64,
) -> Result<(SyntheticCatalog, Catalog), CoreError> {
    let synth =
        geoalign_datagen::us_catalog(preset.us_size(), seed).map_err(CoreError::Partition)?;
    let eval = geoalign::to_eval_catalog(&synth)?;
    Ok((synth, eval))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parsing() {
        assert_eq!(ScalePreset::from_flag("--small"), Some(ScalePreset::Small));
        assert_eq!(ScalePreset::from_flag("paper"), Some(ScalePreset::Paper));
        assert_eq!(ScalePreset::from_flag("full"), Some(ScalePreset::Paper));
        assert_eq!(ScalePreset::from_flag("--bogus"), None);
    }

    #[test]
    fn small_catalogs_build() {
        let ny = ny_eval_catalog(ScalePreset::Small, 1).unwrap();
        assert_eq!(ny.len(), 8);
        let us = us_eval_catalog(ScalePreset::Small, 1).unwrap();
        assert_eq!(us.len(), 10);
    }
}
