//! Property-based tests of the AggState merge algebra: the laws the
//! streaming pipeline leans on. Merge must be commutative and associative,
//! any split of the input (empty and single-point batches included) must
//! fold to bit-identical state, and a state that round-trips through the
//! codec must merge exactly like the in-memory original.

use geoalign_agg::AggState;
use proptest::prelude::*;

const N_SOURCE: usize = 6;
const N_TARGET: usize = 4;

/// One absorbed record: cell coordinates plus a weight stretched across
/// magnitudes (huge, tiny and subnormal scales stress the exact sums).
type Point = (usize, usize, f64);

fn scale_weight((si, ti, w, scale): (usize, usize, f64, u8)) -> Point {
    let w = match scale % 5 {
        0 => w,
        1 => w * 1e300,
        2 => w * 1e-300,
        3 => w * 5e-324, // subnormal territory
        _ => w.trunc(),  // integer weights
    };
    (si, ti, w)
}

fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0..N_SOURCE, 0..N_TARGET, -1000.0..1000.0f64, 0..5u8).prop_map(scale_weight),
        0..40,
    )
}

/// Absorbs `points` into a fresh state, skipping every 7th record to keep
/// the skip counter in play.
fn state_of(points: &[Point]) -> AggState {
    let mut s = AggState::new("prop", N_SOURCE, N_TARGET).expect("valid shape");
    for (k, &(si, ti, w)) in points.iter().enumerate() {
        if k % 7 == 6 {
            s.record_skipped();
        } else {
            s.absorb(si, ti, w).expect("in-bounds finite record");
        }
    }
    s
}

/// Splits `points` into batches by the (possibly over-long, possibly
/// zero-sized) `sizes`; whatever remains becomes a final batch.
fn split<'a>(points: &'a [Point], sizes: &[usize]) -> Vec<&'a [Point]> {
    let mut batches = Vec::new();
    let mut rest = points;
    for &n in sizes {
        let n = n.min(rest.len());
        let (head, tail) = rest.split_at(n);
        batches.push(head);
        rest = tail;
    }
    batches.push(rest);
    batches
}

proptest! {
    #[test]
    fn merge_is_commutative(a in points_strategy(), b in points_strategy()) {
        let (sa, sb) = (state_of(&a), state_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb).expect("same shape");
        let mut ba = sb.clone();
        ba.merge(&sa).expect("same shape");
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.encode(), ba.encode());
    }

    #[test]
    fn merge_is_associative(
        a in points_strategy(),
        b in points_strategy(),
        c in points_strategy()
    ) {
        let (sa, sb, sc) = (state_of(&a), state_of(&b), state_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = sa.clone();
        left.merge(&sb).expect("same shape");
        left.merge(&sc).expect("same shape");
        // a ⊔ (b ⊔ c)
        let mut bc = sb.clone();
        bc.merge(&sc).expect("same shape");
        let mut right = sa.clone();
        right.merge(&bc).expect("same shape");
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.encode(), right.encode());
    }

    #[test]
    fn merge_is_split_invariant(
        points in points_strategy(),
        sizes in prop::collection::vec(0..7usize, 0..12)
    ) {
        // Batches of size zero and one occur naturally in `sizes`.
        let whole = state_of(&points);
        let mut folded = AggState::new("prop", N_SOURCE, N_TARGET).expect("valid shape");
        let mut offset = 0;
        for batch in split(&points, &sizes) {
            // Rebuild each batch with the *global* record index driving
            // the skip pattern, so the multiset of absorbed records
            // matches the one-shot state exactly.
            let mut part = AggState::new("prop", N_SOURCE, N_TARGET).expect("valid shape");
            for (k, &(si, ti, w)) in batch.iter().enumerate() {
                if (offset + k) % 7 == 6 {
                    part.record_skipped();
                } else {
                    part.absorb(si, ti, w).expect("in-bounds finite record");
                }
            }
            offset += batch.len();
            folded.merge(&part).expect("same shape");
        }
        prop_assert_eq!(&folded, &whole);
        prop_assert_eq!(folded.encode(), whole.encode());
        // The accessor agrees bitwise too.
        let (ff, wf) = (folded.finalize(), whole.finalize());
        prop_assert_eq!(ff, wf);
    }

    #[test]
    fn decoded_states_merge_like_in_memory(
        a in points_strategy(),
        b in points_strategy()
    ) {
        let (sa, sb) = (state_of(&a), state_of(&b));
        let mut in_memory = sa.clone();
        in_memory.merge(&sb).expect("same shape");
        // encode → decode → merge must land on the same bytes.
        let da = AggState::decode(&sa.encode()).expect("own encoding decodes");
        let db = AggState::decode(&sb.encode()).expect("own encoding decodes");
        let mut via_codec = da;
        via_codec.merge(&db).expect("same shape");
        prop_assert_eq!(&via_codec, &in_memory);
        prop_assert_eq!(via_codec.encode(), in_memory.encode());
    }

    #[test]
    fn finalize_marginals_are_cell_consistent(points in points_strategy()) {
        let f = state_of(&points).finalize();
        // Marginals are exact row/column sums of the triples: re-summing
        // the rounded triples per row agrees within one rounding step.
        for (si, total) in f.source.iter().enumerate() {
            let naive: f64 = f.triples.iter()
                .filter(|(i, _, _)| *i == si)
                .map(|&(_, _, w)| w)
                .sum();
            let tol = 1e-9 * (naive.abs() + total.abs()).max(1.0);
            prop_assert!((naive - total).abs() <= tol, "row {si}: {naive} vs {total}");
        }
    }
}
