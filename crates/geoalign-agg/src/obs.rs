//! Metric handles for the aggregate layer, registered once in the
//! process-global [`Registry`](geoalign_obs::Registry). Names follow the
//! workspace convention `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8).

use geoalign_obs::{Counter, Registry};
use std::sync::OnceLock;

/// Cached global handle for `geoalign_agg_merge_total`.
pub(crate) fn merge_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        Registry::global().counter(
            "geoalign_agg_merge_total",
            "Aggregate-state merges performed (chunk folds and batch ingests)",
        )
    })
}
