//! Error type for the aggregate-state layer.

use std::fmt;

/// Errors raised when building, merging or decoding aggregate states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// The attribute name was empty.
    EmptyAttribute,
    /// A unit-system dimension was zero.
    ZeroDimension {
        /// Which axis was empty (`"source"` or `"target"`).
        axis: &'static str,
    },
    /// A unit-system dimension exceeds the `u32` cell-key space.
    DimensionTooLarge {
        /// Which axis overflowed.
        axis: &'static str,
        /// The requested number of units.
        len: usize,
    },
    /// A point referenced a unit index outside its system.
    UnitOutOfBounds {
        /// Which axis the index belongs to.
        axis: &'static str,
        /// The offending index.
        index: usize,
        /// Number of units on that axis.
        len: usize,
    },
    /// A point carried a NaN or infinite weight.
    NonFiniteWeight,
    /// Two states disagree on attribute or shape and cannot merge.
    StateMismatch {
        /// What differs between the states.
        detail: String,
    },
    /// A serialized state was truncated, malformed or non-canonical.
    Codec {
        /// What the decoder was reading when it failed.
        detail: String,
    },
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::EmptyAttribute => write!(f, "aggregate attribute name is empty"),
            AggError::ZeroDimension { axis } => {
                write!(f, "{axis} unit system has no units")
            }
            AggError::DimensionTooLarge { axis, len } => {
                write!(f, "{axis} unit count {len} exceeds the cell key space")
            }
            AggError::UnitOutOfBounds { axis, index, len } => {
                write!(f, "{axis} unit {index} out of bounds for {len} units")
            }
            AggError::NonFiniteWeight => write!(f, "point weight is NaN or infinite"),
            AggError::StateMismatch { detail } => {
                write!(f, "aggregate states cannot merge: {detail}")
            }
            AggError::Codec { detail } => write!(f, "malformed aggregate state: {detail}"),
        }
    }
}

impl std::error::Error for AggError {}

impl From<geoalign_store::codec::CodecError> for AggError {
    fn from(e: geoalign_store::codec::CodecError) -> Self {
        AggError::Codec { detail: e.detail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = AggError::UnitOutOfBounds {
            axis: "source",
            index: 7,
            len: 3,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e: AggError = geoalign_store::codec::CodecError::new("bad").into();
        assert!(e.to_string().contains("bad"));
    }
}
