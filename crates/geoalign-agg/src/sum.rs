//! Exact, order-independent summation of `f64` values.
//!
//! A mergeable aggregate state is only split-invariant if its partial sums
//! are: folding points in a different chunking must yield bit-identical
//! state. Floating-point addition is not associative, so the accumulator
//! here is a fixed-point *superaccumulator*: every finite `f64` is an
//! integer multiple of 2⁻¹⁰⁷⁴ (the subnormal quantum), so sums are kept as
//! exact arbitrary-precision integers in that unit and rounded to `f64`
//! once, at finalize. Integer addition is commutative and associative, and
//! the representation below is canonical (a pure function of the summed
//! value), so any grouping of the same inputs produces byte-identical
//! state — the merge law the aggregate layer is built on.

use geoalign_store::codec::{ByteReader, ByteWriter, CodecError};
use std::cmp::Ordering;

/// Decoder cap on limb vectors: the largest reachable magnitude
/// (2⁶⁴ summands of `f64::MAX`) spans < 2200 bits ≈ 35 limbs, so any
/// payload claiming more is corrupt, not large.
const MAX_LIMBS: usize = 64;

/// A non-negative integer in units of 2⁻¹⁰⁷⁴, stored as little-endian
/// 64-bit limbs with `offset` leading zero limbs elided:
/// `value = Σ limbs[i] · 2^(64·(offset+i))`.
///
/// Canonical invariant (restored after every mutation): `limbs` has no
/// zero first or last element, and zero is `{ offset: 0, limbs: [] }`.
/// Canonical form is unique per value, which is what makes equal sums
/// byte-identical however they were grouped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Magnitude {
    offset: u32,
    limbs: Vec<u64>,
}

impl Magnitude {
    /// The zero magnitude.
    pub(crate) fn zero() -> Self {
        Magnitude::default()
    }

    /// Canonicalizes a raw limb vector: trims high zero limbs and folds
    /// low zero limbs into the offset.
    fn from_raw(mut offset: u32, mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        let low_zeros = limbs.iter().take_while(|&&l| l == 0).count();
        if low_zeros == limbs.len() {
            return Magnitude::zero();
        }
        limbs.drain(..low_zeros);
        offset += low_zeros as u32;
        Magnitude { offset, limbs }
    }

    /// The magnitude of a finite `f64`: its 53-bit significand shifted to
    /// the absolute bit position of its exponent (subnormals land at
    /// bit 0 and are therefore represented exactly).
    pub(crate) fn from_f64_abs(x: f64) -> Self {
        debug_assert!(x.is_finite());
        let bits = x.abs().to_bits();
        let frac = bits & ((1u64 << 52) - 1);
        let biased = (bits >> 52) & 0x7ff;
        // value = m · 2^(shift − 1074); shift = biased − 1 for normals
        // (m has the implicit leading bit), 0 for subnormals.
        let (m, shift) = if biased == 0 {
            (frac, 0u64)
        } else {
            ((1u64 << 52) | frac, biased - 1)
        };
        if m == 0 {
            return Magnitude::zero();
        }
        let wide = (m as u128) << (shift % 64);
        Magnitude::from_raw((shift / 64) as u32, vec![wide as u64, (wide >> 64) as u64])
    }

    /// Whether this is the zero magnitude.
    pub(crate) fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// One past the highest occupied limb index (absolute).
    fn end(&self) -> u32 {
        self.offset + self.limbs.len() as u32
    }

    /// The limb at absolute index `abs` (zero outside the stored span).
    fn limb_at(&self, abs: u64) -> u64 {
        if abs < self.offset as u64 || abs >= self.end() as u64 {
            0
        } else {
            self.limbs[(abs - self.offset as u64) as usize]
        }
    }

    /// Exact in-place addition (limbwise with carry).
    pub(crate) fn add_assign(&mut self, other: &Magnitude) {
        if other.is_zero() {
            return;
        }
        if self.is_zero() {
            *self = other.clone();
            return;
        }
        let off = self.offset.min(other.offset);
        let span = (self.end().max(other.end()) - off) as usize;
        let mut out = vec![0u64; span + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[(self.offset - off) as usize + i] = l;
        }
        let base = (other.offset - off) as usize;
        let mut carry = 0u64;
        for (i, &l) in other.limbs.iter().enumerate() {
            let (s1, c1) = out[base + i].overflowing_add(l);
            let (s2, c2) = s1.overflowing_add(carry);
            out[base + i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        let mut i = base + other.limbs.len();
        while carry != 0 {
            let (s, c) = out[i].overflowing_add(carry);
            out[i] = s;
            carry = u64::from(c);
            i += 1;
        }
        *self = Magnitude::from_raw(off, out);
    }

    /// Exact subtraction `self − other`; requires `self >= other`.
    fn sub(&self, other: &Magnitude) -> Magnitude {
        debug_assert!(self.cmp_magnitude(other) != Ordering::Less);
        if other.is_zero() {
            return self.clone();
        }
        let off = self.offset.min(other.offset);
        let span = (self.end() - off) as usize;
        let mut out = vec![0u64; span];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[(self.offset - off) as usize + i] = l;
        }
        let base = (other.offset - off) as usize;
        let mut borrow = 0u64;
        for (i, &l) in other.limbs.iter().enumerate() {
            let (d1, b1) = out[base + i].overflowing_sub(l);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[base + i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        let mut i = base + other.limbs.len();
        while borrow != 0 {
            let (d, b) = out[i].overflowing_sub(borrow);
            out[i] = d;
            borrow = u64::from(b);
            i += 1;
        }
        Magnitude::from_raw(off, out)
    }

    /// Total order on represented values (canonical form makes the
    /// high-limb comparison sound).
    pub(crate) fn cmp_magnitude(&self, other: &Magnitude) -> Ordering {
        let (ea, eb) = (self.end(), other.end());
        if ea != eb {
            // The top limb of the longer span is nonzero (canonical), so
            // the longer span is strictly larger.
            return ea.cmp(&eb);
        }
        for abs in (0..u64::from(ea)).rev() {
            let (la, lb) = (self.limb_at(abs), other.limb_at(abs));
            if la != lb {
                return la.cmp(&lb);
            }
        }
        Ordering::Equal
    }

    /// Absolute bit index of the most significant set bit. Panics on zero
    /// (callers handle zero first).
    fn highest_bit(&self) -> u64 {
        let last = self.limbs[self.limbs.len() - 1];
        64 * (u64::from(self.end()) - 1) + 63 - u64::from(last.leading_zeros())
    }

    /// Whether absolute bit `pos` is set.
    fn bit(&self, pos: u64) -> bool {
        (self.limb_at(pos / 64) >> (pos % 64)) & 1 == 1
    }

    /// The 53 bits starting at absolute bit `lo` (little-endian).
    fn bits53_at(&self, lo: u64) -> u64 {
        let li = lo / 64;
        let s = lo % 64;
        let w = (self.limb_at(li) as u128) | ((self.limb_at(li + 1) as u128) << 64);
        ((w >> s) as u64) & ((1u64 << 53) - 1)
    }

    /// Whether any bit strictly below absolute bit `pos` is set.
    fn any_bit_below(&self, pos: u64) -> bool {
        let li = pos / 64;
        for abs in u64::from(self.offset)..li.min(u64::from(self.end())) {
            if self.limb_at(abs) != 0 {
                return true;
            }
        }
        let s = pos % 64;
        s > 0 && self.limb_at(li) & ((1u64 << s) - 1) != 0
    }

    /// Rounds `value · 2⁻¹⁰⁷⁴` to the nearest `f64` (ties to even) — the
    /// same result a single correctly-rounded sum would produce.
    pub(crate) fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let p = self.highest_bit();
        if p <= 51 {
            // Below 2⁵² the value is a single limb at offset 0 and is
            // exactly a subnormal bit pattern (biased exponent 0).
            return f64::from_bits(self.limbs[0]);
        }
        // Normal range: biased exponent E gives values (2⁵²+F)·2^(E−1) in
        // quantum units, so E = P − 51.
        let mut exp = p - 51;
        let mut m = self.bits53_at(p - 52);
        if p >= 53 {
            let guard = self.bit(p - 53);
            let sticky = p >= 54 && self.any_bit_below(p - 53);
            if guard && (sticky || m & 1 == 1) {
                m += 1;
                if m == 1u64 << 53 {
                    m >>= 1;
                    exp += 1;
                }
            }
        }
        if exp >= 0x7ff {
            return f64::INFINITY;
        }
        f64::from_bits((exp << 52) | (m & ((1u64 << 52) - 1)))
    }

    /// Serializes the canonical form.
    fn write(&self, w: &mut ByteWriter) {
        w.u32(self.offset);
        w.u32(self.limbs.len() as u32);
        for &l in &self.limbs {
            w.u64(l);
        }
    }

    /// Reads a magnitude, rejecting non-canonical forms so the codec is a
    /// bijection (decode∘encode = id and encode∘decode = id).
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let offset = r.u32()?;
        let n = r.u32()? as usize;
        if n > MAX_LIMBS || offset as usize > MAX_LIMBS {
            return Err(CodecError::new(format!(
                "magnitude claims {n} limbs at offset {offset}"
            )));
        }
        let mut limbs = Vec::with_capacity(n);
        for _ in 0..n {
            limbs.push(r.u64()?);
        }
        let canonical = match limbs.as_slice() {
            [] => offset == 0,
            [first, .., last] => *first != 0 && *last != 0,
            [only] => *only != 0,
        };
        if !canonical {
            return Err(CodecError::new("magnitude is not in canonical form"));
        }
        Ok(Magnitude { offset, limbs })
    }
}

/// An exact running sum of finite `f64` values: positive and negative
/// inputs accumulate in separate [`Magnitude`]s, so the state is a pure
/// function of the input multiset — merging is commutative, associative
/// and bit-stable under any split of the input.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExactSum {
    pos: Magnitude,
    neg: Magnitude,
}

impl ExactSum {
    /// An empty sum.
    pub fn new() -> Self {
        ExactSum::default()
    }

    /// Adds a finite value exactly. Non-finite inputs are a caller bug
    /// (the aggregate layer validates before absorbing).
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        let m = Magnitude::from_f64_abs(x);
        if x.is_sign_negative() {
            self.neg.add_assign(&m);
        } else {
            self.pos.add_assign(&m);
        }
    }

    /// Folds another sum in exactly.
    pub fn merge(&mut self, other: &ExactSum) {
        self.pos.add_assign(&other.pos);
        self.neg.add_assign(&other.neg);
    }

    /// Whether nothing (or only zeros) has been added.
    pub fn is_zero(&self) -> bool {
        self.pos.is_zero() && self.neg.is_zero()
    }

    /// The correctly-rounded value of the sum (round to nearest, ties to
    /// even; exact cancellation yields `+0.0`, overflow yields ±∞).
    pub fn value(&self) -> f64 {
        match self.pos.cmp_magnitude(&self.neg) {
            Ordering::Equal => 0.0,
            Ordering::Greater => self.pos.sub(&self.neg).to_f64(),
            Ordering::Less => -self.neg.sub(&self.pos).to_f64(),
        }
    }

    /// Serializes the sum (canonical, hence deterministic).
    pub(crate) fn write(&self, w: &mut ByteWriter) {
        self.pos.write(w);
        self.neg.write(w);
    }

    /// Reads a sum written by [`ExactSum::write`].
    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(ExactSum {
            pos: Magnitude::read(r)?,
            neg: Magnitude::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> ExactSum {
        let mut s = ExactSum::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    #[test]
    fn single_values_round_trip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -123.456,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -5e-324,
            1.5e-310, // subnormal
            (1u64 << 53) as f64,
        ] {
            assert_eq!(sum_of(&[v]).value().to_bits(), (v + 0.0).to_bits(), "{v}");
        }
    }

    #[test]
    fn exact_cancellation_is_positive_zero() {
        let s = sum_of(&[0.1, 2.5, -0.1, -2.5]);
        assert!(s.is_zero() || s.value() == 0.0);
        assert_eq!(s.value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn integer_sums_are_exact() {
        let s = sum_of(&[1.0; 1000]);
        assert_eq!(s.value(), 1000.0);
        let mut s = ExactSum::new();
        for i in 0..1000 {
            s.add(i as f64);
            s.add(-(i as f64));
        }
        assert_eq!(s.value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn catastrophic_cancellation_is_handled() {
        // Naive left-to-right f64 summation gets this badly wrong.
        let s = sum_of(&[1e16, 1.0, -1e16]);
        assert_eq!(s.value(), 1.0);
        let s = sum_of(&[1e308, 1e308, -1e308]);
        assert_eq!(s.value(), 1e308);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let s = sum_of(&[f64::MAX, f64::MAX]);
        assert_eq!(s.value(), f64::INFINITY);
        let s = sum_of(&[-f64::MAX, -f64::MAX]);
        assert_eq!(s.value(), f64::NEG_INFINITY);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 2^53 + 1 is not representable: ties round to even (2^53).
        let s = sum_of(&[(1u64 << 53) as f64, 1.0]);
        assert_eq!(s.value(), (1u64 << 53) as f64);
        // 2^53 + 2 is representable.
        let s = sum_of(&[(1u64 << 53) as f64, 2.0]);
        assert_eq!(s.value(), ((1u64 << 53) + 2) as f64);
        // 2^53 + 3 rounds up to 2^53 + 4 (tie to even on the last bit).
        let s = sum_of(&[(1u64 << 53) as f64, 3.0]);
        assert_eq!(s.value(), ((1u64 << 53) + 4) as f64);
        // 2^53 + 1 + something tiny is above the tie: rounds up.
        let s = sum_of(&[(1u64 << 53) as f64, 1.0, 5e-324]);
        assert_eq!(s.value(), ((1u64 << 53) + 2) as f64);
    }

    #[test]
    fn merge_equals_sequential() {
        let all = [0.1, -7.25, 1e300, 5e-324, -0.3, 42.0, -1e300];
        let whole = sum_of(&all);
        for split in 0..=all.len() {
            let mut left = sum_of(&all[..split]);
            let right = sum_of(&all[split..]);
            left.merge(&right);
            assert_eq!(left, whole, "split at {split}");
            assert_eq!(left.value().to_bits(), whole.value().to_bits());
        }
    }

    #[test]
    fn codec_round_trips_bytes() {
        let s = sum_of(&[0.1, -2.5, 1e-310, 7e300]);
        let mut w = ByteWriter::new();
        s.write(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let decoded = ExactSum::read(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded, s);
        let mut w2 = ByteWriter::new();
        decoded.write(&mut w2);
        assert_eq!(w2.into_vec(), buf);
    }

    #[test]
    fn codec_rejects_non_canonical() {
        // A zero high limb is non-canonical.
        let mut w = ByteWriter::new();
        w.u32(0); // offset
        w.u32(2); // limbs
        w.u64(1);
        w.u64(0);
        w.u32(0);
        w.u32(0);
        let buf = w.into_vec();
        assert!(ExactSum::read(&mut ByteReader::new(&buf)).is_err());
        // Zero with a nonzero offset is non-canonical.
        let mut w = ByteWriter::new();
        w.u32(3);
        w.u32(0);
        w.u32(0);
        w.u32(0);
        let buf = w.into_vec();
        assert!(ExactSum::read(&mut ByteReader::new(&buf)).is_err());
    }
}
