//! Mergeable two-step aggregate states for GeoAlign.
//!
//! The partial/accessor split of two-step aggregates (as in TimescaleDB
//! Toolkit) applied to the point crosswalk: [`AggState`] is the partial —
//! a serializable, mergeable exact summary of weighted point records over
//! a `(source, target)` unit-system pair — and [`AggState::finalize`] is
//! the accessor that rounds it into the marginal totals and intersection
//! triples the estimator consumes.
//!
//! The merge law is strict: `merge` is commutative and associative, and
//! folding any split of the same input — per-chunk partials, streamed
//! batches, decoded checkpoints — produces *bit-identical* state. That is
//! achieved by keeping every cell sum exact ([`ExactSum`], a fixed-point
//! superaccumulator) and rounding exactly once at finalize, and it is what
//! lets a streaming server answer byte-identically to a cold batch run.

#![warn(missing_docs)]

pub mod error;
pub mod state;
pub mod sum;

mod obs;

pub use error::AggError;
pub use state::{AggState, FinalizedAggregates, AGG_CODEC_VERSION};
pub use sum::ExactSum;
