//! The mergeable aggregate state and its finalize accessor — the
//! partial/accessor split of two-step aggregates applied to GeoAlign's
//! point crosswalk.
//!
//! An [`AggState`] holds one attribute's evidence between a fixed pair of
//! unit systems: an exact weight sum per `(source, target)` intersection
//! cell plus absorbed/skipped record counts. States over the same shape
//! merge commutatively and associatively with bit-identical results under
//! any split of the input (see [`crate::sum`]), and serialize through the
//! geoalign-store codec so they can checkpoint and travel.

use crate::error::AggError;
use crate::sum::ExactSum;
use geoalign_store::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::BTreeMap;

/// Version byte leading every serialized [`AggState`].
pub const AGG_CODEC_VERSION: u8 = 1;

/// A mergeable partial aggregate of weighted point records for one
/// attribute over a fixed `(source, target)` unit-system pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggState {
    attribute: String,
    n_source: u32,
    n_target: u32,
    /// Exact per-intersection-cell weight sums, keyed by
    /// `(source unit, target unit)`. A `BTreeMap` keeps iteration (and
    /// hence encoding and finalization) canonical without sorting.
    cells: BTreeMap<(u32, u32), ExactSum>,
    /// Records absorbed into cells.
    count: u64,
    /// Records skipped under an outside policy (outside either system).
    skipped: u64,
}

/// The accessor half of the two-step split: everything
/// [`AggState::finalize`] rounds out of the exact state, ready to build
/// aggregate vectors and a disaggregation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalizedAggregates {
    /// Attribute the state aggregates.
    pub attribute: String,
    /// Per-source-unit totals (exact row sums, rounded once).
    pub source: Vec<f64>,
    /// Per-target-unit totals (exact column sums, rounded once).
    pub target: Vec<f64>,
    /// Intersection-cell totals in `(source, target)` order.
    pub triples: Vec<(usize, usize, f64)>,
    /// Records absorbed into cells.
    pub count: u64,
    /// Records skipped as outside either system.
    pub skipped: u64,
}

impl AggState {
    /// An empty state for `attribute` over `n_source × n_target` units.
    pub fn new(
        attribute: impl Into<String>,
        n_source: usize,
        n_target: usize,
    ) -> Result<Self, AggError> {
        let attribute = attribute.into();
        if attribute.is_empty() {
            return Err(AggError::EmptyAttribute);
        }
        let n_source = dimension("source", n_source)?;
        let n_target = dimension("target", n_target)?;
        Ok(AggState {
            attribute,
            n_source,
            n_target,
            cells: BTreeMap::new(),
            count: 0,
            skipped: 0,
        })
    }

    /// Absorbs one record: `weight` lands in intersection cell
    /// `(source, target)` exactly.
    pub fn absorb(&mut self, source: usize, target: usize, weight: f64) -> Result<(), AggError> {
        if !weight.is_finite() {
            return Err(AggError::NonFiniteWeight);
        }
        if source >= self.n_source as usize {
            return Err(AggError::UnitOutOfBounds {
                axis: "source",
                index: source,
                len: self.n_source as usize,
            });
        }
        if target >= self.n_target as usize {
            return Err(AggError::UnitOutOfBounds {
                axis: "target",
                index: target,
                len: self.n_target as usize,
            });
        }
        self.cells
            .entry((source as u32, target as u32))
            .or_default()
            .add(weight);
        self.count += 1;
        Ok(())
    }

    /// Notes a record skipped as outside either unit system.
    pub fn record_skipped(&mut self) {
        self.skipped += 1;
    }

    /// Folds `other` in. Merging is commutative and associative, and any
    /// split of the same input merges to bit-identical state.
    pub fn merge(&mut self, other: &AggState) -> Result<(), AggError> {
        if self.attribute != other.attribute {
            return Err(AggError::StateMismatch {
                detail: format!("attribute '{}' vs '{}'", self.attribute, other.attribute),
            });
        }
        if self.n_source != other.n_source || self.n_target != other.n_target {
            return Err(AggError::StateMismatch {
                detail: format!(
                    "shape {}x{} vs {}x{}",
                    self.n_source, self.n_target, other.n_source, other.n_target
                ),
            });
        }
        for (key, sum) in &other.cells {
            self.cells.entry(*key).or_default().merge(sum);
        }
        self.count += other.count;
        self.skipped += other.skipped;
        crate::obs::merge_total().inc();
        Ok(())
    }

    /// The accessor: rounds the exact state into per-unit totals and
    /// intersection triples. Marginals are exact row/column sums of the
    /// cells rounded once, so they are consistent with the triples and
    /// independent of absorption order.
    pub fn finalize(&self) -> FinalizedAggregates {
        let mut row = vec![ExactSum::new(); self.n_source as usize];
        let mut col = vec![ExactSum::new(); self.n_target as usize];
        let mut triples = Vec::with_capacity(self.cells.len());
        for (&(si, ti), sum) in &self.cells {
            row[si as usize].merge(sum);
            col[ti as usize].merge(sum);
            triples.push((si as usize, ti as usize, sum.value()));
        }
        FinalizedAggregates {
            attribute: self.attribute.clone(),
            source: row.iter().map(ExactSum::value).collect(),
            target: col.iter().map(ExactSum::value).collect(),
            triples,
            count: self.count,
            skipped: self.skipped,
        }
    }

    /// Attribute the state aggregates.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.n_source as usize
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.n_target as usize
    }

    /// Records absorbed into cells.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records skipped as outside either system.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of nonempty intersection cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Whether no record has been absorbed or skipped.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.skipped == 0
    }

    /// Serializes the state. Encoding is canonical: two states that merge
    /// equal encode byte-identically.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + self.cells.len() * 40);
        w.u8(AGG_CODEC_VERSION);
        w.str(&self.attribute);
        w.u32(self.n_source);
        w.u32(self.n_target);
        w.u64(self.count);
        w.u64(self.skipped);
        w.u64(self.cells.len() as u64);
        for (&(si, ti), sum) in &self.cells {
            w.u32(si);
            w.u32(ti);
            sum.write(&mut w);
        }
        w.into_vec()
    }

    /// Decodes a state written by [`AggState::encode`]. Corrupt payloads
    /// error; they never panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, AggError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != AGG_CODEC_VERSION {
            return Err(AggError::Codec {
                detail: format!("unsupported aggregate codec version {version}"),
            });
        }
        let attribute = r.str()?.to_string();
        if attribute.is_empty() {
            return Err(AggError::EmptyAttribute);
        }
        let n_source = r.u32()?;
        let n_target = r.u32()?;
        if n_source == 0 || n_target == 0 {
            return Err(AggError::Codec {
                detail: "zero unit-system dimension".to_string(),
            });
        }
        let count = r.u64()?;
        let skipped = r.u64()?;
        let n_cells = r.len_u64("cell count")?;
        // Each cell needs at least key (8) + two empty magnitudes (16).
        if n_cells
            .checked_mul(24)
            .is_none_or(|bytes| bytes > r.remaining())
        {
            return Err(
                CodecError::new(format!("cell count {n_cells} exceeds remaining payload")).into(),
            );
        }
        let mut cells = BTreeMap::new();
        let mut last: Option<(u32, u32)> = None;
        for _ in 0..n_cells {
            let si = r.u32()?;
            let ti = r.u32()?;
            if si >= n_source || ti >= n_target {
                return Err(AggError::Codec {
                    detail: format!("cell ({si}, {ti}) outside {n_source}x{n_target}"),
                });
            }
            if last.is_some_and(|prev| prev >= (si, ti)) {
                return Err(AggError::Codec {
                    detail: "cells are not strictly ordered".to_string(),
                });
            }
            last = Some((si, ti));
            cells.insert((si, ti), ExactSum::read(&mut r)?);
        }
        if (n_cells as u64) > count {
            return Err(AggError::Codec {
                detail: format!("{n_cells} cells but only {count} records"),
            });
        }
        r.expect_end()?;
        Ok(AggState {
            attribute,
            n_source,
            n_target,
            cells,
            count,
            skipped,
        })
    }
}

/// Validates a unit-system dimension and narrows it to the cell key space.
fn dimension(axis: &'static str, len: usize) -> Result<u32, AggError> {
    if len == 0 {
        return Err(AggError::ZeroDimension { axis });
    }
    u32::try_from(len).map_err(|_| AggError::DimensionTooLarge { axis, len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(points: &[(usize, usize, f64)]) -> AggState {
        let mut s = AggState::new("pop", 3, 2).unwrap();
        for &(si, ti, w) in points {
            s.absorb(si, ti, w).unwrap();
        }
        s
    }

    #[test]
    fn construction_validates_inputs() {
        assert_eq!(AggState::new("", 3, 2), Err(AggError::EmptyAttribute));
        assert!(matches!(
            AggState::new("x", 0, 2),
            Err(AggError::ZeroDimension { axis: "source" })
        ));
        let mut s = AggState::new("x", 3, 2).unwrap();
        assert!(matches!(
            s.absorb(3, 0, 1.0),
            Err(AggError::UnitOutOfBounds { axis: "source", .. })
        ));
        assert!(matches!(
            s.absorb(0, 2, 1.0),
            Err(AggError::UnitOutOfBounds { axis: "target", .. })
        ));
        assert_eq!(s.absorb(0, 0, f64::NAN), Err(AggError::NonFiniteWeight));
        assert!(s.is_empty());
    }

    #[test]
    fn finalize_produces_consistent_marginals() {
        let s = state_with(&[(0, 0, 1.0), (0, 1, 2.0), (2, 1, 4.0), (0, 0, 0.5)]);
        let f = s.finalize();
        assert_eq!(f.source, vec![3.5, 0.0, 4.0]);
        assert_eq!(f.target, vec![1.5, 6.0]);
        assert_eq!(f.triples, vec![(0, 0, 1.5), (0, 1, 2.0), (2, 1, 4.0)]);
        assert_eq!(f.count, 4);
        assert_eq!(f.skipped, 0);
    }

    #[test]
    fn merge_requires_matching_shape_and_attribute() {
        let mut a = AggState::new("pop", 3, 2).unwrap();
        let b = AggState::new("income", 3, 2).unwrap();
        assert!(matches!(a.merge(&b), Err(AggError::StateMismatch { .. })));
        let c = AggState::new("pop", 4, 2).unwrap();
        assert!(matches!(a.merge(&c), Err(AggError::StateMismatch { .. })));
    }

    #[test]
    fn merge_is_split_invariant() {
        let points = [
            (0, 0, 0.1),
            (1, 1, 2.5),
            (0, 0, -0.1),
            (2, 0, 1e300),
            (1, 1, 5e-324),
            (2, 0, -1e300),
        ];
        let whole = state_with(&points);
        for split in 0..=points.len() {
            let mut left = state_with(&points[..split]);
            let right = state_with(&points[split..]);
            left.merge(&right).unwrap();
            assert_eq!(left, whole, "split at {split}");
            assert_eq!(left.encode(), whole.encode());
        }
    }

    #[test]
    fn skip_counts_travel_through_merge() {
        let mut a = state_with(&[(0, 0, 1.0)]);
        a.record_skipped();
        let mut b = state_with(&[]);
        b.record_skipped();
        b.record_skipped();
        a.merge(&b).unwrap();
        assert_eq!(a.skipped(), 3);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn codec_round_trips_byte_identically() {
        let mut s = state_with(&[(0, 1, 0.25), (2, 0, 7.5), (0, 1, 1e-310)]);
        s.record_skipped();
        let bytes = s.encode();
        let decoded = AggState::decode(&bytes).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decode_rejects_corruption() {
        let s = state_with(&[(0, 0, 1.0), (1, 1, 2.0)]);
        let bytes = s.encode();
        // Truncation at every offset errors, never panics.
        for cut in 0..bytes.len() {
            assert!(AggState::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is caught.
        let mut long = bytes.clone();
        long.push(0);
        assert!(AggState::decode(&long).is_err());
        // Wrong version byte.
        let mut wrong = bytes;
        wrong[0] = 99;
        assert!(AggState::decode(&wrong).is_err());
    }

    #[test]
    fn decode_rejects_unordered_cells() {
        let mut s = AggState::new("x", 2, 2).unwrap();
        s.absorb(0, 0, 1.0).unwrap();
        s.absorb(1, 1, 1.0).unwrap();
        let bytes = s.encode();
        // Swap the two cell keys in place: (0,0) and (1,1) are at fixed
        // offsets because both magnitudes have one limb each.
        let header = 1 + 4 + "x".len() + 4 + 4 + 8 + 8 + 8;
        let cell = 4 + 4 + (4 + 4 + 8) + (4 + 4);
        let (a, b) = (header, header + cell);
        let mut swapped = bytes.clone();
        swapped.copy_within(a..a + 8, b);
        swapped[a..a + 8].copy_from_slice(&bytes[b..b + 8]);
        assert!(AggState::decode(&swapped).is_err());
    }
}
