//! A small pool of long-running named worker threads fed over an mpsc
//! channel — the serving layer's request workers, drawn from the same
//! process-wide thread budget as the fork-join [`Executor`]
//! (`crate::Executor`) instead of a second, competing hand-rolled pool.
//!
//! Handler panics are caught per job (a panicking request must not take
//! a worker down with it) and counted in
//! `geoalign_exec_pool_panics_total`; queue wait per job goes to
//! `geoalign_exec_pool_queue_wait_micros`.

use crate::obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A job envelope: the payload plus its submission instant, so pickup
/// latency can be recorded.
struct Envelope<J> {
    submitted: Instant,
    job: J,
}

/// A fixed pool of named, long-running worker threads consuming jobs from
/// a shared queue. Dropping (or [`WorkerPool::shutdown`]ting) the pool
/// closes the queue; workers drain what is already queued and exit.
pub struct WorkerPool<J: Send + 'static> {
    sender: Option<mpsc::Sender<Envelope<J>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("open", &self.sender.is_some())
            .finish()
    }
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads (minimum 1) named `<name>-<index>`, each
    /// running `handler` on every job it receives.
    pub fn new<F>(name: &str, workers: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (sender, receiver) = mpsc::channel::<Envelope<J>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver, &*handler))
                    .expect("spawning a worker thread failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues a job. Returns `false` when the pool is already shut down
    /// (the job is dropped).
    pub fn submit(&self, job: J) -> bool {
        match &self.sender {
            Some(sender) => sender
                .send(Envelope {
                    submitted: Instant::now(),
                    job,
                })
                .is_ok(),
            None => false,
        }
    }

    /// Closes the queue and joins every worker after it drains the jobs
    /// already queued.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.sender.take(); // closing the channel ends each worker's recv loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<J>(
    receiver: &Arc<Mutex<mpsc::Receiver<Envelope<J>>>>,
    handler: &(dyn Fn(J) + Sync),
) {
    loop {
        let envelope = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(Envelope { submitted, job }) = envelope else {
            return; // queue closed: pool is shutting down
        };
        obs::pool_queue_wait_micros().record(submitted.elapsed());
        obs::pool_jobs_total().inc();
        if catch_unwind(AssertUnwindSafe(|| handler(job))).is_err() {
            obs::pool_panics_total().inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn every_submitted_job_runs_once() {
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::new("test", 3, move |v: usize| {
                seen.fetch_add(v, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 3);
        for v in 1..=100 {
            assert!(pool.submit(v));
        }
        pool.shutdown(); // drains the queue before joining
        assert_eq!(seen.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn handler_panic_does_not_kill_the_worker() {
        let (tx, rx) = channel::<usize>();
        let pool = WorkerPool::new("panicky", 1, move |v: usize| {
            if v == 0 {
                panic!("bad job");
            }
            tx.send(v).unwrap();
        });
        pool.submit(0); // panics inside the handler
        pool.submit(7); // must still be handled by the same single worker
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool: WorkerPool<usize> = WorkerPool::new("closed", 1, |_| {});
        let probe = {
            // Simulate the post-shutdown state via drop: build a second
            // handle path by shutting down and checking a clone is not
            // possible — submit on a live pool works, then shutdown.
            assert!(pool.submit(1));
            pool.shutdown();
            true
        };
        assert!(probe);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = {
            let ran = Arc::clone(&ran);
            WorkerPool::new("min", 0, move |_: ()| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 1);
        pool.submit(());
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
