//! A small pool of long-running named worker threads fed over an mpsc
//! channel — the serving layer's request workers, drawn from the same
//! process-wide thread budget as the fork-join [`Executor`]
//! (`crate::Executor`) instead of a second, competing hand-rolled pool.
//!
//! Two queue shapes: [`WorkerPool::new`] is unbounded (every submit is
//! accepted), [`WorkerPool::bounded`] caps the queue so a producer can
//! shed load with [`WorkerPool::try_submit`] instead of queueing
//! without limit — the serve front end answers 503 from the rejection.
//!
//! Handler panics are caught per job (a panicking request must not take
//! a worker down with it) and counted in
//! `geoalign_exec_pool_panics_total`; queue wait per job goes to
//! `geoalign_exec_pool_queue_wait_micros`; bounded-queue rejections to
//! `geoalign_exec_pool_rejected_total`.

use crate::obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Live occupancy counters of one [`WorkerPool`], shared with embedders
/// (the serve layer's `/debug/threads` endpoint). All counters are
/// monotonic; derived figures come from [`PoolStats::snapshot`].
#[derive(Debug, Default)]
pub struct PoolStats {
    submitted: AtomicU64,
    started: AtomicU64,
    completed: AtomicU64,
}

/// One consistent-enough reading of a pool's [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Jobs accepted into the queue since the pool started.
    pub submitted: u64,
    /// Jobs a worker has picked up.
    pub started: u64,
    /// Jobs whose handler returned (or panicked).
    pub completed: u64,
    /// Jobs queued but not yet picked up (`submitted - started`).
    pub queue_depth: u64,
    /// Jobs currently inside a handler (`started - completed`).
    pub active: u64,
}

impl PoolStats {
    /// Reads the counters. The three loads are not atomic together, so
    /// derived figures can be off by in-flight jobs — fine for
    /// introspection.
    pub fn snapshot(&self) -> PoolStatsSnapshot {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let started = self.started.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        PoolStatsSnapshot {
            submitted,
            started,
            completed,
            queue_depth: submitted.saturating_sub(started),
            active: started.saturating_sub(completed),
        }
    }
}

/// A job envelope: the payload plus its submission instant, so pickup
/// latency can be recorded.
struct Envelope<J> {
    submitted: Instant,
    job: J,
}

/// The sending half: unbounded channel or capacity-bounded sync channel.
enum Tx<J> {
    Unbounded(mpsc::Sender<Envelope<J>>),
    Bounded(mpsc::SyncSender<Envelope<J>>),
}

/// Why [`WorkerPool::try_submit`] did not queue a job. The job comes
/// back to the caller so it can respond (e.g. write a 503) instead of
/// losing it.
#[derive(Debug)]
pub enum RejectedJob<J> {
    /// The bounded queue is full: every worker is busy and the backlog
    /// is at capacity. Shed load.
    Saturated(J),
    /// The pool has shut down; no worker will ever pick the job up.
    Closed(J),
}

/// A fixed pool of named, long-running worker threads consuming jobs from
/// a shared queue. Dropping (or [`WorkerPool::shutdown`]ting) the pool
/// closes the queue; workers drain what is already queued and exit.
pub struct WorkerPool<J: Send + 'static> {
    sender: Option<Tx<J>>,
    queue_capacity: Option<usize>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl<J: Send + 'static> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("open", &self.sender.is_some())
            .finish()
    }
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads (minimum 1) named `<name>-<index>`, each
    /// running `handler` on every job it receives. The queue is
    /// unbounded; see [`WorkerPool::bounded`] for a load-shedding pool.
    pub fn new<F>(name: &str, workers: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (sender, receiver) = mpsc::channel::<Envelope<J>>();
        Self::start(
            name,
            workers,
            Tx::Unbounded(sender),
            None,
            receiver,
            handler,
        )
    }

    /// Like [`WorkerPool::new`], but the queue holds at most
    /// `queue_capacity` jobs beyond the ones workers are running.
    /// [`WorkerPool::try_submit`] rejects instead of queueing past the
    /// cap; [`WorkerPool::submit`] blocks until space frees up. A
    /// capacity of 0 is a rendezvous queue: a job is only accepted when
    /// a worker is already waiting for it.
    pub fn bounded<F>(name: &str, workers: usize, queue_capacity: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (sender, receiver) = mpsc::sync_channel::<Envelope<J>>(queue_capacity);
        Self::start(
            name,
            workers,
            Tx::Bounded(sender),
            Some(queue_capacity),
            receiver,
            handler,
        )
    }

    fn start<F>(
        name: &str,
        workers: usize,
        sender: Tx<J>,
        queue_capacity: Option<usize>,
        receiver: mpsc::Receiver<Envelope<J>>,
        handler: F,
    ) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let receiver = Arc::new(Mutex::new(receiver));
        let handler = Arc::new(handler);
        let stats = Arc::new(PoolStats::default());
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver, &*handler, &stats))
                    .expect("spawning a worker thread failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            queue_capacity,
            handles,
            stats,
        }
    }

    /// A shared handle to this pool's occupancy counters; stays valid
    /// after the pool shuts down.
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The bounded queue's capacity; `None` for an unbounded pool.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Queues a job. On a bounded pool this blocks while the queue is
    /// full. Returns `false` when the pool is already shut down (the
    /// job is dropped).
    pub fn submit(&self, job: J) -> bool {
        let envelope = Envelope {
            submitted: Instant::now(),
            job,
        };
        let accepted = match &self.sender {
            Some(Tx::Unbounded(sender)) => sender.send(envelope).is_ok(),
            Some(Tx::Bounded(sender)) => sender.send(envelope).is_ok(),
            None => false,
        };
        if accepted {
            self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        accepted
    }

    /// Queues a job without blocking. A full bounded queue returns
    /// [`RejectedJob::Saturated`] with the job, so the caller can shed
    /// load; an unbounded pool never saturates.
    pub fn try_submit(&self, job: J) -> Result<(), RejectedJob<J>> {
        let envelope = Envelope {
            submitted: Instant::now(),
            job,
        };
        let queued = match &self.sender {
            Some(Tx::Unbounded(sender)) => sender
                .send(envelope)
                .map_err(|e| RejectedJob::Closed(e.0.job)),
            Some(Tx::Bounded(sender)) => sender.try_send(envelope).map_err(|e| match e {
                TrySendError::Full(envelope) => {
                    obs::pool_rejected_total().inc();
                    RejectedJob::Saturated(envelope.job)
                }
                TrySendError::Disconnected(envelope) => RejectedJob::Closed(envelope.job),
            }),
            None => Err(RejectedJob::Closed(envelope.job)),
        };
        if queued.is_ok() {
            self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        queued
    }

    /// Closes the queue and joins every worker after it drains the jobs
    /// already queued.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.sender.take(); // closing the channel ends each worker's recv loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<J>(
    receiver: &Arc<Mutex<mpsc::Receiver<Envelope<J>>>>,
    handler: &(dyn Fn(J) + Sync),
    stats: &PoolStats,
) {
    loop {
        let envelope = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(Envelope { submitted, job }) = envelope else {
            return; // queue closed: pool is shutting down
        };
        stats.started.fetch_add(1, Ordering::Relaxed);
        obs::pool_queue_wait_micros().record(submitted.elapsed());
        obs::pool_jobs_total().inc();
        if catch_unwind(AssertUnwindSafe(|| handler(job))).is_err() {
            obs::pool_panics_total().inc();
        }
        stats.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn every_submitted_job_runs_once() {
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::new("test", 3, move |v: usize| {
                seen.fetch_add(v, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.queue_capacity(), None);
        for v in 1..=100 {
            assert!(pool.submit(v));
        }
        pool.shutdown(); // drains the queue before joining
        assert_eq!(seen.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn handler_panic_does_not_kill_the_worker() {
        let (tx, rx) = channel::<usize>();
        let pool = WorkerPool::new("panicky", 1, move |v: usize| {
            if v == 0 {
                panic!("bad job");
            }
            tx.send(v).unwrap();
        });
        pool.submit(0); // panics inside the handler
        pool.submit(7); // must still be handled by the same single worker
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(7));
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool: WorkerPool<usize> = WorkerPool::new("closed", 1, |_| {});
        let probe = {
            // Simulate the post-shutdown state via drop: build a second
            // handle path by shutting down and checking a clone is not
            // possible — submit on a live pool works, then shutdown.
            assert!(pool.submit(1));
            pool.shutdown();
            true
        };
        assert!(probe);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = {
            let ran = Arc::clone(&ran);
            WorkerPool::new("min", 0, move |_: ()| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.workers(), 1);
        pool.submit(());
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bounded_pool_saturates_and_returns_the_job() {
        // One worker parked on a gate, queue capacity 1: the first job
        // occupies the worker, the second fills the queue, the third
        // must come back as Saturated.
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let gate_rx = Arc::clone(&gate_rx);
            let done = Arc::clone(&done);
            WorkerPool::bounded("gated", 1, 1, move |v: usize| {
                gate_rx.lock().unwrap().recv().unwrap();
                done.fetch_add(v, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.queue_capacity(), Some(1));
        assert!(pool.try_submit(1).is_ok());
        // Wait for the worker to pick job 1 up (it parks on the gate),
        // so job 2 deterministically lands in the queue slot.
        let t0 = Instant::now();
        while pool.try_submit(2).is_err() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "worker never started"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Worker busy + queue full: the job is handed back.
        match pool.try_submit(3) {
            Err(RejectedJob::Saturated(job)) => assert_eq!(job, 3),
            other => panic!("expected saturation, got {other:?}"),
        }
        // Opening the gate drains both accepted jobs.
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 3); // 1 + 2, not the shed 3
    }

    #[test]
    fn stats_track_submitted_started_completed() {
        let pool = WorkerPool::new("stats", 2, |_: usize| {});
        let stats = pool.stats();
        for v in 0..10 {
            assert!(pool.submit(v));
        }
        pool.shutdown(); // drains everything
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.started, 10);
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.active, 0);
    }

    #[test]
    fn stats_expose_queue_depth_while_workers_are_busy() {
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        let pool = {
            let gate_rx = Arc::clone(&gate_rx);
            WorkerPool::bounded("depth", 1, 4, move |_: usize| {
                gate_rx.lock().unwrap().recv().unwrap();
            })
        };
        let stats = pool.stats();
        assert!(pool.submit(1));
        // Wait until the single worker has picked job 1 up.
        let t0 = Instant::now();
        while stats.snapshot().started == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "worker never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.submit(2)); // parks in the queue behind the gated job
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.active, 1);
        assert_eq!(snap.queue_depth, 1);
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(stats.snapshot().completed, 2);
    }

    #[test]
    fn bounded_pool_drains_queued_jobs_on_shutdown() {
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::bounded("drain", 2, 8, move |v: usize| {
                seen.fetch_add(v, Ordering::Relaxed);
            })
        };
        for v in 1..=8 {
            assert!(pool.submit(v)); // blocks if full, never drops
        }
        pool.shutdown();
        assert_eq!(seen.load(Ordering::Relaxed), 36);
    }
}
