//! **geoalign-exec** — the workspace's deterministic parallel execution
//! layer, on `std` only.
//!
//! The paper's scalability claim (§4.4, Fig. 6: runtime linear in the
//! number of units) rests on hot loops — overlay construction, point
//! crosswalk aggregation, Gram assembly, pipeline realignment, batch
//! apply — that this crate fans out over a scoped-thread pool. The
//! non-negotiable constraint is the volume-preservation property
//! (Eq. 14/17): parallelism must never change an answer. The executor
//! guarantees that with two rules:
//!
//! 1. **Chunking is a pure function of the input length.** Chunk
//!    boundaries never depend on the thread count, so the same input is
//!    cut into the same tasks whether one thread or eight run them.
//! 2. **Reduction is ordered.** Task results are merged strictly in task
//!    order (an ordered left fold), so floating-point merges happen in
//!    one fixed order. Results are therefore **bit-identical across
//!    every thread count**, including the sequential (1-thread) path.
//!
//! Panics inside a task are caught per task and surfaced as
//! [`ExecError::TaskPanicked`] from the lowest-indexed failing task —
//! never a poisoned process, and deterministically the same error the
//! sequential path would have hit first.
//!
//! The thread budget is process-wide: [`global_threads`] reads the
//! `GEOALIGN_THREADS` environment variable (default: available
//! parallelism), and [`set_global_threads`] lets a CLI flag
//! (`geoalign --threads N`) override it. Long-running request workers
//! ([`WorkerPool`], used by `geoalign-serve`) draw from the same budget,
//! so a process has one knob instead of two competing pools.
//!
//! Nested parallel regions run inline: a task that itself calls into the
//! executor executes its sub-tasks sequentially on the worker thread.
//! That bounds the process at one level of fan-out (≤ budget threads)
//! and changes nothing about results — chunking and merge order are the
//! same either way.

#![warn(missing_docs)]

pub mod handoff;
mod obs;
pub mod pool;

pub use handoff::CompletionQueue;
pub use pool::{PoolStats, PoolStatsSnapshot, RejectedJob, WorkerPool};

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Errors surfaced by a parallel job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task panicked. The job ran to completion on the other tasks; the
    /// reported task is the lowest-indexed one that panicked (the same
    /// one a sequential run would have hit first).
    TaskPanicked {
        /// Index of the panicking task.
        task: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TaskPanicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Fixed fan-out target of the default chunking policy. A function of
/// nothing but this constant and the input length — crucially *not* of
/// the thread count — so the task decomposition (and therefore every
/// merge order) is identical at 1, 2, or 64 threads.
const DEFAULT_CHUNKS: usize = 32;

/// Chunk size of the default policy for `len` items: `ceil(len /
/// DEFAULT_CHUNKS)`, minimum 1.
pub fn default_chunk_size(len: usize) -> usize {
    len.div_ceil(DEFAULT_CHUNKS).max(1)
}

/// Thread-budget override installed by [`set_global_threads`]
/// (0 = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The `GEOALIGN_THREADS` / available-parallelism default, read once.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("GEOALIGN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// The process-wide thread budget: the [`set_global_threads`] override
/// when one is installed, else `GEOALIGN_THREADS`, else the machine's
/// available parallelism. Always at least 1.
pub fn global_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the process-wide thread budget (the `--threads` CLI flag).
/// `0` removes the override, restoring the environment default. Affects
/// executors obtained *after* the call via [`Executor::global`]; explicit
/// [`Executor::new`] handles are unaffected.
pub fn set_global_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

thread_local! {
    /// Set while the current thread is executing tasks for some job, so
    /// nested executor calls run inline instead of spawning a second
    /// level of threads.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard for [`IN_PARALLEL_REGION`].
struct RegionGuard {
    was: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let was = IN_PARALLEL_REGION.with(|f| f.replace(true));
        RegionGuard { was }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_PARALLEL_REGION.with(|f| f.set(was));
    }
}

/// A handle on the execution layer: a thread budget plus the chunked
/// map/reduce primitives. Handles are `Copy`-cheap value types; the
/// threads themselves are scoped to each job (no idle pool to leak).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::global()
    }
}

impl Executor {
    /// An executor running jobs on up to `threads` threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The strictly sequential executor (1 thread, everything inline).
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor on the process-wide budget ([`global_threads`]).
    pub fn global() -> Self {
        Executor::new(global_threads())
    }

    /// The thread budget of this handle.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `tasks` independent tasks and returns their results **in task
    /// order**. Tasks are picked up by workers in index order from a
    /// shared counter; completion order is irrelevant because results are
    /// slotted by index. Any panicking task turns the whole job into
    /// `Err(TaskPanicked)` for the lowest panicking index.
    ///
    /// This is the primitive every other method builds on, and the locus
    /// of the determinism contract: the caller sees results exactly as a
    /// sequential `(0..tasks).map(run).collect()` would order them.
    pub fn run_tasks<R, F>(&self, tasks: usize, run: F) -> Result<Vec<R>, ExecError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_tasks_with(tasks, || (), |(), task| run(task))
    }

    /// [`Executor::run_tasks`] with a per-worker scratch state: every
    /// worker thread calls `init()` once and reuses the resulting value
    /// across all tasks it picks up (the sequential path creates exactly
    /// one). This is the allocation-amortisation hook for hot kernels —
    /// a worker's scratch arena is built once per job, not once per task.
    ///
    /// **Determinism contract:** which worker runs which task is racy, so
    /// task results must not depend on what earlier tasks left in the
    /// scratch state. Scratch is for *capacity* reuse (buffers a task
    /// fully overwrites before reading), never for carrying values
    /// between tasks.
    pub fn run_tasks_with<S, R, I, F>(
        &self,
        tasks: usize,
        init: I,
        run: F,
    ) -> Result<Vec<R>, ExecError>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        // Attribute the fan-out to the requesting thread's cost scope (a
        // no-op unless the caller opened one).
        geoalign_obs::cost::add_tasks(tasks as u64);
        let inline = self.threads == 1 || tasks == 1 || IN_PARALLEL_REGION.with(Cell::get);
        let t_job = Instant::now();
        let result = if inline {
            obs::inline_jobs_total().inc();
            self.run_inline(tasks, &init, &run)
        } else {
            obs::jobs_total().inc();
            self.run_scoped(tasks, &init, &run)
        };
        obs::job_micros().record(t_job.elapsed());
        result
    }

    /// The sequential path: tasks in index order on the calling thread.
    /// Panic capture matches the parallel path so error behaviour is
    /// identical.
    fn run_inline<S, R, I, F>(&self, tasks: usize, init: &I, run: &F) -> Result<Vec<R>, ExecError>
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let _region = RegionGuard::enter();
        let mut state = init();
        let mut out = Vec::with_capacity(tasks);
        for task in 0..tasks {
            obs::tasks_total().inc();
            let t0 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| run(&mut state, task)));
            obs::task_micros().record(t0.elapsed());
            match r {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(ExecError::TaskPanicked {
                        task,
                        message: panic_message(&*payload),
                    })
                }
            }
        }
        Ok(out)
    }

    /// The parallel path: scoped workers pull task indices from an atomic
    /// counter, stash `(index, result)` pairs locally, and the results
    /// are re-assembled in index order after all workers join. Each
    /// worker owns one `init()` state for its whole run; the state never
    /// crosses threads, so it needs no `Send`.
    fn run_scoped<S, R, I, F>(&self, tasks: usize, init: &I, run: &F) -> Result<Vec<R>, ExecError>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let workers = self.threads.min(tasks);
        let next = AtomicUsize::new(0);
        let t_job = Instant::now();
        let mut slots: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
        let mut first_panic: Option<(usize, String)> = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _region = RegionGuard::enter();
                        let mut state = init();
                        let mut local: Vec<(usize, Result<R, String>)> = Vec::new();
                        loop {
                            let task = next.fetch_add(1, Ordering::Relaxed);
                            if task >= tasks {
                                break;
                            }
                            // Queue wait: how long the task sat between job
                            // submission and a worker picking it up.
                            obs::queue_wait_micros().record(t_job.elapsed());
                            obs::tasks_total().inc();
                            let t0 = Instant::now();
                            let r = catch_unwind(AssertUnwindSafe(|| run(&mut state, task)));
                            obs::task_micros().record(t0.elapsed());
                            local.push((task, r.map_err(|p| panic_message(&*p))));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                // A worker's own body cannot panic (task panics are caught
                // inside it), but stay defensive rather than poisoning.
                let Ok(local) = handle.join() else { continue };
                for (task, result) in local {
                    match result {
                        Ok(v) => slots[task] = Some(v),
                        Err(message) => {
                            if first_panic.as_ref().is_none_or(|(t, _)| task < *t) {
                                first_panic = Some((task, message));
                            }
                        }
                    }
                }
            }
        });

        if let Some((task, message)) = first_panic {
            return Err(ExecError::TaskPanicked { task, message });
        }
        // Every slot is filled: all indices below `tasks` were claimed and
        // none panicked.
        Ok(slots
            .into_iter()
            .map(|s| s.expect("task result missing without a recorded panic"))
            .collect())
    }

    /// Splits `items` into chunks of `chunk_size` (the last may be short)
    /// and maps each chunk, returning chunk results **in chunk order**.
    /// The closure receives the chunk's offset into `items` and the chunk
    /// slice, so absolute item indices are `offset + k`.
    pub fn par_chunks_sized<T, R, F>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: F,
    ) -> Result<Vec<R>, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let tasks = items.len().div_ceil(chunk_size);
        self.run_tasks(tasks, |task| {
            let start = task * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(start, &items[start..end])
        })
    }

    /// [`Executor::par_chunks_sized`] under the default chunking policy
    /// ([`default_chunk_size`]) — a pure function of `items.len()`, never
    /// of the thread count.
    pub fn par_chunks<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        self.par_chunks_sized(items, default_chunk_size(items.len()), f)
    }

    /// Maps chunks of `items` in parallel and folds the chunk results
    /// left-to-right in chunk order — the ordered pairwise reduction that
    /// keeps floating-point merges bit-identical across thread counts.
    /// Returns `None` for empty input.
    pub fn map_reduce<T, R, M, D>(
        &self,
        items: &[T],
        map: M,
        mut reduce: D,
    ) -> Result<Option<R>, ExecError>
    where
        T: Sync,
        R: Send,
        M: Fn(usize, &[T]) -> R + Sync,
        D: FnMut(R, R) -> R,
    {
        let partials = self.par_chunks(items, map)?;
        Ok(partials.into_iter().reduce(&mut reduce))
    }

    /// Runs `f(i)` for every `i in 0..n` (each index one task) and
    /// returns the results in index order.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, ExecError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_tasks(n, f)
    }

    /// Runs `f(i)` for every `i in 0..n`, discarding results — for tasks
    /// that communicate through `Sync` shared state.
    pub fn for_each_indexed<F>(&self, n: usize, f: F) -> Result<(), ExecError>
    where
        F: Fn(usize) + Sync,
    {
        self.run_tasks(n, f).map(|_| ())
    }

    /// The ranges the default chunking policy cuts `len` items into —
    /// exposed so callers and tests can reason about task boundaries.
    pub fn chunk_ranges(len: usize) -> impl Iterator<Item = Range<usize>> {
        let chunk = default_chunk_size(len);
        (0..len.div_ceil(chunk)).map(move |t| (t * chunk)..((t + 1) * chunk).min(len))
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let out = exec.run_tasks(100, |i| i * i).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_job_is_a_noop() {
        let exec = Executor::new(4);
        assert_eq!(exec.run_tasks(0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(
            exec.par_chunks(&[] as &[u8], |_, c| c.len()).unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(
            exec.map_reduce(&[] as &[u8], |_, _| 0u64, |a, b| a + b)
                .unwrap(),
            None
        );
    }

    #[test]
    fn chunk_boundaries_ignore_thread_count() {
        // The chunk decomposition depends only on the input length.
        let lens = [0usize, 1, 5, 31, 32, 33, 64, 1000, 12345];
        for len in lens {
            let ranges: Vec<_> = Executor::chunk_ranges(len).collect();
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if len > 0 {
                assert!(ranges.len() <= DEFAULT_CHUNKS.max(1));
            }
        }
    }

    #[test]
    fn par_chunks_offsets_are_absolute() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 3, 8] {
            let exec = Executor::new(threads);
            let chunks = exec
                .par_chunks(&items, |offset, chunk| {
                    chunk.iter().enumerate().all(|(k, &v)| v == offset + k)
                })
                .unwrap();
            assert!(chunks.into_iter().all(|ok| ok));
        }
    }

    #[test]
    fn map_reduce_is_an_ordered_fold() {
        // String concatenation is order-sensitive: any reordering of the
        // merge would scramble the output.
        let items: Vec<u32> = (0..500).collect();
        let expect: String = items.iter().map(|i| format!("{i},")).collect();
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let got = exec
                .map_reduce(
                    &items,
                    |_, chunk| chunk.iter().map(|i| format!("{i},")).collect::<String>(),
                    |mut a, b| {
                        a.push_str(&b);
                        a
                    },
                )
                .unwrap()
                .unwrap();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn float_sums_are_bit_identical_across_thread_counts() {
        // Pathologically mixed magnitudes, where fp addition order matters.
        let items: Vec<f64> = (0..4096)
            .map(|i| (f64::from(i) * 0.37).sin() * 10f64.powi(i % 13 - 6))
            .collect();
        let sum = |exec: &Executor| -> f64 {
            exec.map_reduce(&items, |_, chunk| chunk.iter().sum::<f64>(), |a, b| a + b)
                .unwrap()
                .unwrap()
        };
        let seq = sum(&Executor::sequential());
        for threads in [2, 3, 8, 17] {
            let par = sum(&Executor::new(threads));
            assert_eq!(seq.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn panics_surface_as_err_not_a_poisoned_process() {
        let exec = Executor::new(4);
        let err = exec
            .run_tasks(50, |i| {
                if i == 17 || i == 33 {
                    panic!("boom at {i}");
                }
                i
            })
            .unwrap_err();
        // Deterministically the lowest-indexed panic.
        assert_eq!(
            err,
            ExecError::TaskPanicked {
                task: 17,
                message: "boom at 17".to_owned()
            }
        );
        // The executor stays usable afterwards.
        assert_eq!(exec.run_tasks(3, |i| i).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn sequential_panic_matches_parallel_panic() {
        let job = |exec: &Executor| exec.run_tasks(10, |i| if i == 4 { panic!("x") } else { i });
        assert_eq!(job(&Executor::sequential()), job(&Executor::new(8)));
    }

    #[test]
    fn nested_jobs_run_inline_without_thread_explosion() {
        let exec = Executor::new(8);
        let out = exec
            .run_tasks(8, |i| {
                // Nested call: must run inline on the worker and still be
                // correct and ordered.
                let inner = Executor::new(8).run_tasks(10, move |j| i * 10 + j).unwrap();
                inner.iter().sum::<usize>()
            })
            .unwrap();
        let expect: Vec<usize> = (0..8).map(|i| (0..10).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn for_each_indexed_covers_every_index() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        Executor::new(8)
            .for_each_indexed(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_tasks_with_reuses_one_state_per_worker() {
        use std::sync::atomic::AtomicU64;
        // Count init() calls: at most `threads` states for the parallel
        // path, exactly one for the sequential path.
        for threads in [1usize, 2, 8] {
            let inits = AtomicU64::new(0);
            let exec = Executor::new(threads);
            let out = exec
                .run_tasks_with(
                    64,
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<u8>::new()
                    },
                    |scratch, task| {
                        // Scratch must be overwritten before use — here we
                        // clear and refill, so results never depend on what a
                        // previous task left behind.
                        scratch.clear();
                        scratch.extend(std::iter::repeat_n(task as u8, 3));
                        scratch.iter().map(|&b| b as usize).sum::<usize>()
                    },
                )
                .unwrap();
            assert_eq!(out, (0..64).map(|t| t * 3).collect::<Vec<_>>());
            let states = inits.load(Ordering::Relaxed);
            assert!(states >= 1 && states <= threads as u64, "threads={threads}");
            if threads == 1 {
                assert_eq!(states, 1);
            }
        }
    }

    #[test]
    fn run_tasks_with_panic_matches_run_tasks_semantics() {
        let job = |exec: &Executor| {
            exec.run_tasks_with(10, || 0u32, |_, i| if i == 4 { panic!("x") } else { i })
        };
        assert_eq!(job(&Executor::sequential()), job(&Executor::new(8)));
        assert!(matches!(
            job(&Executor::new(8)),
            Err(ExecError::TaskPanicked { task: 4, .. })
        ));
    }

    #[test]
    fn run_tasks_with_empty_job_skips_init() {
        use std::sync::atomic::AtomicU64;
        let inits = AtomicU64::new(0);
        let out = Executor::new(4)
            .run_tasks_with(
                0,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), i| i,
            )
            .unwrap();
        assert_eq!(out, Vec::<usize>::new());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn global_threads_override() {
        // Note: other tests don't touch the override, so this is safe to
        // toggle here as long as it is restored.
        let before = global_threads();
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(Executor::global().threads(), 3);
        set_global_threads(0);
        assert_eq!(global_threads(), before);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
    }
}
