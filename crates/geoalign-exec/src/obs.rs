//! Library-level metric handles for the execution layer, registered once
//! in the process-global [`Registry`](geoalign_obs::Registry).
//!
//! Names follow `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8). Handles
//! are cached in `OnceLock` statics so the task loop pays only atomic
//! increments.

use geoalign_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| Registry::global().counter($metric, $help))
        }
    };
}

macro_rules! global_histogram {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| Registry::global().histogram($metric, $help))
        }
    };
}

global_counter!(
    jobs_total,
    "geoalign_exec_jobs_total",
    "Parallel jobs run on scoped worker threads"
);
global_counter!(
    inline_jobs_total,
    "geoalign_exec_inline_jobs_total",
    "Jobs run inline (1-thread budget, single task, or nested region)"
);
global_counter!(
    tasks_total,
    "geoalign_exec_tasks_total",
    "Tasks executed across all jobs"
);
global_histogram!(
    job_micros,
    "geoalign_exec_job_micros",
    "Wall time of one executor job (all tasks, including the ordered merge)"
);
global_histogram!(
    task_micros,
    "geoalign_exec_task_micros",
    "Wall time of one task"
);
global_histogram!(
    queue_wait_micros,
    "geoalign_exec_queue_wait_micros",
    "Delay between job submission and a worker picking the task up"
);
global_counter!(
    pool_jobs_total,
    "geoalign_exec_pool_jobs_total",
    "Jobs handled by long-running WorkerPool workers"
);
global_counter!(
    pool_panics_total,
    "geoalign_exec_pool_panics_total",
    "WorkerPool handler panics caught (worker survived)"
);
global_histogram!(
    pool_queue_wait_micros,
    "geoalign_exec_pool_queue_wait_micros",
    "Delay between WorkerPool submit and a worker picking the job up"
);
global_counter!(
    pool_rejected_total,
    "geoalign_exec_pool_rejected_total",
    "Jobs a saturated bounded WorkerPool queue handed back to the caller"
);
