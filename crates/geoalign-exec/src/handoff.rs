//! Completion handoff from pool workers back to an event loop.
//!
//! A readiness reactor (geoalign-serve's front end) must never block on
//! compute: CPU-bound work runs on a [`WorkerPool`](crate::WorkerPool)
//! thread, and the finished result has to travel back to the single
//! reactor thread, which at that moment is parked inside `poll(2)`. A
//! channel alone cannot do that — receiving would block the reactor —
//! so [`CompletionQueue`] pairs a mutex-guarded queue with a *notify*
//! callback the constructor captures (in serve: one byte down the
//! reactor's wakeup pipe). Workers push; the push fires the callback
//! only on the empty→non-empty transition, so a burst of completions
//! costs one wakeup, not one per item; the reactor drains the whole
//! queue once it runs.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A multi-producer queue whose pushes wake a single consumer through a
/// caller-supplied callback instead of blocking it.
///
/// The callback runs on the *producer's* thread while the queue lock is
/// already released, so it must be cheap and non-blocking itself (a
/// pipe write, a flag store) — never the drain.
pub struct CompletionQueue<T> {
    queue: Mutex<VecDeque<T>>,
    notify: Box<dyn Fn() + Send + Sync>,
}

impl<T> CompletionQueue<T> {
    /// A queue whose empty→non-empty transitions invoke `notify`.
    pub fn new(notify: impl Fn() + Send + Sync + 'static) -> Self {
        CompletionQueue {
            queue: Mutex::new(VecDeque::new()),
            notify: Box::new(notify),
        }
    }

    /// Enqueues one completion. Fires the notify callback only when the
    /// queue was empty, coalescing wakeups under bursts: the consumer is
    /// expected to drain fully on each wakeup.
    pub fn push(&self, item: T) {
        let was_empty = {
            let mut queue = self.queue.lock().expect("completion queue poisoned");
            let was_empty = queue.is_empty();
            queue.push_back(item);
            was_empty
        };
        if was_empty {
            (self.notify)();
        }
    }

    /// Takes everything queued so far. The consumer calls this once per
    /// wakeup; completions pushed after the drain trigger their own
    /// notify because the queue passed through empty again.
    pub fn drain(&self) -> Vec<T> {
        let mut queue = self.queue.lock().expect("completion queue poisoned");
        queue.drain(..).collect()
    }

    /// Number of queued completions (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("completion queue poisoned").len()
    }

    /// Whether the queue is currently empty (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for CompletionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn push_notifies_only_on_empty_to_nonempty() {
        let wakeups = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakeups);
        let q = CompletionQueue::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(wakeups.load(Ordering::SeqCst), 1, "burst coalesces");
        assert_eq!(q.drain(), vec![1, 2, 3]);
        assert!(q.is_empty());
        q.push(4);
        assert_eq!(wakeups.load(Ordering::SeqCst), 2, "re-armed after drain");
        assert_eq!(q.drain(), vec![4]);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let q = Arc::new(CompletionQueue::new(|| {}));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..100 {
                        q.push(t * 100 + i);
                    }
                });
            }
        });
        let mut got = q.drain();
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }
}
