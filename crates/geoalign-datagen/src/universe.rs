//! Synthetic universes: paired fine ("zip-code-like") and coarse
//! ("county-like") unit systems over a rectangular region.
//!
//! Substitutes for the paper's real shapefiles (see DESIGN.md): two
//! independent jittered-Voronoi tessellations at different granularities
//! are spatially incongruent exactly the way zips and counties are — a
//! fine cell straddles several coarse cells and vice versa — which is the
//! only geometric property the algorithm and its evaluation exercise.

use geoalign_geom::{Aabb, Point2, VoronoiDiagram};
use geoalign_partition::{DisaggregationMatrix, Overlay, PartitionError, PolygonUnitSystem};
use rand::Rng;

/// A synthetic universe: region bounds, source (fine) and target (coarse)
/// unit systems, their overlay, and the area disaggregation matrix.
#[derive(Debug, Clone)]
pub struct SyntheticUniverse {
    /// Universe name (e.g. `"New York State"`).
    pub name: String,
    /// Region covered.
    pub bounds: Aabb,
    /// Fine, zip-code-like system (the crosswalk's source).
    pub source: PolygonUnitSystem,
    /// Coarse, county-like system (the crosswalk's target).
    pub target: PolygonUnitSystem,
    /// Area disaggregation matrix between the systems (the areal-weighting
    /// ancillary data and the "Area (Sq. Miles)" dataset of §4.1).
    pub area_dm: DisaggregationMatrix,
}

impl SyntheticUniverse {
    /// Generates a universe with approximately `n_source` fine units and
    /// `n_target` coarse units (actual counts are the nearest grid
    /// factorization, reported by the unit systems themselves).
    pub fn generate<R: Rng + ?Sized>(
        name: impl Into<String>,
        bounds: Aabb,
        n_source: usize,
        n_target: usize,
        rng: &mut R,
    ) -> Result<Self, PartitionError> {
        let name = name.into();
        let source = voronoi_system("source", &bounds, n_source, rng)?;
        let target = voronoi_system("target", &bounds, n_target, rng)?;
        let overlay = Overlay::polygons(&source, &target)?;
        let area_dm = overlay.measure_dm("Area (Sq. Miles)")?;
        Ok(Self {
            name,
            bounds,
            source,
            target,
            area_dm,
        })
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.source.len()
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.target.len()
    }
}

impl SyntheticUniverse {
    /// Generates a universe whose unit sizes adapt to a latent density
    /// field: seeds are drawn with probability proportional to
    /// `field^gamma` blended with a uniform floor, so units are small
    /// where the field is dense — mirroring real administrative geography
    /// (urban zip codes are tiny, rural ones huge). This is the structural
    /// property that makes areal weighting fail on real data, so the
    /// dataset catalogs use it.
    pub fn generate_adaptive<F, R>(
        name: impl Into<String>,
        bounds: Aabb,
        n_source: usize,
        n_target: usize,
        field: &F,
        rng: &mut R,
    ) -> Result<Self, PartitionError>
    where
        F: crate::intensity::IntensityField,
        R: Rng + ?Sized,
    {
        let name = name.into();
        // Zips are strongly population-balanced; counties less so.
        let source = adaptive_voronoi_system("source", &bounds, n_source, field, 0.9, 0.15, rng)?;
        let target = adaptive_voronoi_system("target", &bounds, n_target, field, 0.6, 0.30, rng)?;
        let overlay = Overlay::polygons(&source, &target)?;
        let area_dm = overlay.measure_dm("Area (Sq. Miles)")?;
        Ok(Self {
            name,
            bounds,
            source,
            target,
            area_dm,
        })
    }
}

/// Builds a Voronoi unit system from `n` seeds drawn with density
/// proportional to `uniform_mix + (1 - uniform_mix) · field^gamma`
/// (normalized), so cell sizes shrink where the field is dense.
pub fn adaptive_voronoi_system<F, R>(
    name: &str,
    bounds: &Aabb,
    n: usize,
    field: &F,
    gamma: f64,
    uniform_mix: f64,
    rng: &mut R,
) -> Result<PolygonUnitSystem, PartitionError>
where
    F: crate::intensity::IntensityField,
    R: Rng + ?Sized,
{
    let n = n.max(1);
    let max = field.max_intensity().powf(gamma).max(f64::MIN_POSITIVE);
    let mut seeds: Vec<Point2> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let budget = 50_000usize.max(400 * n);
    while seeds.len() < n && attempts < budget {
        attempts += 1;
        let p = Point2::new(
            rng.random_range(bounds.min.x..bounds.max.x),
            rng.random_range(bounds.min.y..bounds.max.y),
        );
        let accept = uniform_mix + (1.0 - uniform_mix) * field.intensity(p).powf(gamma) / max;
        if rng.random::<f64>() <= accept {
            seeds.push(p);
        }
    }
    // Fallback: top up uniformly (only reachable for pathological fields).
    while seeds.len() < n {
        seeds.push(Point2::new(
            rng.random_range(bounds.min.x..bounds.max.x),
            rng.random_range(bounds.min.y..bounds.max.y),
        ));
    }
    let diagram = geoalign_geom::VoronoiDiagram::build(seeds, *bounds)?;
    PolygonUnitSystem::from_voronoi(name, diagram)
}

/// Builds a jittered-grid Voronoi unit system with approximately `n` cells
/// over `bounds` (grid dimensions chosen to respect the aspect ratio).
pub fn voronoi_system<R: Rng + ?Sized>(
    name: &str,
    bounds: &Aabb,
    n: usize,
    rng: &mut R,
) -> Result<PolygonUnitSystem, PartitionError> {
    let n = n.max(1);
    let aspect = bounds.width() / bounds.height().max(1e-12);
    let nx = ((n as f64 * aspect).sqrt().round() as usize).clamp(1, n);
    let ny = (n as f64 / nx as f64).round().max(1.0) as usize;
    let diagram = VoronoiDiagram::jittered_grid(*bounds, nx, ny, 0.45, |_| rng.random())?;
    PolygonUnitSystem::from_voronoi(name, diagram)
}

/// One level of the scalability hierarchy (paper Figure 6): a universe
/// name with its unit counts at full scale.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyLevel {
    /// Universe name as in the paper.
    pub name: &'static str,
    /// Zip-code-level unit count at full scale.
    pub n_source: usize,
    /// County-level unit count at full scale.
    pub n_target: usize,
}

/// The six nested universes of §4.3, with unit counts matching the paper's
/// x-axes (US: 30,238 zips / 3,142 counties; NY: 1,794 / 62; intermediate
/// levels interpolated from Census geography).
pub const HIERARCHY: [HierarchyLevel; 6] = [
    HierarchyLevel {
        name: "New York State",
        n_source: 1_794,
        n_target: 62,
    },
    HierarchyLevel {
        name: "Mid-Atlantic States",
        n_source: 4_990,
        n_target: 150,
    },
    HierarchyLevel {
        name: "Northeast States",
        n_source: 6_963,
        n_target: 217,
    },
    HierarchyLevel {
        name: "Eastern Time Zone States",
        n_source: 14_000,
        n_target: 1_500,
    },
    HierarchyLevel {
        name: "Non-West States",
        n_source: 24_000,
        n_target: 2_700,
    },
    HierarchyLevel {
        name: "United States",
        n_source: 30_238,
        n_target: 3_142,
    },
];

/// Generates the hierarchy at a fractional `scale` of the paper's unit
/// counts (`scale = 1.0` is full size; tests use small scales). Each level
/// covers a region whose area is proportional to its unit count, keeping
/// unit sizes comparable across levels.
pub fn generate_hierarchy<R: Rng + ?Sized>(
    scale: f64,
    rng: &mut R,
) -> Result<Vec<SyntheticUniverse>, PartitionError> {
    let mut out = Vec::with_capacity(HIERARCHY.len());
    for level in HIERARCHY {
        let n_source = ((level.n_source as f64 * scale).round() as usize).max(4);
        let n_target = ((level.n_target as f64 * scale).round() as usize).max(2);
        // Region side proportional to sqrt of unit count.
        let side = (n_source as f64).sqrt();
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(side, side));
        out.push(SyntheticUniverse::generate(
            level.name, bounds, n_source, n_target, rng,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn universe_systems_cover_the_same_region() {
        let mut rng = StdRng::seed_from_u64(11);
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(4.0, 3.0));
        let u = SyntheticUniverse::generate("test", bounds, 60, 8, &mut rng).unwrap();
        let area = bounds.area();
        assert!((u.source.total_measure() - area).abs() < 1e-6);
        assert!((u.target.total_measure() - area).abs() < 1e-6);
        // Counts are approximately as requested.
        assert!(u.n_source() >= 48 && u.n_source() <= 72, "{}", u.n_source());
        assert!(u.n_target() >= 6 && u.n_target() <= 10, "{}", u.n_target());
        // Area DM row sums are the source areas.
        let rows = u.area_dm.matrix().row_sums();
        for (r, a) in rows.iter().zip(u.source.measures()) {
            assert!((r - a).abs() < 1e-9);
        }
    }

    #[test]
    fn incongruence_fine_cells_straddle_coarse_cells() {
        let mut rng = StdRng::seed_from_u64(12);
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(5.0, 5.0));
        let u = SyntheticUniverse::generate("t", bounds, 100, 9, &mut rng).unwrap();
        // The overlay must have strictly more pieces than source units —
        // i.e. at least one source unit intersects several target units.
        assert!(u.area_dm.nnz() > u.n_source());
    }

    #[test]
    fn hierarchy_scales_unit_counts() {
        let mut rng = StdRng::seed_from_u64(13);
        let hs = generate_hierarchy(0.01, &mut rng).unwrap();
        assert_eq!(hs.len(), 6);
        // Monotone growth in source units along the hierarchy.
        for w in hs.windows(2) {
            assert!(w[1].n_source() >= w[0].n_source());
        }
        assert_eq!(hs[0].name, "New York State");
        assert_eq!(hs[5].name, "United States");
        // 1% of 30,238 ≈ 302 units.
        assert!(hs[5].n_source() > 200 && hs[5].n_source() < 400);
    }

    #[test]
    fn determinism_per_seed() {
        let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let a =
            SyntheticUniverse::generate("a", bounds, 20, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        let b =
            SyntheticUniverse::generate("b", bounds, 20, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.n_source(), b.n_source());
        assert_eq!(
            a.source.units()[0].vertices(),
            b.source.units()[0].vertices()
        );
    }
}
