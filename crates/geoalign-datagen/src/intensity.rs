//! Latent spatial intensity fields.
//!
//! The paper's datasets share one underlying geography: people cluster in
//! cities, and most socioeconomic attributes follow the population with
//! attribute-specific distortions. We model this with a latent *population
//! field* (a mixture of Gaussian urban hotspots over a weak uniform
//! background) and derive each synthetic dataset's sampling intensity from
//! it — sharpened for downtown-concentrated attributes (Starbucks,
//! businesses), flattened for diffuse ones (cemeteries), inverted for
//! uninhabited places. This reproduces the *correlation structure* the
//! evaluation narrative depends on.

use geoalign_geom::{Aabb, Point2};
use rand::Rng;

/// A non-negative spatial intensity over a bounded universe.
pub trait IntensityField {
    /// Intensity at a point (non-negative).
    fn intensity(&self, p: Point2) -> f64;

    /// A (not necessarily tight) upper bound of the intensity over the
    /// universe, used by rejection samplers.
    fn max_intensity(&self) -> f64;
}

/// Constant intensity — uniform spatial distribution.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    /// The constant level.
    pub level: f64,
}

impl IntensityField for Uniform {
    fn intensity(&self, _p: Point2) -> f64 {
        self.level
    }
    fn max_intensity(&self) -> f64 {
        self.level
    }
}

/// One Gaussian hotspot of a population field.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Center of the hotspot (a "city").
    pub center: Point2,
    /// Spatial spread.
    pub sigma: f64,
    /// Peak weight (population of the city, in arbitrary units).
    pub weight: f64,
}

/// A mixture of Gaussian hotspots over a uniform background — the latent
/// population field.
#[derive(Debug, Clone)]
pub struct HotspotField {
    hotspots: Vec<Hotspot>,
    background: f64,
    max_cache: f64,
}

impl HotspotField {
    /// Builds the field; `background` is the rural floor intensity.
    pub fn new(hotspots: Vec<Hotspot>, background: f64) -> Self {
        // Upper bound: background plus the sum of peak contributions (the
        // true max is at most this; cheap and safe for rejection sampling).
        let max_cache = background + hotspots.iter().map(|h| h.weight).sum::<f64>();
        Self {
            hotspots,
            background,
            max_cache,
        }
    }

    /// Samples a field with `n` hotspots inside `bounds`: centers uniform,
    /// spreads log-uniform in `[sigma_lo, sigma_hi]`, weights heavy-tailed
    /// (Pareto-like) so a few "big cities" dominate — like real population.
    pub fn random<R: Rng + ?Sized>(
        bounds: &Aabb,
        n: usize,
        sigma_lo: f64,
        sigma_hi: f64,
        background: f64,
        rng: &mut R,
    ) -> Self {
        let mut hotspots = Vec::with_capacity(n);
        for _ in 0..n {
            let center = Point2::new(
                rng.random_range(bounds.min.x..bounds.max.x),
                rng.random_range(bounds.min.y..bounds.max.y),
            );
            let t: f64 = rng.random();
            let sigma = sigma_lo * (sigma_hi / sigma_lo).powf(t);
            // Pareto(α = 1.2) truncated: weight in [1, 100].
            let u: f64 = rng.random_range(0.0001..1.0);
            let weight = (u.powf(-1.0 / 1.2)).min(100.0);
            hotspots.push(Hotspot {
                center,
                sigma,
                weight,
            });
        }
        Self::new(hotspots, background)
    }

    /// The hotspots.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }
}

impl IntensityField for HotspotField {
    fn intensity(&self, p: Point2) -> f64 {
        let mut v = self.background;
        for h in &self.hotspots {
            let d2 = p.dist_sq(h.center);
            v += h.weight * (-0.5 * d2 / (h.sigma * h.sigma)).exp();
        }
        v
    }
    fn max_intensity(&self) -> f64 {
        self.max_cache
    }
}

/// A base field raised to a power: `exponent > 1` sharpens mass into the
/// peaks (downtown-concentrated attributes), `exponent < 1` flattens it
/// (diffuse attributes).
#[derive(Debug, Clone)]
pub struct Power<F> {
    /// Underlying field.
    pub base: F,
    /// Exponent applied point-wise.
    pub exponent: f64,
}

impl<F: IntensityField> IntensityField for Power<F> {
    fn intensity(&self, p: Point2) -> f64 {
        self.base.intensity(p).powf(self.exponent)
    }
    fn max_intensity(&self) -> f64 {
        let m = self.base.max_intensity();
        if self.exponent >= 1.0 {
            m.powf(self.exponent)
        } else {
            // For exponent < 1 the bound still holds when m >= 1; guard the
            // m < 1 case where x^e can exceed m^e at interior... it cannot:
            // x ≤ m ⇒ x^e ≤ m^e for e > 0. Keep m^e.
            m.powf(self.exponent)
        }
    }
}

/// A convex blend of two fields: `alpha · a + (1 − alpha) · b`.
#[derive(Debug, Clone)]
pub struct Blend<A, B> {
    /// First field.
    pub a: A,
    /// Second field.
    pub b: B,
    /// Weight of the first field, in `[0, 1]`.
    pub alpha: f64,
}

impl<A: IntensityField, B: IntensityField> IntensityField for Blend<A, B> {
    fn intensity(&self, p: Point2) -> f64 {
        self.alpha * self.a.intensity(p) + (1.0 - self.alpha) * self.b.intensity(p)
    }
    fn max_intensity(&self) -> f64 {
        self.alpha * self.a.max_intensity() + (1.0 - self.alpha) * self.b.max_intensity()
    }
}

/// The inverse of a base field: high where the base is low
/// ("USA Uninhabited Places" relative to population). Computed as
/// `max − intensity` against the base's bound, plus a small floor.
#[derive(Debug, Clone)]
pub struct Inverse<F> {
    /// Underlying field.
    pub base: F,
    /// Additive floor keeping the inverse strictly positive.
    pub floor: f64,
}

impl<F: IntensityField> IntensityField for Inverse<F> {
    fn intensity(&self, p: Point2) -> f64 {
        (self.base.max_intensity() - self.base.intensity(p)).max(0.0) + self.floor
    }
    fn max_intensity(&self) -> f64 {
        self.base.max_intensity() + self.floor
    }
}

/// Reference-counted dynamic field, letting catalogs share one latent
/// population field across many derived dataset intensities.
#[derive(Clone)]
pub struct SharedField(pub std::rc::Rc<dyn IntensityField>);

impl IntensityField for SharedField {
    fn intensity(&self, p: Point2) -> f64 {
        self.0.intensity(p)
    }
    fn max_intensity(&self) -> f64 {
        self.0.max_intensity()
    }
}

impl std::fmt::Debug for SharedField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedField(max={})", self.0.max_intensity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0))
    }

    #[test]
    fn uniform_is_flat() {
        let u = Uniform { level: 2.5 };
        assert_eq!(u.intensity(Point2::new(1.0, 1.0)), 2.5);
        assert_eq!(u.max_intensity(), 2.5);
    }

    #[test]
    fn hotspot_peaks_at_center() {
        let f = HotspotField::new(
            vec![Hotspot {
                center: Point2::new(5.0, 5.0),
                sigma: 1.0,
                weight: 10.0,
            }],
            0.1,
        );
        let at_center = f.intensity(Point2::new(5.0, 5.0));
        let far = f.intensity(Point2::new(0.0, 0.0));
        assert!(at_center > 10.0 && at_center <= f.max_intensity());
        assert!(far < 0.2);
        // Max bound holds everywhere on a grid.
        for i in 0..20 {
            for j in 0..20 {
                let p = Point2::new(i as f64 * 0.5, j as f64 * 0.5);
                assert!(f.intensity(p) <= f.max_intensity() + 1e-12);
            }
        }
    }

    #[test]
    fn random_field_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let f1 = HotspotField::random(&bounds(), 5, 0.2, 1.0, 0.05, &mut r1);
        let f2 = HotspotField::random(&bounds(), 5, 0.2, 1.0, 0.05, &mut r2);
        let p = Point2::new(3.3, 7.7);
        assert_eq!(f1.intensity(p), f2.intensity(p));
        assert_eq!(f1.hotspots().len(), 5);
    }

    #[test]
    fn power_sharpen_and_flatten() {
        let f = HotspotField::new(
            vec![Hotspot {
                center: Point2::new(5.0, 5.0),
                sigma: 1.0,
                weight: 4.0,
            }],
            1.0,
        );
        let sharp = Power {
            base: f.clone(),
            exponent: 2.0,
        };
        let flat = Power {
            base: f.clone(),
            exponent: 0.5,
        };
        let peak = Point2::new(5.0, 5.0);
        let edge = Point2::new(0.0, 0.0);
        let contrast = |a: f64, b: f64| a / b;
        let base_contrast = contrast(f.intensity(peak), f.intensity(edge));
        let sharp_contrast = contrast(sharp.intensity(peak), sharp.intensity(edge));
        let flat_contrast = contrast(flat.intensity(peak), flat.intensity(edge));
        assert!(sharp_contrast > base_contrast);
        assert!(flat_contrast < base_contrast);
        // Bound respected.
        assert!(sharp.intensity(peak) <= sharp.max_intensity());
        assert!(flat.intensity(peak) <= flat.max_intensity());
    }

    #[test]
    fn blend_interpolates() {
        let a = Uniform { level: 10.0 };
        let b = Uniform { level: 2.0 };
        let m = Blend { a, b, alpha: 0.25 };
        assert!((m.intensity(Point2::ORIGIN) - 4.0).abs() < 1e-12);
        assert!((m.max_intensity() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_flips_the_field() {
        let f = HotspotField::new(
            vec![Hotspot {
                center: Point2::new(5.0, 5.0),
                sigma: 1.0,
                weight: 8.0,
            }],
            0.5,
        );
        let inv = Inverse {
            base: f.clone(),
            floor: 0.01,
        };
        let peak = Point2::new(5.0, 5.0);
        let rural = Point2::new(0.5, 9.5);
        assert!(f.intensity(peak) > f.intensity(rural));
        assert!(inv.intensity(peak) < inv.intensity(rural));
        assert!(inv.intensity(peak) > 0.0);
        assert!(inv.intensity(rural) <= inv.max_intensity());
    }

    #[test]
    fn shared_field_delegates() {
        let f = SharedField(std::rc::Rc::new(Uniform { level: 3.0 }));
        assert_eq!(f.intensity(Point2::ORIGIN), 3.0);
        assert_eq!(f.max_intensity(), 3.0);
        let g = f.clone();
        assert_eq!(g.intensity(Point2::ORIGIN), 3.0);
        assert!(format!("{f:?}").contains("SharedField"));
    }
}
