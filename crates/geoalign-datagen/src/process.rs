//! Spatial point processes.
//!
//! Individual-level records ("restaurants", "accidents", "Starbucks") are
//! drawn from point processes over the universe:
//!
//! * [`sample_intensity`] — inhomogeneous sampling by rejection against an
//!   [`IntensityField`];
//! * [`sample_thomas`] — a Thomas cluster process (Poisson parents,
//!   Gaussian offspring), for attributes that clump beyond what the latent
//!   field explains;
//! * [`sample_hardcore`] — Matérn-style hard-core thinning (dart
//!   throwing), for attributes with minimum spacing such as cemeteries.

use crate::intensity::IntensityField;
use geoalign_geom::{Aabb, Point2};
use rand::Rng;

/// Draws one uniform point in `bounds`.
pub fn uniform_point<R: Rng + ?Sized>(bounds: &Aabb, rng: &mut R) -> Point2 {
    Point2::new(
        rng.random_range(bounds.min.x..bounds.max.x),
        rng.random_range(bounds.min.y..bounds.max.y),
    )
}

/// Samples `n` points with density proportional to `field` over `bounds`,
/// by rejection sampling. The field's [`IntensityField::max_intensity`]
/// must be a valid upper bound or the distribution will be clipped.
pub fn sample_intensity<F: IntensityField, R: Rng + ?Sized>(
    n: usize,
    bounds: &Aabb,
    field: &F,
    rng: &mut R,
) -> Vec<Point2> {
    let max = field.max_intensity().max(f64::MIN_POSITIVE);
    let mut out = Vec::with_capacity(n);
    // Guard against pathological fields (max far above typical values):
    // cap the attempts per point, falling back to uniform after that.
    let max_attempts = 10_000usize;
    while out.len() < n {
        let mut accepted = false;
        for _ in 0..max_attempts {
            let p = uniform_point(bounds, rng);
            let u: f64 = rng.random();
            if u * max <= field.intensity(p) {
                out.push(p);
                accepted = true;
                break;
            }
        }
        if !accepted {
            out.push(uniform_point(bounds, rng));
        }
    }
    out
}

/// Samples a Thomas cluster process: `n_parents` cluster centers with
/// density proportional to `field`, each spawning `Poisson(mean_offspring)`
/// children at Gaussian offsets of spread `sigma` (children falling outside
/// `bounds` are re-drawn). Returns all children.
pub fn sample_thomas<F: IntensityField, R: Rng + ?Sized>(
    n_parents: usize,
    mean_offspring: f64,
    sigma: f64,
    bounds: &Aabb,
    field: &F,
    rng: &mut R,
) -> Vec<Point2> {
    let parents = sample_intensity(n_parents, bounds, field, rng);
    let mut out = Vec::new();
    for parent in parents {
        let k = poisson(mean_offspring, rng);
        for _ in 0..k {
            // Redraw until inside bounds (clusters near the edge shrink,
            // which is fine for synthetic data).
            let mut child;
            let mut tries = 0;
            loop {
                let (dx, dy) = gaussian_pair(rng);
                child = Point2::new(parent.x + sigma * dx, parent.y + sigma * dy);
                tries += 1;
                if bounds.contains(child) || tries > 64 {
                    break;
                }
            }
            if bounds.contains(child) {
                out.push(child);
            }
        }
    }
    out
}

/// Samples up to `n` points with density proportional to `field` under a
/// hard-core constraint: no two points closer than `min_dist`. Dart
/// throwing with a bounded number of attempts; may return fewer than `n`
/// points when the constraint saturates.
pub fn sample_hardcore<F: IntensityField, R: Rng + ?Sized>(
    n: usize,
    min_dist: f64,
    bounds: &Aabb,
    field: &F,
    rng: &mut R,
) -> Vec<Point2> {
    let mut out: Vec<Point2> = Vec::with_capacity(n);
    let max = field.max_intensity().max(f64::MIN_POSITIVE);
    let budget = 200 * n.max(1);
    let d2 = min_dist * min_dist;
    let mut attempts = 0usize;
    while out.len() < n && attempts < budget {
        attempts += 1;
        let p = uniform_point(bounds, rng);
        let u: f64 = rng.random();
        if u * max > field.intensity(p) {
            continue;
        }
        if out.iter().all(|q| q.dist_sq(p) >= d2) {
            out.push(p);
        }
    }
    out
}

/// Draws a Poisson-distributed count: Knuth's method for small means, a
/// clamped normal approximation for large ones.
pub fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let (z, _) = gaussian_pair(rng);
        let v = mean + mean.sqrt() * z;
        v.round().max(0.0) as usize
    }
}

/// Draws a pair of independent standard normal variates (Box–Muller).
pub fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let t = 2.0 * std::f64::consts::PI * u2;
    (r * t.cos(), r * t.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{Hotspot, HotspotField, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0))
    }

    #[test]
    fn uniform_sampling_fills_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = sample_intensity(500, &bounds(), &Uniform { level: 1.0 }, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| bounds().contains(*p)));
        // Roughly uniform: each quadrant gets a fair share.
        let q1 = pts.iter().filter(|p| p.x < 5.0 && p.y < 5.0).count();
        assert!(q1 > 80 && q1 < 170, "quadrant count {q1}");
    }

    #[test]
    fn intensity_sampling_concentrates_at_hotspots() {
        let field = HotspotField::new(
            vec![Hotspot {
                center: Point2::new(2.0, 2.0),
                sigma: 0.5,
                weight: 50.0,
            }],
            0.01,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let pts = sample_intensity(1000, &bounds(), &field, &mut rng);
        let near = pts
            .iter()
            .filter(|p| p.dist(Point2::new(2.0, 2.0)) < 1.5)
            .count();
        assert!(near > 800, "only {near}/1000 near the hotspot");
    }

    #[test]
    fn thomas_clusters_are_tight() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sample_thomas(10, 20.0, 0.1, &bounds(), &Uniform { level: 1.0 }, &mut rng);
        assert!(!pts.is_empty());
        assert!(pts.iter().all(|p| bounds().contains(*p)));
        // Most points have a neighbor within a few sigma — clustering.
        let close_pairs = pts
            .iter()
            .filter(|p| pts.iter().any(|q| *q != **p && q.dist(**p) < 0.3))
            .count();
        assert!(close_pairs as f64 > 0.8 * pts.len() as f64);
    }

    #[test]
    fn hardcore_respects_minimum_distance() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sample_hardcore(100, 0.5, &bounds(), &Uniform { level: 1.0 }, &mut rng);
        assert!(pts.len() > 50);
        for (i, p) in pts.iter().enumerate() {
            for q in &pts[i + 1..] {
                assert!(p.dist(*q) >= 0.5);
            }
        }
    }

    #[test]
    fn hardcore_saturates_gracefully() {
        // Impossible demand: 1000 points at spacing 3 in a 10×10 box.
        let mut rng = StdRng::seed_from_u64(5);
        let pts = sample_hardcore(1000, 3.0, &bounds(), &Uniform { level: 1.0 }, &mut rng);
        assert!(pts.len() < 20);
        assert!(!pts.is_empty());
    }

    #[test]
    fn poisson_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        for &mean in &[0.5, 4.0, 60.0] {
            let n = 3000;
            let total: usize = (0..n).map(|_| poisson(mean, &mut rng)).sum();
            let emp = total as f64 / n as f64;
            assert!(
                (emp - mean).abs() < 0.15 * mean.max(1.0),
                "mean {mean}: empirical {emp}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 5000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sum_sq / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn determinism_per_seed() {
        let f = Uniform { level: 1.0 };
        let a = sample_intensity(50, &bounds(), &f, &mut StdRng::seed_from_u64(42));
        let b = sample_intensity(50, &bounds(), &f, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
