//! Synthetic dataset catalogs mirroring the paper's evaluation data (§4.1).
//!
//! Every dataset of a catalog is sampled from one shared [`TownModel`] —
//! a heavy-tailed settlement structure — with dataset-specific *tilt*
//! (affinity for big towns), *spread* (reach beyond the town core),
//! uniform admixture and a private idiosyncratic component. The catalog
//! therefore reproduces the correlation structure the paper's narrative
//! depends on:
//!
//! * demographic attributes (Population, USPS Residential/Business) track
//!   the settlement mass closely; Business is a sharpened Residential,
//!   keeping the two highly correlated at the source level (the ≈96% of
//!   §4.4.2);
//! * point-of-interest attributes (Starbucks, Shopping Centers, Attorney
//!   Registration, ...) are sparse and skew toward big towns to varying
//!   degrees;
//! * `USA Uninhabited Places` samples the *anti-town* distribution and
//!   `Area (Sq. Miles)` is the Lebesgue measure — both essentially
//!   uncorrelated with the demographic attributes, which is what makes
//!   every dasymetric baseline fail on them (Figure 5b) while GeoAlign
//!   adapts.
//!
//! The unit systems themselves adapt to the settlements (tiny urban zips,
//! huge rural ones), the structural property that makes areal weighting's
//! homogeneity assumption fail at the paper's magnitude.

use crate::towns::TownModel;
use crate::universe::SyntheticUniverse;
use geoalign_geom::{Aabb, Point2, VoronoiDiagram};
use geoalign_partition::{
    aggregate_points, AggregateVector, DisaggregationMatrix, OutsidePolicy, Overlay,
    PartitionError, PolygonUnitSystem, WeightedPoint,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One synthetic dataset: the attribute at all three levels of Figure 4.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Attribute name, matching the paper's dataset labels.
    pub name: String,
    /// Aggregates per source unit.
    pub source: AggregateVector,
    /// Ground-truth aggregates per target unit.
    pub target_truth: Vec<f64>,
    /// Disaggregation matrix between source and target units.
    pub dm: DisaggregationMatrix,
}

/// A universe with its full dataset catalog.
#[derive(Debug, Clone)]
pub struct SyntheticCatalog {
    /// The universe (unit systems + area DM).
    pub universe: SyntheticUniverse,
    /// The datasets, sorted by name (the paper's figure order).
    pub datasets: Vec<SyntheticDataset>,
}

impl SyntheticCatalog {
    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<&SyntheticDataset> {
        self.datasets.iter().find(|d| d.name == name)
    }
}

/// Size knobs for catalog generation.
#[derive(Debug, Clone, Copy)]
pub struct CatalogSize {
    /// Approximate number of source (zip-like) units.
    pub n_source: usize,
    /// Approximate number of target (county-like) units.
    pub n_target: usize,
    /// Point budget of the densest dataset (Population); other datasets
    /// use fixed fractions of it.
    pub base_points: usize,
}

impl CatalogSize {
    /// A small size for tests and CI (sub-second generation).
    pub fn small() -> Self {
        Self {
            n_source: 120,
            n_target: 12,
            base_points: 8_000,
        }
    }

    /// New York State at the paper's unit counts (1,794 zips / 62
    /// counties). The point budget keeps the densest dataset at a few
    /// hundred records per source unit, comparable to the census-backed
    /// real data's effective resolution.
    pub fn paper_ny() -> Self {
        Self {
            n_source: 1_794,
            n_target: 62,
            base_points: 900_000,
        }
    }

    /// United States at the paper's unit counts (30,238 zips / 3,142
    /// counties).
    pub fn paper_us() -> Self {
        Self {
            n_source: 30_238,
            n_target: 3_142,
            base_points: 6_000_000,
        }
    }

    /// A proportionally scaled copy (`scale` in `(0, 1]`).
    pub fn scaled(&self, scale: f64) -> Self {
        Self {
            n_source: ((self.n_source as f64 * scale).round() as usize).max(8),
            n_target: ((self.n_target as f64 * scale).round() as usize).max(3),
            base_points: ((self.base_points as f64 * scale).round() as usize).max(500),
        }
    }
}

/// How a dataset draws from the settlement model.
#[derive(Debug, Clone, Copy)]
enum Style {
    /// Tilted mixture sampling (the default).
    Plain,
    /// The anti-town distribution (uninhabited places).
    Inverse,
    /// Tilted sampling followed by hard-core thinning (cemeteries keep a
    /// minimum spacing).
    HardCore {
        /// Minimum spacing as a fraction of the universe side.
        min_dist_frac: f64,
    },
}

/// Recipe for one point-based dataset.
struct Spec {
    name: &'static str,
    /// Fraction of `base_points` this dataset receives.
    fraction: f64,
    /// Exponent on town mass when choosing a town (1 = follow population,
    /// >1 = favor big towns, <1 = flatten).
    tilt: f64,
    /// Offset spread as a multiple of each town's sigma.
    spread: f64,
    /// Probability of a uniform background point.
    uniform_mix: f64,
    /// Fraction of points drawn from the dataset's private settlement
    /// component (decorrelates references from one another).
    private_mix: f64,
    style: Style,
}

const US_SPECS: &[Spec] = &[
    Spec {
        name: "Accidents",
        fraction: 0.12,
        tilt: 0.85,
        spread: 2.2,
        uniform_mix: 0.05,
        private_mix: 0.08,
        style: Style::Plain,
    },
    // "Area (Sq. Miles)" is inserted separately from the overlay.
    Spec {
        name: "Cemeteries",
        fraction: 0.012,
        tilt: 0.55,
        spread: 2.0,
        uniform_mix: 0.12,
        private_mix: 0.08,
        style: Style::HardCore {
            min_dist_frac: 0.004,
        },
    },
    Spec {
        name: "Population",
        fraction: 1.0,
        tilt: 1.0,
        spread: 1.0,
        uniform_mix: 0.02,
        private_mix: 0.02,
        style: Style::Plain,
    },
    Spec {
        name: "Public Buildings",
        fraction: 0.02,
        tilt: 0.9,
        spread: 0.9,
        uniform_mix: 0.06,
        private_mix: 0.10,
        style: Style::Plain,
    },
    Spec {
        name: "Shopping Centers",
        fraction: 0.015,
        tilt: 1.2,
        spread: 0.9,
        uniform_mix: 0.02,
        private_mix: 0.10,
        style: Style::Plain,
    },
    Spec {
        name: "Starbucks",
        fraction: 0.008,
        tilt: 1.5,
        spread: 0.5,
        uniform_mix: 0.0,
        private_mix: 0.08,
        style: Style::Plain,
    },
    Spec {
        name: "USA Uninhabited Places",
        fraction: 0.02,
        tilt: 1.0,
        spread: 1.0,
        uniform_mix: 0.0,
        private_mix: 0.0,
        style: Style::Inverse,
    },
    Spec {
        name: "USPS Business Address",
        fraction: 0.25,
        tilt: 1.12,
        spread: 0.7,
        uniform_mix: 0.01,
        private_mix: 0.02,
        style: Style::Plain,
    },
    Spec {
        name: "USPS Residential Address",
        fraction: 0.8,
        tilt: 1.0,
        spread: 1.05,
        uniform_mix: 0.03,
        private_mix: 0.02,
        style: Style::Plain,
    },
];

const NY_SPECS: &[Spec] = &[
    Spec {
        name: "Attorney Registration",
        fraction: 0.06,
        tilt: 1.45,
        spread: 0.6,
        uniform_mix: 0.01,
        private_mix: 0.10,
        style: Style::Plain,
    },
    Spec {
        name: "DMV License Facilities",
        fraction: 0.006,
        tilt: 0.7,
        spread: 1.5,
        uniform_mix: 0.20,
        private_mix: 0.12,
        style: Style::Plain,
    },
    Spec {
        name: "Food Service Inspections",
        fraction: 0.18,
        tilt: 1.05,
        spread: 1.0,
        uniform_mix: 0.03,
        private_mix: 0.06,
        style: Style::Plain,
    },
    Spec {
        name: "Liquor Licenses",
        fraction: 0.09,
        tilt: 1.08,
        spread: 1.0,
        uniform_mix: 0.04,
        private_mix: 0.08,
        style: Style::Plain,
    },
    Spec {
        name: "New York State Restaurants",
        fraction: 0.05,
        tilt: 1.05,
        spread: 1.0,
        uniform_mix: 0.03,
        private_mix: 0.07,
        style: Style::Plain,
    },
    Spec {
        name: "Population",
        fraction: 1.0,
        tilt: 1.0,
        spread: 1.0,
        uniform_mix: 0.02,
        private_mix: 0.02,
        style: Style::Plain,
    },
    Spec {
        name: "USPS Business Address",
        fraction: 0.25,
        tilt: 1.12,
        spread: 0.7,
        uniform_mix: 0.01,
        private_mix: 0.02,
        style: Style::Plain,
    },
    Spec {
        name: "USPS Residential Address",
        fraction: 0.8,
        tilt: 1.0,
        spread: 1.05,
        uniform_mix: 0.03,
        private_mix: 0.02,
        style: Style::Plain,
    },
];

/// Builds the paired unit systems over the settlement structure: seeds are
/// drawn from the town mixture itself, so zip-like units are tiny inside
/// towns and sprawling in the countryside, counties less extremely so —
/// the size-density anticorrelation of real administrative geography.
fn universe_from_towns(
    name: &str,
    towns: &TownModel,
    n_source: usize,
    n_target: usize,
    rng: &mut StdRng,
) -> Result<SyntheticUniverse, PartitionError> {
    let bounds = *towns.bounds();
    let zip_seeds = towns.sample(n_source, 0.6, 5.0, 0.40, rng);
    let county_seeds = towns.sample(n_target, 0.75, 6.0, 0.25, rng);
    let source =
        PolygonUnitSystem::from_voronoi("source", VoronoiDiagram::build(zip_seeds, bounds)?)?;
    let target =
        PolygonUnitSystem::from_voronoi("target", VoronoiDiagram::build(county_seeds, bounds)?)?;
    let overlay = Overlay::polygons(&source, &target)?;
    let area_dm = overlay.measure_dm("Area (Sq. Miles)")?;
    Ok(SyntheticUniverse {
        name: name.to_owned(),
        bounds,
        source,
        target,
        area_dm,
    })
}

/// Generates a dataset from its spec over a universe.
fn generate_dataset(
    spec: &Spec,
    universe: &SyntheticUniverse,
    towns: &TownModel,
    base_points: usize,
    rng: &mut StdRng,
) -> Result<SyntheticDataset, PartitionError> {
    let n = ((base_points as f64 * spec.fraction).round() as usize).max(30);
    let side = universe.bounds.width().max(universe.bounds.height());

    let mut points: Vec<Point2> = match spec.style {
        Style::Inverse => towns.sample_inverse(n, rng),
        Style::Plain | Style::HardCore { .. } => {
            let n_private = (n as f64 * spec.private_mix).round() as usize;
            let mut pts =
                towns.sample(n - n_private, spec.tilt, spec.spread, spec.uniform_mix, rng);
            if n_private > 0 {
                // Idiosyncratic settlement component private to the dataset.
                let private = TownModel::generate(universe.bounds, 8, 1.2, 100.0, 0.01, 0.1, rng);
                pts.extend(private.sample(n_private, 1.0, 1.0, 0.1, rng));
            }
            pts
        }
    };
    if let Style::HardCore { min_dist_frac } = spec.style {
        points = thin_hardcore(points, min_dist_frac * side);
    }
    let weighted: Vec<WeightedPoint> = points.into_iter().map(WeightedPoint::unit).collect();
    let agg = aggregate_points(
        spec.name,
        &weighted,
        &universe.source,
        &universe.target,
        OutsidePolicy::Skip,
    )?;
    Ok(SyntheticDataset {
        name: spec.name.to_owned(),
        source: agg.source,
        target_truth: agg.target.values().to_vec(),
        dm: agg.dm,
    })
}

/// Greedy hard-core thinning: keeps each point only when no earlier kept
/// point lies within `min_dist`.
fn thin_hardcore(points: Vec<Point2>, min_dist: f64) -> Vec<Point2> {
    let d2 = min_dist * min_dist;
    let mut kept: Vec<Point2> = Vec::with_capacity(points.len());
    for p in points {
        if kept.iter().all(|q| q.dist_sq(p) >= d2) {
            kept.push(p);
        }
    }
    kept
}

/// The "Area (Sq. Miles)" dataset derived from the universe's overlay.
fn area_dataset(universe: &SyntheticUniverse) -> Result<SyntheticDataset, PartitionError> {
    let dm = universe.area_dm.renamed("Area (Sq. Miles)");
    let source = dm.source_aggregates()?;
    let target_truth = dm.matrix().col_sums();
    Ok(SyntheticDataset {
        name: "Area (Sq. Miles)".to_owned(),
        source,
        target_truth,
        dm,
    })
}

fn build_catalog(
    universe_name: &str,
    specs: &[Spec],
    include_area_dataset: bool,
    size: CatalogSize,
    seed: u64,
) -> Result<SyntheticCatalog, PartitionError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Region side proportional to sqrt(unit count) keeps unit areas stable
    // across scales.
    let side = (size.n_source as f64).sqrt();
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(side, side));
    // Settlement structure: roughly one town per three source units, so
    // towns are sub-unit-scale in the countryside; heavy-tailed masses
    // (Pareto α = 1.05, capped) concentrate a large share of all mass in a
    // few metropolises, as in real demography.
    let n_towns = (size.n_source / 3).max(12);
    let towns = TownModel::generate(bounds, n_towns, 1.05, 20_000.0, 0.0035, 0.02, &mut rng);
    let universe = universe_from_towns(
        universe_name,
        &towns,
        size.n_source,
        size.n_target,
        &mut rng,
    )?;
    let mut datasets = Vec::with_capacity(specs.len() + 1);
    for spec in specs {
        datasets.push(generate_dataset(
            spec,
            &universe,
            &towns,
            size.base_points,
            &mut rng,
        )?);
    }
    if include_area_dataset {
        datasets.push(area_dataset(&universe)?);
    }
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(SyntheticCatalog { universe, datasets })
}

/// Generates the New York State catalog: 8 datasets (paper Figure 5a).
/// Area is available as the universe's measure DM but is not a dataset.
pub fn ny_catalog(size: CatalogSize, seed: u64) -> Result<SyntheticCatalog, PartitionError> {
    build_catalog("New York State", NY_SPECS, false, size, seed)
}

/// Generates the United States catalog: 10 datasets including
/// `Area (Sq. Miles)` (paper Figure 5b).
pub fn us_catalog(size: CatalogSize, seed: u64) -> Result<SyntheticCatalog, PartitionError> {
    build_catalog("United States", US_SPECS, true, size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_linalg::stats::pearson;

    #[test]
    fn ny_catalog_has_eight_datasets() {
        let cat = ny_catalog(CatalogSize::small(), 42).unwrap();
        assert_eq!(cat.datasets.len(), 8);
        let names: Vec<&str> = cat.datasets.iter().map(|d| d.name.as_str()).collect();
        for expected in [
            "Attorney Registration",
            "DMV License Facilities",
            "Food Service Inspections",
            "Liquor Licenses",
            "New York State Restaurants",
            "Population",
            "USPS Business Address",
            "USPS Residential Address",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn us_catalog_has_ten_datasets_including_area() {
        let cat = us_catalog(CatalogSize::small(), 42).unwrap();
        assert_eq!(cat.datasets.len(), 10);
        assert!(cat.get("Area (Sq. Miles)").is_some());
        assert!(cat.get("USA Uninhabited Places").is_some());
        assert!(cat.get("Starbucks").is_some());
    }

    #[test]
    fn datasets_are_internally_consistent() {
        let cat = us_catalog(CatalogSize::small(), 7).unwrap();
        for d in &cat.datasets {
            assert_eq!(d.source.len(), cat.universe.n_source(), "{}", d.name);
            assert_eq!(d.target_truth.len(), cat.universe.n_target(), "{}", d.name);
            // DM marginals match the reported vectors.
            let rows = d.dm.matrix().row_sums();
            for (r, s) in rows.iter().zip(d.source.values()) {
                assert!((r - s).abs() < 1e-9, "{}: row sums", d.name);
            }
            let cols = d.dm.matrix().col_sums();
            for (c, t) in cols.iter().zip(&d.target_truth) {
                assert!((c - t).abs() < 1e-9, "{}: col sums", d.name);
            }
            assert!(d.source.total() > 0.0, "{} is empty", d.name);
        }
    }

    #[test]
    fn correlation_structure_matches_the_paper() {
        let cat = us_catalog(CatalogSize::small().scaled(1.5), 11).unwrap();
        let val = |n: &str| cat.get(n).unwrap().source.values().to_vec();
        let pop = val("Population");
        let res = val("USPS Residential Address");
        let bus = val("USPS Business Address");
        let unin = val("USA Uninhabited Places");
        let area = val("Area (Sq. Miles)");
        // Residential and Business track each other very closely (§4.4.2
        // reports ≈96%).
        let r_rb = pearson(&res, &bus).unwrap();
        assert!(r_rb > 0.9, "residential-business correlation {r_rb}");
        // Population strongly correlates with residential.
        let r_pr = pearson(&pop, &res).unwrap();
        assert!(r_pr > 0.9, "population-residential correlation {r_pr}");
        // Area is weakly or negatively related to population (dense towns
        // sit in tiny zips).
        let r_pa = pearson(&pop, &area).unwrap();
        assert!(r_pa < 0.3, "population-area correlation {r_pa}");
        // Uninhabited places are negatively or weakly correlated with
        // population.
        let r_pu = pearson(&pop, &unin).unwrap();
        assert!(r_pu < 0.25, "population-uninhabited correlation {r_pu}");
    }

    #[test]
    fn unit_sizes_anticorrelate_with_density() {
        let cat = us_catalog(CatalogSize::small(), 21).unwrap();
        let areas = cat.universe.source.measures();
        let pop = cat.get("Population").unwrap().source.values().to_vec();
        // Populous units must not be the big ones: log-area correlates
        // non-positively with population.
        let log_area: Vec<f64> = areas.iter().map(|a| a.ln()).collect();
        let r = pearson(&pop, &log_area).unwrap();
        assert!(r < 0.1, "density-size anticorrelation violated: r = {r}");
    }

    #[test]
    fn determinism_per_seed() {
        let a = ny_catalog(CatalogSize::small(), 99).unwrap();
        let b = ny_catalog(CatalogSize::small(), 99).unwrap();
        assert_eq!(
            a.get("Population").unwrap().source.values(),
            b.get("Population").unwrap().source.values()
        );
        let c = ny_catalog(CatalogSize::small(), 100).unwrap();
        assert_ne!(
            a.get("Population").unwrap().source.values(),
            c.get("Population").unwrap().source.values()
        );
    }

    #[test]
    fn sparse_datasets_are_sparse() {
        let cat = us_catalog(CatalogSize::small(), 3).unwrap();
        let starbucks = cat.get("Starbucks").unwrap();
        let population = cat.get("Population").unwrap();
        assert!(starbucks.source.total() < population.source.total() / 20.0);
        // Sparse datasets have sparser DMs (the §4.3 nnz observation).
        assert!(starbucks.dm.nnz() < population.dm.nnz());
    }
}
