//! Ordered point-batch streams for exercising the `/ingest` path.
//!
//! A [`StreamingScenario`] is a universe plus an *ordered* sequence of
//! point batches, the shape a live feed delivers them in. The stream is
//! deliberately messy in the two ways real feeds are:
//!
//! * **duplicates** — a fraction of every batch re-emits an earlier record
//!   bit-for-bit (same position, same weight), within the batch or from a
//!   previous one, the way at-least-once delivery re-sends; and
//! * **out-of-region points** — a fraction of records falls outside the
//!   universe bounds and must be skipped (the paper's `OutsidePolicy::Skip`
//!   census records whose geocode lands in the ocean).
//!
//! Because the aggregate fold is a split-invariant state merge, feeding the
//! batches one at a time must end bit-identical to feeding
//! [`StreamingScenario::all_points`] in one shot — the invariant the
//! serve-layer streaming tests and `BENCH_ingest` lean on. Generation is
//! deterministic per `(config, seed)`.

use crate::towns::TownModel;
use crate::universe::SyntheticUniverse;
use geoalign_geom::{Aabb, Point2};
use geoalign_partition::{PartitionError, WeightedPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size and messiness knobs for a streaming scenario.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Approximate number of source (fine) units.
    pub n_source: usize,
    /// Approximate number of target (coarse) units.
    pub n_target: usize,
    /// Number of ordered batches in the stream.
    pub n_batches: usize,
    /// Points per batch (before duplication replaces some of them).
    pub points_per_batch: usize,
    /// Fraction of each batch re-emitting an earlier record verbatim.
    pub duplicate_frac: f64,
    /// Fraction of each batch falling outside the universe bounds.
    pub outside_frac: f64,
}

impl StreamingConfig {
    /// A small stream for tests and CI (sub-second generation).
    pub fn small() -> Self {
        Self {
            n_source: 60,
            n_target: 8,
            n_batches: 6,
            points_per_batch: 400,
            duplicate_frac: 0.08,
            outside_frac: 0.05,
        }
    }
}

/// A universe plus the ordered batches a feed would deliver over it.
#[derive(Debug, Clone)]
pub struct StreamingScenario {
    /// The universe the stream's points live in (or just outside of).
    pub universe: SyntheticUniverse,
    /// Attribute name carried by every record.
    pub attribute: String,
    /// The ordered point batches; order matters to a consumer replaying
    /// the feed, even though the aggregate fold itself is order-free.
    pub batches: Vec<Vec<WeightedPoint>>,
    /// Number of generated records lying outside the universe bounds
    /// (a lower bound on what `OutsidePolicy::Skip` must drop — boundary
    /// slivers of the tessellation can reject in-bounds points too).
    pub n_outside: usize,
    /// Number of records that are verbatim re-emissions of earlier ones.
    pub n_duplicates: usize,
}

impl StreamingScenario {
    /// The whole stream concatenated in feed order — what a one-shot
    /// (non-streaming) consumer would aggregate for the exactness check.
    pub fn all_points(&self) -> Vec<WeightedPoint> {
        self.batches.iter().flatten().copied().collect()
    }

    /// Total records across all batches.
    pub fn total_points(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// Generates a streaming scenario: a town-structured universe and
/// `n_batches` ordered batches with duplicate and out-of-region records
/// mixed in. Deterministic per `(config, seed)`.
pub fn streaming_scenario(
    config: StreamingConfig,
    seed: u64,
) -> Result<StreamingScenario, PartitionError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (config.n_source as f64).sqrt().max(4.0);
    let bounds = Aabb::new(Point2::new(0.0, 0.0), Point2::new(side, side));
    let n_towns = (config.n_source / 3).max(6);
    let towns = TownModel::generate(bounds, n_towns, 1.05, 5_000.0, 0.01, 0.05, &mut rng);
    let universe = SyntheticUniverse::generate(
        "streaming",
        bounds,
        config.n_source,
        config.n_target,
        &mut rng,
    )?;

    let mut batches: Vec<Vec<WeightedPoint>> = Vec::with_capacity(config.n_batches);
    // Records already emitted, the duplicate pool: at-least-once delivery
    // can re-send anything the feed has produced so far.
    let mut emitted: Vec<WeightedPoint> = Vec::new();
    let mut n_outside = 0usize;
    let mut n_duplicates = 0usize;

    for _ in 0..config.n_batches {
        let mut batch = Vec::with_capacity(config.points_per_batch);
        for _ in 0..config.points_per_batch {
            let roll: f64 = rng.random::<f64>();
            let p = if roll < config.duplicate_frac && !emitted.is_empty() {
                // Verbatim re-emission — same bits, position and weight.
                n_duplicates += 1;
                emitted[rng.random_range(0..emitted.len())]
            } else if roll < config.duplicate_frac + config.outside_frac {
                // A record geocoded past the region edge, on a random side.
                n_outside += 1;
                let off = side * rng.random_range(0.05..0.5);
                let along = rng.random_range(bounds.min.x..bounds.max.x);
                let pos = match rng.random_range(0..4u32) {
                    0 => Point2::new(bounds.min.x - off, along),
                    1 => Point2::new(bounds.max.x + off, along),
                    2 => Point2::new(along, bounds.min.y - off),
                    _ => Point2::new(along, bounds.max.y + off),
                };
                WeightedPoint {
                    pos,
                    weight: rng.random_range(0.5..2.0),
                }
            } else {
                WeightedPoint {
                    pos: towns.sample(1, 1.0, 1.0, 0.05, &mut rng)[0],
                    weight: rng.random_range(0.5..2.0),
                }
            };
            emitted.push(p);
            batch.push(p);
        }
        batches.push(batch);
    }

    Ok(StreamingScenario {
        universe,
        attribute: "footfall".to_owned(),
        batches,
        n_outside,
        n_duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_agg::AggState;
    use geoalign_exec::Executor;
    use geoalign_partition::{aggregate_points_state, OutsidePolicy};

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let a = streaming_scenario(StreamingConfig::small(), 17).unwrap();
        let b = streaming_scenario(StreamingConfig::small(), 17).unwrap();
        assert_eq!(a.batches, b.batches);
        let c = streaming_scenario(StreamingConfig::small(), 18).unwrap();
        assert_ne!(a.batches, c.batches);
    }

    #[test]
    fn stream_has_duplicates_and_outside_points() {
        let s = streaming_scenario(StreamingConfig::small(), 5).unwrap();
        assert_eq!(s.batches.len(), 6);
        assert_eq!(s.total_points(), 6 * 400);
        assert!(s.n_duplicates > 0, "no duplicate records generated");
        assert!(s.n_outside > 0, "no out-of-region records generated");
        // The counters describe the stream truthfully.
        let outside = s
            .all_points()
            .iter()
            .filter(|p| !s.universe.bounds.contains(p.pos))
            .count();
        assert!(outside >= s.n_outside, "{outside} < {}", s.n_outside);
    }

    #[test]
    fn batchwise_fold_matches_one_shot_bitwise() {
        let s = streaming_scenario(StreamingConfig::small(), 23).unwrap();
        let exec = Executor::global();
        let mut folded =
            AggState::new(&s.attribute, s.universe.n_source(), s.universe.n_target()).unwrap();
        for batch in &s.batches {
            let part = aggregate_points_state(
                &s.attribute,
                batch,
                &s.universe.source,
                &s.universe.target,
                OutsidePolicy::Skip,
                exec,
            )
            .unwrap();
            folded.merge(&part).unwrap();
        }
        let one_shot = aggregate_points_state(
            &s.attribute,
            &s.all_points(),
            &s.universe.source,
            &s.universe.target,
            OutsidePolicy::Skip,
            exec,
        )
        .unwrap();
        assert_eq!(
            folded.encode(),
            one_shot.encode(),
            "batch fold diverged from the one-shot aggregate"
        );
        assert!(folded.skipped() as usize >= s.n_outside);
    }
}
