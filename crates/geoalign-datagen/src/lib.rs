//! Synthetic-data substrate for the GeoAlign reproduction.
//!
//! The paper evaluates on real government data (data.ny.gov, Census, Esri)
//! that is not redistributable here; this crate generates synthetic
//! equivalents that preserve what the evaluation actually exercises — the
//! spatial incongruence of the unit systems and the correlation structure
//! among the attributes (see DESIGN.md §2 for the substitution argument).
//!
//! * [`intensity`] — latent population fields and per-dataset distortions;
//! * [`process`] — inhomogeneous, clustered and hard-core point processes;
//! * [`universe`] — paired fine/coarse Voronoi unit systems, including the
//!   six-level scalability hierarchy of paper Figure 6;
//! * [`streaming`] — ordered point-batch streams (with duplicates and
//!   out-of-region records) for the `/ingest` path;
//! * [`datasets`] — the New York State (8 datasets) and United States
//!   (10 datasets) catalogs of paper §4.1.

#![warn(missing_docs)]

pub mod datasets;
pub mod intensity;
pub mod process;
pub mod streaming;
pub mod towns;
pub mod universe;

pub use datasets::{ny_catalog, us_catalog, CatalogSize, SyntheticCatalog, SyntheticDataset};
pub use streaming::{streaming_scenario, StreamingConfig, StreamingScenario};
pub use towns::{Town, TownModel};
pub use universe::{generate_hierarchy, HierarchyLevel, SyntheticUniverse, HIERARCHY};
