//! The settlement ("town") model: the shared generative structure behind
//! every dataset of a catalog.
//!
//! Real socioeconomic mass is not smooth: people, businesses and
//! points-of-interest sit in discrete settlements whose sizes are heavily
//! skewed (a few metropolises hold much of the total) and whose spatial
//! extent is far smaller than rural administrative units. That structure —
//! not mere smooth density variation — is what makes the homogeneity
//! assumption fail catastrophically in the paper's experiments: a huge
//! rural zip code with one town at its edge gets its mass smeared evenly
//! by areal weighting.
//!
//! A [`TownModel`] is a finite Gaussian mixture: towns with heavy-tailed
//! masses and small spatial spreads, over a faint uniform background.
//! Every dataset samples from the *same* towns with dataset-specific
//! *tilt* (how strongly it favors big towns), *spread* (how far from the
//! town core it reaches) and *uniform admixture* — so attributes correlate
//! through the shared settlement structure exactly like real data.

use geoalign_geom::{Aabb, Point2, PointGrid};
use rand::Rng;

use crate::intensity::IntensityField;
use crate::process::gaussian_pair;

/// One settlement: a clump of mass organised into neighborhoods.
///
/// A town is not a smooth Gaussian blob: its mass concentrates in a
/// handful of *neighborhoods* (sub-centers with heavy-tailed weights).
/// This sub-unit-scale lumpiness is shared by every dataset sampled from
/// the model — people, businesses and points-of-interest sit in the same
/// neighborhoods — and is precisely what makes an area-proportional split
/// of a boundary-straddling unit badly wrong while a population-based
/// split stays accurate.
#[derive(Debug, Clone)]
pub struct Town {
    /// Town center.
    pub center: Point2,
    /// Spatial spread (standard deviation) of the whole town.
    pub sigma: f64,
    /// Total mass (e.g. population) of the town, arbitrary units.
    pub mass: f64,
    /// Neighborhood centers with cumulative sampling weights.
    pub neighborhoods: Vec<(Point2, f64)>,
    /// Spatial spread of a single neighborhood.
    pub sub_sigma: f64,
}

/// A finite Gaussian-mixture settlement model over a bounded universe.
#[derive(Debug, Clone)]
pub struct TownModel {
    towns: Vec<Town>,
    bounds: Aabb,
    /// Fraction of total mass living outside towns, uniformly.
    background_frac: f64,
    grid: PointGrid,
    max_sigma: f64,
}

impl TownModel {
    /// Generates `n_towns` towns: centers uniform over `bounds` (metros
    /// emerge from the mass distribution, not the placement), masses
    /// Pareto(`alpha`) truncated to `[1, mass_cap]`, spreads growing
    /// weakly with mass (big towns are physically larger), scaled so a
    /// typical town is `sigma_frac` of the universe side.
    pub fn generate<R: Rng + ?Sized>(
        bounds: Aabb,
        n_towns: usize,
        alpha: f64,
        mass_cap: f64,
        sigma_frac: f64,
        background_frac: f64,
        rng: &mut R,
    ) -> Self {
        let side = bounds.width().max(bounds.height());
        let base_sigma = sigma_frac * side;
        let mut towns = Vec::with_capacity(n_towns.max(1));
        for _ in 0..n_towns.max(1) {
            let center = Point2::new(
                rng.random_range(bounds.min.x..bounds.max.x),
                rng.random_range(bounds.min.y..bounds.max.y),
            );
            let u: f64 = rng.random_range(1e-6..1.0);
            let mass = u.powf(-1.0 / alpha).min(mass_cap);
            // Area of a settlement grows sublinearly with its population.
            let sigma = base_sigma * mass.powf(0.25);
            // Bigger towns have more neighborhoods; weights heavy-tailed so
            // one or two neighborhoods dominate even a metropolis.
            let k = (1.0 + mass.powf(0.35)).min(16.0) as usize;
            let mut cum = 0.0;
            let mut neighborhoods = Vec::with_capacity(k);
            for _ in 0..k {
                let (dx, dy) = gaussian_pair(rng);
                // Clamp into the universe so the sampling loop (which
                // shrinks its spread toward the neighborhood center) always
                // terminates for edge towns.
                let c = Point2::new(
                    (center.x + sigma * dx).clamp(bounds.min.x, bounds.max.x),
                    (center.y + sigma * dy).clamp(bounds.min.y, bounds.max.y),
                );
                let w: f64 = rng.random_range(1e-4..1.0f64).powf(-1.0 / 1.3).min(50.0);
                cum += w;
                neighborhoods.push((c, cum));
            }
            let sub_sigma = sigma * 0.18;
            towns.push(Town {
                center,
                sigma,
                mass,
                neighborhoods,
                sub_sigma,
            });
        }
        let grid = PointGrid::build(towns.iter().map(|t| t.center).collect(), 4);
        let max_sigma = towns.iter().map(|t| t.sigma).fold(0.0f64, f64::max);
        Self {
            towns,
            bounds,
            background_frac,
            grid,
            max_sigma,
        }
    }

    /// The towns.
    pub fn towns(&self) -> &[Town] {
        &self.towns
    }

    /// The universe bounds.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Samples `n` points from the tilted mixture:
    ///
    /// * with probability `uniform_mix`, a uniform background point;
    /// * otherwise a town chosen with probability proportional to
    ///   `mass^tilt`, then a Gaussian offset of spread `sigma · spread`.
    ///
    /// `tilt > 1` favors big towns (downtown-concentrated attributes),
    /// `tilt < 1` flattens town choice (diffuse attributes). Offsets
    /// falling outside the bounds are redrawn.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        n: usize,
        tilt: f64,
        spread: f64,
        uniform_mix: f64,
        rng: &mut R,
    ) -> Vec<Point2> {
        let cum = self.cumulative_masses(tilt);
        let total = *cum.last().unwrap_or(&0.0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if total <= 0.0 || rng.random::<f64>() < uniform_mix {
                out.push(Point2::new(
                    rng.random_range(self.bounds.min.x..self.bounds.max.x),
                    rng.random_range(self.bounds.min.y..self.bounds.max.y),
                ));
                continue;
            }
            let t = &self.towns[pick_from_cumulative(&cum, rng.random_range(0.0..total))];
            // Pick a neighborhood, then offset within it. Redraw
            // out-of-bounds offsets, shrinking the spread for settlements
            // hugging the boundary so the loop always terminates at a
            // distinct (continuous) point.
            let sub_total = t.neighborhoods.last().map_or(0.0, |&(_, c)| c);
            let center = if sub_total > 0.0 {
                let x = rng.random_range(0.0..sub_total);
                let idx = t
                    .neighborhoods
                    .partition_point(|&(_, c)| c < x)
                    .min(t.neighborhoods.len() - 1);
                t.neighborhoods[idx].0
            } else {
                t.center
            };
            let mut s = t.sub_sigma * spread;
            let mut p;
            let mut tries = 0;
            loop {
                let (dx, dy) = gaussian_pair(rng);
                p = Point2::new(center.x + s * dx, center.y + s * dy);
                if self.bounds.contains(p) {
                    break;
                }
                tries += 1;
                if tries % 8 == 0 {
                    s *= 0.5;
                }
            }
            out.push(p);
        }
        out
    }

    /// Samples `n` points from the *anti-town* distribution: uniform
    /// candidates accepted with probability `floor / (floor + density)`,
    /// so mass concentrates where settlements are absent ("USA Uninhabited
    /// Places").
    pub fn sample_inverse<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point2> {
        // Floor at a low quantile of the density over random probes.
        let mut probes: Vec<f64> = (0..256)
            .map(|_| {
                let p = Point2::new(
                    rng.random_range(self.bounds.min.x..self.bounds.max.x),
                    rng.random_range(self.bounds.min.y..self.bounds.max.y),
                );
                self.intensity(p)
            })
            .collect();
        probes.sort_by(f64::total_cmp);
        let floor = probes[probes.len() / 4].max(1e-9);
        let mut out = Vec::with_capacity(n);
        let budget = 2_000 * n.max(1);
        let mut attempts = 0;
        while out.len() < n && attempts < budget {
            attempts += 1;
            let p = Point2::new(
                rng.random_range(self.bounds.min.x..self.bounds.max.x),
                rng.random_range(self.bounds.min.y..self.bounds.max.y),
            );
            let accept = floor / (floor + self.intensity(p));
            if rng.random::<f64>() < accept {
                out.push(p);
            }
        }
        while out.len() < n {
            out.push(Point2::new(
                rng.random_range(self.bounds.min.x..self.bounds.max.x),
                rng.random_range(self.bounds.min.y..self.bounds.max.y),
            ));
        }
        out
    }

    /// Per-town sampling weights `mass^tilt`, cumulated for inversion
    /// sampling.
    fn cumulative_masses(&self, tilt: f64) -> Vec<f64> {
        let mut acc = 0.0;
        self.towns
            .iter()
            .map(|t| {
                acc += t.mass.powf(tilt);
                acc
            })
            .collect()
    }
}

impl IntensityField for TownModel {
    /// Local mixture density at `p`, evaluated over nearby towns only
    /// (towns beyond `6 max_sigma` contribute negligibly).
    fn intensity(&self, p: Point2) -> f64 {
        let total_mass: f64 = self.towns.iter().map(|t| t.mass).sum();
        let mut v = self.background_frac * total_mass / self.bounds.area().max(1e-12);
        let radius = 9.0 * self.max_sigma;
        for i in self.grid.within_radius(p, radius) {
            let t = &self.towns[i];
            let s2 = t.sigma * t.sigma;
            let d2 = p.dist_sq(t.center);
            v += t.mass / (2.0 * std::f64::consts::PI * s2) * (-0.5 * d2 / s2).exp();
        }
        v
    }

    fn max_intensity(&self) -> f64 {
        // Peak is near some town center; probe all centers and add margin.
        let peak = self
            .towns
            .iter()
            .map(|t| self.intensity(t.center))
            .fold(0.0f64, f64::max);
        peak * 1.5 + 1e-12
    }
}

/// Index of the first cumulative entry `>= x` (binary search).
fn pick_from_cumulative(cum: &[f64], x: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = cum.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cum[mid] < x {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.min(cum.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(20.0, 20.0))
    }

    fn model(seed: u64) -> TownModel {
        let mut rng = StdRng::seed_from_u64(seed);
        TownModel::generate(bounds(), 60, 1.0, 1000.0, 0.004, 0.02, &mut rng)
    }

    #[test]
    fn masses_are_heavy_tailed() {
        // Seed picked so the Pareto draw is comfortably heavy-tailed under
        // the vendored xoshiro-based StdRng stream (top-3 share ≈ 0.65).
        let m = model(9);
        let mut masses: Vec<f64> = m.towns().iter().map(|t| t.mass).collect();
        masses.sort_by(f64::total_cmp);
        let total: f64 = masses.iter().sum();
        let top3: f64 = masses.iter().rev().take(3).sum();
        assert!(
            top3 / total > 0.3,
            "top-3 towns should dominate: {:.2}",
            top3 / total
        );
        assert!(masses.iter().all(|&w| (1.0..=1000.0).contains(&w)));
    }

    #[test]
    fn sampling_concentrates_in_towns() {
        let m = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        let pts = m.sample(2000, 1.0, 1.0, 0.02, &mut rng);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|p| m.bounds().contains(*p)));
        // Most points within a few sigma of some town.
        let near = pts
            .iter()
            .filter(|p| m.towns().iter().any(|t| p.dist(t.center) < 5.0 * t.sigma))
            .count();
        assert!(near > 1800, "{near}/2000 near towns");
    }

    #[test]
    fn tilt_shifts_mass_to_big_towns() {
        let m = model(4);
        let biggest = m
            .towns()
            .iter()
            .max_by(|a, b| a.mass.total_cmp(&b.mass))
            .cloned()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let frac_near_big = |pts: &[Point2]| {
            pts.iter()
                .filter(|p| p.dist(biggest.center) < 6.0 * biggest.sigma)
                .count() as f64
                / pts.len() as f64
        };
        let flat = m.sample(3000, 0.3, 1.0, 0.0, &mut rng);
        let sharp = m.sample(3000, 1.6, 1.0, 0.0, &mut rng);
        assert!(
            frac_near_big(&sharp) > frac_near_big(&flat),
            "tilt must concentrate mass: {} vs {}",
            frac_near_big(&sharp),
            frac_near_big(&flat)
        );
    }

    #[test]
    fn inverse_sampling_avoids_towns() {
        let m = model(6);
        let mut rng = StdRng::seed_from_u64(7);
        let normal = m.sample(1000, 1.0, 1.0, 0.0, &mut rng);
        let inverse = m.sample_inverse(1000, &mut rng);
        let mean_density =
            |pts: &[Point2]| pts.iter().map(|p| m.intensity(*p)).sum::<f64>() / pts.len() as f64;
        assert!(
            mean_density(&inverse) < 0.2 * mean_density(&normal),
            "inverse points should sit in empty space: {} vs {}",
            mean_density(&inverse),
            mean_density(&normal)
        );
    }

    #[test]
    fn intensity_peaks_at_heavy_towns() {
        let m = model(8);
        let biggest = m
            .towns()
            .iter()
            .max_by(|a, b| a.mass.total_cmp(&b.mass))
            .cloned()
            .unwrap();
        let at_big = m.intensity(biggest.center);
        // Far corner should be near-background.
        let far = m.intensity(Point2::new(0.01, 0.01));
        assert!(at_big > 10.0 * far, "{at_big} vs {far}");
        assert!(at_big <= m.max_intensity());
    }

    #[test]
    fn cumulative_pick_is_correct() {
        let cum = [1.0, 3.0, 6.0];
        assert_eq!(pick_from_cumulative(&cum, 0.5), 0);
        assert_eq!(pick_from_cumulative(&cum, 1.0), 0);
        assert_eq!(pick_from_cumulative(&cum, 1.5), 1);
        assert_eq!(pick_from_cumulative(&cum, 5.9), 2);
        assert_eq!(pick_from_cumulative(&cum, 6.0), 2);
    }

    #[test]
    fn determinism_per_seed() {
        let a = model(9);
        let b = model(9);
        assert_eq!(a.towns().len(), b.towns().len());
        assert_eq!(a.towns()[0].center, b.towns()[0].center);
        let pa = a.sample(10, 1.0, 1.0, 0.0, &mut StdRng::seed_from_u64(1));
        let pb = b.sample(10, 1.0, 1.0, 0.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(pa, pb);
    }
}
