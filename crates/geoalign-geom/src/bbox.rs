//! Axis-aligned bounding boxes in the plane.

use crate::point::Point2;

/// An axis-aligned bounding rectangle, stored as min/max corners.
///
/// An `Aabb` may be *empty* (constructed with [`Aabb::empty`]), in which case
/// `min > max` component-wise and the box contains nothing; growing an empty
/// box by a point yields the degenerate box at that point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Aabb {
    /// Box spanning the two corner points (in any order).
    pub fn new(a: Point2, b: Point2) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box: contains no point and is the identity for [`Aabb::union`].
    pub fn empty() -> Self {
        Self {
            min: Point2::new(f64::INFINITY, f64::INFINITY),
            max: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns `true` when the box contains no point.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box containing every point of the iterator; empty for an
    /// empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point2>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.grow(p);
        }
        b
    }

    /// Expands the box (in place) to contain `p`.
    pub fn grow(&mut self, p: Point2) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Box width (zero if empty).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height (zero if empty).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Box area (zero if empty).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter; a common R-tree node cost metric.
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Meaningless for empty boxes.
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Closed-box point containment.
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the closed boxes share at least one point.
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection of the two closed boxes, or `None` when disjoint.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// Returns `true` when `other` lies entirely within `self`.
    pub fn contains_box(&self, other: &Aabb) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Box expanded outward by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Squared distance from `p` to the nearest point of the box (zero when
    /// inside).
    pub fn dist_sq_to_point(&self, p: Point2) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_corners() {
        let b = Aabb::new(Point2::new(2.0, -1.0), Point2::new(-3.0, 4.0));
        assert_eq!(b.min, Point2::new(-3.0, -1.0));
        assert_eq!(b.max, Point2::new(2.0, 4.0));
        assert_eq!(b.width(), 5.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.area(), 25.0);
    }

    #[test]
    fn empty_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point2::ORIGIN));
        let b = Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0));
        assert_eq!(e.union(&b), b);
        let mut g = Aabb::empty();
        g.grow(Point2::new(3.0, 3.0));
        assert!(!g.is_empty());
        assert_eq!(g.min, g.max);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Point2::new(1.0, 2.0),
            Point2::new(-1.0, 5.0),
            Point2::new(0.0, 0.0),
        ];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point2::new(-1.0, 0.0));
        assert_eq!(b.max, Point2::new(1.0, 5.0));
    }

    #[test]
    fn intersection_cases() {
        let a = Aabb::new(Point2::new(0.0, 0.0), Point2::new(2.0, 2.0));
        let b = Aabb::new(Point2::new(1.0, 1.0), Point2::new(3.0, 3.0));
        let c = Aabb::new(Point2::new(5.0, 5.0), Point2::new(6.0, 6.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Point2::new(1.0, 1.0), Point2::new(2.0, 2.0)));
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        // Touching edges count as intersecting (closed boxes).
        let d = Aabb::new(Point2::new(2.0, 0.0), Point2::new(3.0, 2.0));
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn containment() {
        let outer = Aabb::new(Point2::new(0.0, 0.0), Point2::new(10.0, 10.0));
        let inner = Aabb::new(Point2::new(2.0, 2.0), Point2::new(3.0, 3.0));
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(!outer.contains_box(&Aabb::empty()));
        assert!(outer.contains(Point2::new(10.0, 10.0)));
        assert!(!outer.contains(Point2::new(10.1, 10.0)));
    }

    #[test]
    fn distance_to_point() {
        let b = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        assert_eq!(b.dist_sq_to_point(Point2::new(0.5, 0.5)), 0.0);
        assert_eq!(b.dist_sq_to_point(Point2::new(2.0, 0.5)), 1.0);
        assert_eq!(b.dist_sq_to_point(Point2::new(2.0, 2.0)), 2.0);
        assert_eq!(b.dist_sq_to_point(Point2::new(-3.0, 0.5)), 9.0);
    }

    #[test]
    fn corners_ccw() {
        let b = Aabb::new(Point2::new(0.0, 0.0), Point2::new(2.0, 1.0));
        let c = b.corners();
        assert_eq!(c[0], Point2::new(0.0, 0.0));
        assert_eq!(c[1], Point2::new(2.0, 0.0));
        assert_eq!(c[2], Point2::new(2.0, 1.0));
        assert_eq!(c[3], Point2::new(0.0, 1.0));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let b = Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)).inflate(0.5);
        assert_eq!(b.min, Point2::new(-0.5, -0.5));
        assert_eq!(b.max, Point2::new(1.5, 1.5));
    }
}
