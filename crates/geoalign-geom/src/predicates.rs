//! Geometric predicates with floating-point error filtering.
//!
//! The workhorse is [`orient2d`], the signed area of the parallelogram
//! spanned by `b - a` and `c - a`. A naive evaluation can return a wrong
//! *sign* when the true value is near zero; following Shewchuk's adaptive
//! scheme we first evaluate with a forward error bound and fall back to an
//! exact evaluation (via error-free float transformations) only when the
//! filtered result is inconclusive.

use crate::point::Point2;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple `(a, b, c)` turns counter-clockwise (positive signed area).
    CounterClockwise,
    /// The triple turns clockwise (negative signed area).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Error-free transformation: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly (Knuth's TwoSum).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free transformation: returns `(p, e)` with `p = fl(a * b)` and
/// `a * b = p + e` exactly, using FMA.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// Error-free transformation: returns `(s, e)` with `s = fl(a - b)` and
/// `a - b = s + e` exactly.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let s = a - b;
    let bb = a - s;
    let e = (a - (s + bb)) + (bb - b);
    (s, e)
}

/// Grows an exact floating-point expansion by one exact term
/// (Shewchuk's grow-expansion). `exp[..len]` holds the expansion in
/// increasing-magnitude order; returns the new length.
fn grow_expansion(exp: &mut [f64], len: usize, term: f64) -> usize {
    let mut carry = term;
    let mut j = 0usize;
    for i in 0..len {
        let (s, e) = two_sum(exp[i], carry);
        carry = s;
        if e != 0.0 {
            exp[j] = e;
            j += 1;
        }
    }
    if carry != 0.0 {
        exp[j] = carry;
        j += 1;
    }
    j
}

/// Exact sign of the orientation determinant
/// `(a.x - c.x)(b.y - c.y) - (a.y - c.y)(b.x - c.x)` computed from the
/// *original* coordinates: every subtraction and product is expanded with
/// error-free transformations so no rounding is ever discarded.
/// Returns `-1`, `0` or `1`.
fn sign_of_orient_exact(a: Point2, b: Point2, c: Point2) -> i32 {
    let (axh, axl) = two_diff(a.x, c.x);
    let (ayh, ayl) = two_diff(a.y, c.y);
    let (bxh, bxl) = two_diff(b.x, c.x);
    let (byh, byl) = two_diff(b.y, c.y);

    // (axh + axl)(byh + byl) - (ayh + ayl)(bxh + bxl): 8 exact products,
    // each split into hi + lo → up to 16 exact terms.
    let mut terms: [f64; 16] = [0.0; 16];
    let mut k = 0usize;
    let push_prod = |terms: &mut [f64; 16], k: &mut usize, x: f64, y: f64, sign: f64| {
        let (p, e) = two_product(x, y);
        terms[*k] = sign * p;
        terms[*k + 1] = sign * e;
        *k += 2;
    };
    push_prod(&mut terms, &mut k, axh, byh, 1.0);
    push_prod(&mut terms, &mut k, axh, byl, 1.0);
    push_prod(&mut terms, &mut k, axl, byh, 1.0);
    push_prod(&mut terms, &mut k, axl, byl, 1.0);
    push_prod(&mut terms, &mut k, ayh, bxh, -1.0);
    push_prod(&mut terms, &mut k, ayh, bxl, -1.0);
    push_prod(&mut terms, &mut k, ayl, bxh, -1.0);
    push_prod(&mut terms, &mut k, ayl, bxl, -1.0);

    // Sum the exact terms into an expansion; the largest-magnitude
    // component carries the sign.
    let mut exp: [f64; 32] = [0.0; 32];
    let mut len = 0usize;
    for &t in &terms[..k] {
        if t != 0.0 {
            len = grow_expansion(&mut exp, len, t);
        }
    }
    if len == 0 {
        0
    } else {
        let m = exp[len - 1];
        if m > 0.0 {
            1
        } else if m < 0.0 {
            -1
        } else {
            0
        }
    }
}

/// Relative error bound coefficient for the orient2d filter
/// (Shewchuk, "Adaptive Precision Floating-Point Arithmetic").
const ORIENT2D_FILTER: f64 = (3.0 + 16.0 * f64::EPSILON) * f64::EPSILON;

/// Signed area of the parallelogram `(b - a) × (c - a)`.
///
/// Positive when `(a, b, c)` is a counter-clockwise turn. The returned
/// *value* is the straightforward floating-point evaluation; only the
/// companion [`orient2d`] guarantees a correct sign.
#[inline]
pub fn signed_area2(a: Point2, b: Point2, c: Point2) -> f64 {
    (b - a).cross(c - a)
}

/// Robust orientation test for the ordered triple `(a, b, c)`.
///
/// Uses a floating-point filter and falls back to exact arithmetic when the
/// filtered value cannot be trusted, so the result is the orientation of the
/// *exact* points.
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return classify(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return classify(det);
        }
        -(detleft + detright)
    } else {
        return classify(det);
    };

    let errbound = ORIENT2D_FILTER * detsum;
    if det >= errbound || -det >= errbound {
        return classify(det);
    }

    // Filter failed: decide exactly.
    match sign_of_orient_exact(a, b, c) {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

#[inline]
fn classify(det: f64) -> Orientation {
    if det > 0.0 {
        Orientation::CounterClockwise
    } else if det < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Returns `true` when point `p` lies strictly inside the (closed) axis
/// range spanned by `a` and `b` on both coordinates — a cheap bounding test
/// used before exact on-segment checks.
#[inline]
pub fn in_segment_bbox(p: Point2, a: Point2, b: Point2) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Tests whether `p` lies on the closed segment `[a, b]` (exactly).
pub fn on_segment(p: Point2, a: Point2, b: Point2) -> bool {
    orient2d(a, b, p) == Orientation::Collinear && in_segment_bbox(p, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_orientations() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, c, b), Orientation::Clockwise);
        assert_eq!(
            orient2d(a, b, Point2::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn near_degenerate_is_decided_exactly() {
        // Points nearly collinear: c on the line from a to b up to the last
        // ulp. Constructed so the naive determinant is tiny and noisy.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1e17, 1e17);
        // Exactly on the line y = x.
        let c = Point2::new(12345.0, 12345.0);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
        // One ulp above the line.
        let c_up = Point2::new(12345.0, 12345.0f64.next_up());
        assert_eq!(orient2d(a, b, c_up), Orientation::CounterClockwise);
        let c_dn = Point2::new(12345.0, 12345.0f64.next_down());
        assert_eq!(orient2d(a, b, c_dn), Orientation::Clockwise);
    }

    #[test]
    fn classic_shewchuk_failure_case() {
        // A grid of perturbed points around (0.5, 0.5) vs the segment from
        // (12, 12) to (24, 24): naive arithmetic misclassifies some; the
        // robust predicate must be antisymmetric and consistent.
        let b = Point2::new(12.0, 12.0);
        let c = Point2::new(24.0, 24.0);
        for i in 0..32 {
            for j in 0..32 {
                let p = Point2::new(0.5 + i as f64 * f64::EPSILON, 0.5 + j as f64 * f64::EPSILON);
                let o1 = orient2d(p, b, c);
                let o2 = orient2d(p, c, b);
                // Antisymmetry under swapping b and c.
                match o1 {
                    Orientation::CounterClockwise => assert_eq!(o2, Orientation::Clockwise),
                    Orientation::Clockwise => assert_eq!(o2, Orientation::CounterClockwise),
                    Orientation::Collinear => assert_eq!(o2, Orientation::Collinear),
                }
                // Exact classification: p is on the line y = x iff i == j.
                if i == j {
                    assert_eq!(o1, Orientation::Collinear, "i={i} j={j}");
                } else {
                    assert_ne!(o1, Orientation::Collinear, "i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn on_segment_tests() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(4.0, 4.0);
        assert!(on_segment(Point2::new(2.0, 2.0), a, b));
        assert!(on_segment(a, a, b));
        assert!(on_segment(b, a, b));
        assert!(!on_segment(Point2::new(5.0, 5.0), a, b));
        assert!(!on_segment(Point2::new(2.0, 2.1), a, b));
    }

    #[test]
    fn two_sum_exactness() {
        // 1e16 + 1 is not representable (ulp spacing is 2 there); the
        // rounded sum drops the 1 and the error term recovers it exactly.
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
        // two_diff is exact the same way.
        let (d, de) = two_diff(1e16, 1.0);
        assert_eq!(d, 1e16);
        assert_eq!(de, -1.0);
    }

    #[test]
    fn two_product_exactness() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 + f64::EPSILON;
        let (p, e) = two_product(a, b);
        // a*b = 1 + 2eps + eps^2; p misses the eps^2 term.
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(e, f64::EPSILON * f64::EPSILON);
    }
}
