//! Closed intervals on the real line — the 1-D units of the aggregate
//! interpolation problem (paper §2.2, Eq. 3; Figure 3's histogram bins).

use crate::error::GeomError;

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Builds the interval `[lo, hi]`; fails when `lo > hi` or either bound
    /// is not finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, GeomError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(GeomError::NonFiniteCoordinate);
        }
        if lo > hi {
            return Err(GeomError::InvertedBounds { axis: 0 });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval length (`hi - lo`); the 1-D analogue of area.
    #[inline]
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    #[inline]
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Closed containment of a point.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Returns `true` when the closed intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection with positive length, or `None` when disjoint or
    /// touching only at a point.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Fraction of `self` covered by `other` (in `[0, 1]`); zero-length
    /// intervals report 0.
    pub fn overlap_fraction(&self, other: &Interval) -> f64 {
        if self.length() <= 0.0 {
            return 0.0;
        }
        self.intersection(other)
            .map_or(0.0, |i| i.length() / self.length())
    }
}

/// Splits `[lo, hi]` into `n` equal-width contiguous intervals.
pub fn equal_bins(lo: f64, hi: f64, n: usize) -> Result<Vec<Interval>, GeomError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let span = Interval::new(lo, hi)?;
    let w = span.length() / n as f64;
    (0..n)
        .map(|i| {
            let a = lo + w * i as f64;
            let b = if i + 1 == n {
                hi
            } else {
                lo + w * (i + 1) as f64
            };
            Interval::new(a, b)
        })
        .collect()
}

/// Splits `[lo, hi]` at the given interior breakpoints (must be strictly
/// increasing and inside the range), producing contiguous intervals.
pub fn bins_at(lo: f64, hi: f64, breaks: &[f64]) -> Result<Vec<Interval>, GeomError> {
    let mut edges = Vec::with_capacity(breaks.len() + 2);
    edges.push(lo);
    edges.extend_from_slice(breaks);
    edges.push(hi);
    let mut out = Vec::with_capacity(edges.len() - 1);
    for w in edges.windows(2) {
        out.push(Interval::new(w[0], w[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(Interval::new(0.0, 1.0).is_ok());
        assert!(Interval::new(1.0, 1.0).is_ok()); // degenerate allowed
        assert_eq!(
            Interval::new(2.0, 1.0),
            Err(GeomError::InvertedBounds { axis: 0 })
        );
        assert_eq!(
            Interval::new(f64::NAN, 1.0),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn basic_queries() {
        let i = Interval::new(1.0, 3.0).unwrap();
        assert_eq!(i.length(), 2.0);
        assert_eq!(i.center(), 2.0);
        assert!(i.contains(1.0) && i.contains(3.0) && i.contains(2.0));
        assert!(!i.contains(0.999) && !i.contains(3.001));
    }

    #[test]
    fn intersections() {
        let a = Interval::new(0.0, 2.0).unwrap();
        let b = Interval::new(1.0, 3.0).unwrap();
        let c = Interval::new(2.0, 4.0).unwrap();
        let d = Interval::new(5.0, 6.0).unwrap();
        assert_eq!(a.intersection(&b), Some(Interval::new(1.0, 2.0).unwrap()));
        assert!(a.intersects(&c)); // touching
        assert!(a.intersection(&c).is_none()); // but zero-length
        assert!(!a.intersects(&d));
        assert_eq!(a.overlap_fraction(&b), 0.5);
        assert_eq!(a.overlap_fraction(&d), 0.0);
    }

    #[test]
    fn equal_bins_partition() {
        let bins = equal_bins(0.0, 10.0, 4).unwrap();
        assert_eq!(bins.len(), 4);
        let total: f64 = bins.iter().map(|b| b.length()).sum();
        assert!((total - 10.0).abs() < 1e-12);
        // Contiguity.
        for w in bins.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo());
        }
        assert_eq!(bins[0].lo(), 0.0);
        assert_eq!(bins[3].hi(), 10.0);
        assert!(equal_bins(0.0, 1.0, 0).unwrap().is_empty());
    }

    #[test]
    fn bins_at_breakpoints() {
        let bins = bins_at(0.0, 100.0, &[18.0, 65.0]).unwrap();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], Interval::new(0.0, 18.0).unwrap());
        assert_eq!(bins[1], Interval::new(18.0, 65.0).unwrap());
        assert_eq!(bins[2], Interval::new(65.0, 100.0).unwrap());
        // Unordered breakpoints produce an inverted interval error.
        assert!(bins_at(0.0, 10.0, &[7.0, 3.0]).is_err());
    }
}
