//! Computational-geometry substrate for the GeoAlign reproduction.
//!
//! The aggregate interpolation problem (paper §2) is defined over *unit
//! systems*: partitions of an n-dimensional universe into disjoint units.
//! This crate supplies everything the partition layer needs to realize such
//! systems geometrically:
//!
//! * [`Point2`], robust [`predicates`], [`Aabb`] — planar primitives;
//! * [`Polygon`] — the simple polygons of the 2-D problem (paper Eq. 2),
//!   with area, centroid, and point containment;
//! * [`clip`] — Sutherland–Hodgman clipping, the engine behind both spatial
//!   overlay (source ∩ target intersection units) and Voronoi construction;
//! * [`convex_hull`] — monotone-chain hulls;
//! * [`VoronoiDiagram`] — bounded Voronoi tessellations used to synthesize
//!   zip-code-like and county-like unit systems;
//! * [`PointGrid`] and [`RTree`] — spatial indexes for nearest-neighbor and
//!   bbox-overlap queries;
//! * [`Interval`] and [`NdBox`] — 1-D and n-dimensional units (paper Eq. 3
//!   and §2.2 "other dimensions").
//!
//! All coordinates are `f64`. Orientation-critical code paths route through
//! the exact predicate [`predicates::orient2d`].

#![warn(missing_docs)]

pub mod bbox;
pub mod clip;
pub mod convex;
pub mod error;
pub mod grid;
pub mod interval;
pub mod ndbox;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod rtree;
pub mod triangulate;
pub mod voronoi;
pub mod wkt;

pub use bbox::Aabb;
pub use convex::convex_hull;
pub use error::GeomError;
pub use grid::PointGrid;
pub use interval::Interval;
pub use ndbox::NdBox;
pub use point::Point2;
pub use polygon::Polygon;
pub use rtree::RTree;
pub use voronoi::VoronoiDiagram;
