//! Polygon clipping against convex regions.
//!
//! The overlay step of aggregate interpolation intersects source units with
//! target units. GeoAlign's synthetic universes are Voronoi tessellations,
//! whose cells are convex, so convex–convex clipping (Sutherland–Hodgman)
//! covers every overlay the library performs. The subject polygon may be
//! arbitrary (clipping a concave subject against a convex clip region is
//! exact as long as the result is connected, which holds for convex
//! subjects and is how the library uses it).

use crate::point::Point2;
use crate::polygon::{signed_area_of, Polygon};

/// A half-plane `{ p : n · p <= c }` described by an inward... outward normal
/// `n` and offset `c`; points with `n · p <= c` are kept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// Outward normal of the boundary line.
    pub normal: Point2,
    /// Offset: the boundary is `{ p : normal · p = offset }`.
    pub offset: f64,
}

impl HalfPlane {
    /// Half-plane of points at least as close to `a` as to `b` (the
    /// Voronoi dominance region of `a` over `b`): the perpendicular
    /// bisector keeps the `a` side.
    pub fn bisector(a: Point2, b: Point2) -> Self {
        let normal = b - a;
        let mid = a.midpoint(b);
        HalfPlane {
            normal,
            offset: normal.dot(mid),
        }
    }

    /// Half-plane keeping the left side of the directed edge `a -> b`
    /// (the interior side for a counter-clockwise ring).
    pub fn left_of_edge(a: Point2, b: Point2) -> Self {
        // Left of a->b means cross(b-a, p-a) >= 0, i.e. outward normal is
        // the clockwise perpendicular of (b - a).
        let d = b - a;
        let normal = Point2::new(d.y, -d.x);
        HalfPlane {
            normal,
            offset: normal.dot(a),
        }
    }

    /// Signed distance-like value: negative inside, positive outside
    /// (not normalized by `|normal|`).
    #[inline]
    pub fn excess(&self, p: Point2) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// Returns `true` when `p` is inside the (closed) half-plane.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.excess(p) <= 0.0
    }
}

/// Clips a vertex ring against one half-plane (one Sutherland–Hodgman pass),
/// appending the result to `out` (cleared first). Returns the number of
/// vertices kept.
pub fn clip_ring_halfplane(ring: &[Point2], hp: &HalfPlane, out: &mut Vec<Point2>) -> usize {
    out.clear();
    let n = ring.len();
    if n == 0 {
        return 0;
    }
    let mut prev = ring[n - 1];
    let mut prev_excess = hp.excess(prev);
    for &cur in ring {
        let cur_excess = hp.excess(cur);
        let cur_in = cur_excess <= 0.0;
        let prev_in = prev_excess <= 0.0;
        if cur_in {
            if !prev_in {
                out.push(intersect_at(prev, cur, prev_excess, cur_excess));
            }
            out.push(cur);
        } else if prev_in {
            out.push(intersect_at(prev, cur, prev_excess, cur_excess));
        }
        prev = cur;
        prev_excess = cur_excess;
    }
    out.len()
}

/// Point where the segment `prev -> cur` crosses the half-plane boundary,
/// given the precomputed excesses at the endpoints (opposite signs).
#[inline]
fn intersect_at(prev: Point2, cur: Point2, e_prev: f64, e_cur: f64) -> Point2 {
    let t = e_prev / (e_prev - e_cur);
    prev.lerp(cur, t.clamp(0.0, 1.0))
}

/// Clips `subject` against the convex polygon `clip` with the
/// Sutherland–Hodgman algorithm.
///
/// Returns `None` when the intersection is empty or degenerates to a point
/// or segment (zero area). `clip` must be convex; `subject` should be convex
/// or at least produce a connected intersection with `clip`.
pub fn clip_convex(subject: &Polygon, clip: &Polygon) -> Option<Polygon> {
    debug_assert!(clip.is_convex(), "clip polygon must be convex");
    if !subject.bbox().intersects(clip.bbox()) {
        return None;
    }
    let mut ring: Vec<Point2> = subject.vertices().to_vec();
    let mut scratch: Vec<Point2> = Vec::with_capacity(ring.len() + 4);
    for (a, b) in clip.edges() {
        let hp = HalfPlane::left_of_edge(a, b);
        if clip_ring_halfplane(&ring, &hp, &mut scratch) == 0 {
            return None;
        }
        std::mem::swap(&mut ring, &mut scratch);
    }
    ring_to_polygon(ring)
}

/// Clips a vertex ring by a sequence of half-planes, returning the resulting
/// polygon (used by the Voronoi construction). Returns `None` when empty or
/// degenerate.
pub fn clip_ring_halfplanes<I>(start: Vec<Point2>, halfplanes: I) -> Option<Polygon>
where
    I: IntoIterator<Item = HalfPlane>,
{
    let mut ring = start;
    let mut scratch = Vec::with_capacity(ring.len() + 4);
    for hp in halfplanes {
        if clip_ring_halfplane(&ring, &hp, &mut scratch) == 0 {
            return None;
        }
        std::mem::swap(&mut ring, &mut scratch);
    }
    ring_to_polygon(ring)
}

/// Converts a raw clipped ring into a validated polygon, filtering
/// degenerate output (area below an absolute epsilon scaled to the ring's
/// extent).
fn ring_to_polygon(ring: Vec<Point2>) -> Option<Polygon> {
    if ring.len() < 3 {
        return None;
    }
    let area = signed_area_of(&ring).abs();
    // Relative degeneracy threshold: slivers thinner than ~1e-12 of the
    // bbox scale are clipping noise, not real intersection units.
    let bbox = crate::bbox::Aabb::from_points(ring.iter().copied());
    let scale = bbox.width().max(bbox.height()).max(1e-300);
    if area <= 1e-12 * scale * scale {
        return None;
    }
    Polygon::new(ring).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rect(Point2::new(x0, y0), Point2::new(x1, y1)).unwrap()
    }

    #[test]
    fn halfplane_bisector_sides() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        let hp = HalfPlane::bisector(a, b);
        assert!(hp.contains(a));
        assert!(!hp.contains(b));
        assert!(hp.contains(Point2::new(1.0, 5.0))); // boundary
    }

    #[test]
    fn halfplane_left_of_edge() {
        let hp = HalfPlane::left_of_edge(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
        assert!(hp.contains(Point2::new(0.5, 1.0)));
        assert!(!hp.contains(Point2::new(0.5, -1.0)));
        assert!(hp.contains(Point2::new(0.5, 0.0)));
    }

    #[test]
    fn overlapping_squares() {
        let a = square(0.0, 0.0, 2.0, 2.0);
        let b = square(1.0, 1.0, 3.0, 3.0);
        let i = clip_convex(&a, &b).unwrap();
        assert!((i.area() - 1.0).abs() < 1e-12);
        let c = i.centroid();
        assert!((c.x - 1.5).abs() < 1e-12 && (c.y - 1.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_squares_yield_none() {
        let a = square(0.0, 0.0, 1.0, 1.0);
        let b = square(2.0, 2.0, 3.0, 3.0);
        assert!(clip_convex(&a, &b).is_none());
        // Touching along an edge: zero-area intersection filtered out.
        let c = square(1.0, 0.0, 2.0, 1.0);
        assert!(clip_convex(&a, &c).is_none());
    }

    #[test]
    fn containment_returns_inner() {
        let outer = square(0.0, 0.0, 10.0, 10.0);
        let inner = square(2.0, 2.0, 3.0, 3.0);
        let i = clip_convex(&inner, &outer).unwrap();
        assert!((i.area() - 1.0).abs() < 1e-12);
        let j = clip_convex(&outer, &inner).unwrap();
        assert!((j.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_vs_square() {
        let tri = Polygon::new(vec![
            Point2::new(-1.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(1.0, 4.0),
        ])
        .unwrap();
        let sq = square(0.0, 0.0, 2.0, 2.0);
        let i = clip_convex(&tri, &sq).unwrap();
        // Intersection area computed analytically:
        // The triangle has vertices (-1,0),(3,0),(1,4); inside [0,2]^2 the
        // region is bounded by y=0, x=0, x=2, y=2 and the two slanted edges
        // y = 2(x+1) (left) and y = -2(x-3) (right). At y<=2, left edge is at
        // x = y/2 - 1 <= 0 for y <= 2, so x=0 cut only matters below y=2 ...
        // easier: area = integral over y in [0,2] of width(y).
        // width(y) = min(2, 3 - y/2) - max(0, y/2 - 1) = 2 - 0 = 2 for y<=2
        // since 3 - y/2 >= 2 for y <= 2 and y/2 - 1 <= 0 for y <= 2.
        assert!((i.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clip_area_never_exceeds_either_input() {
        let a = Polygon::regular(Point2::new(0.3, 0.2), 1.0, 9).unwrap();
        let b = Polygon::regular(Point2::new(0.8, -0.1), 0.7, 5).unwrap();
        if let Some(i) = clip_convex(&a, &b) {
            assert!(i.area() <= a.area() + 1e-12);
            assert!(i.area() <= b.area() + 1e-12);
            assert!(i.is_convex());
        } else {
            panic!("overlapping polygons must intersect");
        }
    }

    #[test]
    fn identical_polygons_clip_to_themselves() {
        let a = Polygon::regular(Point2::ORIGIN, 2.0, 6).unwrap();
        let i = clip_convex(&a, &a).unwrap();
        assert!((i.area() - a.area()).abs() < 1e-9);
    }

    #[test]
    fn halfplane_sequence_builds_cell() {
        // Clip the unit square to the quadrant x >= 0.5, y >= 0.5 via
        // half-planes (keep side is <= 0, so flip normals).
        let start = square(0.0, 0.0, 1.0, 1.0).into_vertices();
        let hps = vec![
            HalfPlane {
                normal: Point2::new(-1.0, 0.0),
                offset: -0.5,
            }, // x >= 0.5
            HalfPlane {
                normal: Point2::new(0.0, -1.0),
                offset: -0.5,
            }, // y >= 0.5
        ];
        let p = clip_ring_halfplanes(start, hps).unwrap();
        assert!((p.area() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_halfplane_clip_returns_none() {
        let start = square(0.0, 0.0, 1.0, 1.0).into_vertices();
        let hps = vec![HalfPlane {
            normal: Point2::new(1.0, 0.0),
            offset: -1.0,
        }]; // x <= -1
        assert!(clip_ring_halfplanes(start, hps).is_none());
    }

    #[test]
    fn concave_subject_convex_clip() {
        // L-shape clipped by a square covering its notch region.
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        let clip = square(0.0, 0.0, 1.0, 1.0);
        let i = clip_convex(&l, &clip).unwrap();
        assert!((i.area() - 1.0).abs() < 1e-12);
    }
}
