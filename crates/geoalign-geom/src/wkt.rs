//! Well-Known Text (WKT) interchange for points and polygons.
//!
//! Unit-system geometry usually arrives as shapefile exports; WKT is the
//! lowest-common-denominator text form (`POINT (x y)`,
//! `POLYGON ((x y, x y, ...))`). This module reads and writes the subset
//! the library models: single-ring polygons without holes.

use crate::error::GeomError;
use crate::point::Point2;
use crate::polygon::Polygon;
use std::fmt::Write as _;

/// Errors raised by WKT parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum WktError {
    /// The geometry tag was not recognized or not supported.
    UnsupportedGeometry {
        /// The offending tag.
        tag: String,
    },
    /// A coordinate failed to parse.
    BadCoordinate {
        /// The offending token.
        token: String,
    },
    /// Parentheses or commas were malformed.
    Malformed {
        /// Description of the problem.
        what: &'static str,
    },
    /// Polygons with interior rings (holes) are not supported.
    HolesUnsupported,
    /// The parsed ring failed polygon validation.
    InvalidPolygon(GeomError),
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktError::UnsupportedGeometry { tag } => {
                write!(f, "unsupported WKT geometry '{tag}'")
            }
            WktError::BadCoordinate { token } => write!(f, "bad coordinate '{token}'"),
            WktError::Malformed { what } => write!(f, "malformed WKT: {what}"),
            WktError::HolesUnsupported => write!(f, "polygons with holes are not supported"),
            WktError::InvalidPolygon(e) => write!(f, "invalid polygon ring: {e}"),
        }
    }
}

impl std::error::Error for WktError {}

/// Renders a point as `POINT (x y)`.
pub fn point_to_wkt(p: Point2) -> String {
    format!("POINT ({} {})", p.x, p.y)
}

/// Renders a polygon as `POLYGON ((x y, ...))`, closing the ring
/// explicitly as WKT convention requires.
pub fn polygon_to_wkt(poly: &Polygon) -> String {
    let mut out = String::from("POLYGON ((");
    for (i, v) in poly.vertices().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", v.x, v.y);
    }
    // Close the ring.
    let first = poly.vertices()[0];
    let _ = write!(out, ", {} {}))", first.x, first.y);
    out
}

/// Parses `POINT (x y)`.
pub fn point_from_wkt(text: &str) -> Result<Point2, WktError> {
    let (tag, body) = split_tag(text)?;
    if !tag.eq_ignore_ascii_case("POINT") {
        return Err(WktError::UnsupportedGeometry {
            tag: tag.to_owned(),
        });
    }
    let inner = strip_parens(body)?;
    parse_coord(inner.trim())
}

/// Parses `POLYGON ((x y, x y, ...))` (single ring; holes are rejected).
pub fn polygon_from_wkt(text: &str) -> Result<Polygon, WktError> {
    let (tag, body) = split_tag(text)?;
    if !tag.eq_ignore_ascii_case("POLYGON") {
        return Err(WktError::UnsupportedGeometry {
            tag: tag.to_owned(),
        });
    }
    let outer = strip_parens(body)?;
    // outer now holds one or more parenthesized rings separated by commas.
    let rings = split_rings(outer)?;
    if rings.is_empty() {
        return Err(WktError::Malformed {
            what: "polygon has no rings",
        });
    }
    if rings.len() > 1 {
        return Err(WktError::HolesUnsupported);
    }
    let verts = rings[0]
        .split(',')
        .map(|c| parse_coord(c.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    Polygon::new(verts).map_err(WktError::InvalidPolygon)
}

/// Splits `TAG (...)` into the tag and the parenthesized remainder.
fn split_tag(text: &str) -> Result<(&str, &str), WktError> {
    let trimmed = text.trim();
    let open = trimmed.find('(').ok_or(WktError::Malformed {
        what: "missing '('",
    })?;
    Ok((trimmed[..open].trim(), trimmed[open..].trim()))
}

/// Strips one balanced layer of parentheses.
fn strip_parens(text: &str) -> Result<&str, WktError> {
    let t = text.trim();
    if !t.starts_with('(') || !t.ends_with(')') {
        return Err(WktError::Malformed {
            what: "expected parenthesized body",
        });
    }
    Ok(&t[1..t.len() - 1])
}

/// Splits the body of a POLYGON into its parenthesized rings.
fn split_rings(body: &str) -> Result<Vec<&str>, WktError> {
    let mut rings = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in body.char_indices() {
        match c {
            '(' => {
                if depth == 0 {
                    start = Some(i + 1);
                }
                depth += 1;
            }
            ')' => {
                if depth == 0 {
                    return Err(WktError::Malformed {
                        what: "unbalanced ')'",
                    });
                }
                depth -= 1;
                if depth == 0 {
                    let s = start
                        .take()
                        .ok_or(WktError::Malformed { what: "ring state" })?;
                    rings.push(&body[s..i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(WktError::Malformed {
            what: "unbalanced '('",
        });
    }
    Ok(rings)
}

fn parse_coord(token: &str) -> Result<Point2, WktError> {
    let mut parts = token.split_whitespace();
    let (Some(xs), Some(ys), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(WktError::BadCoordinate {
            token: token.to_owned(),
        });
    };
    let x: f64 = xs.parse().map_err(|_| WktError::BadCoordinate {
        token: token.to_owned(),
    })?;
    let y: f64 = ys.parse().map_err(|_| WktError::BadCoordinate {
        token: token.to_owned(),
    })?;
    Ok(Point2::new(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let p = Point2::new(1.5, -2.25);
        let wkt = point_to_wkt(p);
        assert_eq!(wkt, "POINT (1.5 -2.25)");
        assert_eq!(point_from_wkt(&wkt).unwrap(), p);
        assert_eq!(
            point_from_wkt("  point ( 3 4 ) ").unwrap(),
            Point2::new(3.0, 4.0)
        );
    }

    #[test]
    fn polygon_roundtrip() {
        let poly = Polygon::rect(Point2::new(0.0, 0.0), Point2::new(2.0, 1.0)).unwrap();
        let wkt = polygon_to_wkt(&poly);
        assert!(wkt.starts_with("POLYGON (("));
        assert!(wkt.ends_with("))"));
        let back = polygon_from_wkt(&wkt).unwrap();
        assert_eq!(back.vertices(), poly.vertices());
        assert_eq!(back.area(), poly.area());
    }

    #[test]
    fn parses_unclosed_and_closed_rings() {
        // WKT convention closes the ring; the parser accepts both forms
        // because Polygon::new strips the closing duplicate.
        let closed = "POLYGON ((0 0, 4 0, 4 3, 0 0))";
        let open = "POLYGON ((0 0, 4 0, 4 3))";
        assert_eq!(
            polygon_from_wkt(closed).unwrap().area(),
            polygon_from_wkt(open).unwrap().area()
        );
    }

    #[test]
    fn rejects_unsupported_and_malformed() {
        assert!(matches!(
            polygon_from_wkt("LINESTRING (0 0, 1 1)"),
            Err(WktError::UnsupportedGeometry { .. })
        ));
        assert!(matches!(
            polygon_from_wkt("POLYGON ((0 0, 1 0, 1 1), (0.2 0.2, 0.8 0.2, 0.8 0.8))"),
            Err(WktError::HolesUnsupported)
        ));
        assert!(matches!(
            polygon_from_wkt("POLYGON"),
            Err(WktError::Malformed { .. })
        ));
        assert!(matches!(
            polygon_from_wkt("POLYGON ((0 0, 1 x, 1 1))"),
            Err(WktError::BadCoordinate { .. })
        ));
        assert!(matches!(
            polygon_from_wkt("POLYGON ((0 0, 1 0, 2 0))"),
            Err(WktError::InvalidPolygon(_))
        ));
        assert!(matches!(
            point_from_wkt("POINT (1 2 3)"),
            Err(WktError::BadCoordinate { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = polygon_from_wkt("CIRCLE (0 0, 1)").unwrap_err();
        assert!(e.to_string().contains("CIRCLE"));
        let e = polygon_from_wkt("POLYGON ((0 0, 1 b, 1 1))").unwrap_err();
        assert!(e.to_string().contains("1 b"));
    }
}
