//! Points and vectors in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the Euclidean plane, stored as `f64`
/// coordinates.
///
/// `Point2` is `Copy` and all arithmetic is by value; the type doubles as a
/// 2-vector, with `-`, `+` and scalar `*`/`/` defined component-wise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Dot product of `self` and `other` viewed as vectors.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product of `self` and `other` viewed as
    /// vectors; positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean length of `self` viewed as a vector.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length of `self` viewed as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance between two points.
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Euclidean distance between two points.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Midpoint of the segment joining `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// The vector rotated by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point2 {
        Point2::new(-self.y, self.x)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(self, other: Point2) -> Point2 {
        Point2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(self, other: Point2) -> Point2 {
        Point2::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Point2> for f64 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: Point2) -> Point2 {
        rhs * self
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    #[inline]
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_componentwise() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -4.0);
        assert_eq!(a + b, Point2::new(4.0, -2.0));
        assert_eq!(a - b, Point2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -2.0));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point2::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.25), Point2::new(0.5, 1.0));
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn perp_rotates_ccw() {
        let a = Point2::new(1.0, 0.0);
        assert_eq!(a.perp(), Point2::new(0.0, 1.0));
        assert!(a.cross(a.perp()) > 0.0);
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn min_max() {
        let a = Point2::new(1.0, 5.0);
        let b = Point2::new(2.0, 3.0);
        assert_eq!(a.min(b), Point2::new(1.0, 3.0));
        assert_eq!(a.max(b), Point2::new(2.0, 5.0));
    }

    #[test]
    fn conversions() {
        let p: Point2 = (1.0, 2.0).into();
        assert_eq!(p, Point2::new(1.0, 2.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }
}
