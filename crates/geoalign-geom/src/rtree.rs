//! A static, bulk-loaded R-tree (Sort-Tile-Recursive packing).
//!
//! The overlay step queries, for every source unit, all target units whose
//! bounding boxes intersect it. An STR-packed R-tree gives near-optimal leaf
//! clustering for static data, which is exactly the workload here: unit
//! systems never change after construction.

use crate::bbox::Aabb;
use crate::point::Point2;

/// Fan-out of internal and leaf nodes.
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    bbox: Aabb,
    /// Children: for internal nodes, indices into `nodes`; for leaves,
    /// payload item indices.
    children: Vec<u32>,
    is_leaf: bool,
}

/// A static R-tree over items identified by `usize` index, each with a
/// bounding box supplied at build time.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    item_boxes: Vec<Aabb>,
    len: usize,
}

impl RTree {
    /// Bulk-loads the tree from item bounding boxes using STR packing.
    /// Item `i`'s box is `boxes[i]`; queries report item indices.
    pub fn build(boxes: &[Aabb]) -> Self {
        let len = boxes.len();
        if len == 0 {
            return Self {
                nodes: Vec::new(),
                root: None,
                item_boxes: Vec::new(),
                len: 0,
            };
        }
        // --- Pack leaves ---
        let mut order: Vec<u32> = (0..len as u32).collect();
        // Sort by center-x, tile into vertical slices, sort each by center-y.
        order.sort_by(|&a, &b| {
            boxes[a as usize]
                .center()
                .x
                .total_cmp(&boxes[b as usize].center().x)
        });
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slice_count);
        let mut nodes: Vec<Node> = Vec::with_capacity(2 * leaf_count + 2);
        let mut level: Vec<u32> = Vec::with_capacity(leaf_count);
        for slice in order.chunks(per_slice) {
            let mut slice: Vec<u32> = slice.to_vec();
            slice.sort_by(|&a, &b| {
                boxes[a as usize]
                    .center()
                    .y
                    .total_cmp(&boxes[b as usize].center().y)
            });
            for group in slice.chunks(NODE_CAPACITY) {
                let mut bbox = Aabb::empty();
                for &i in group {
                    bbox = bbox.union(&boxes[i as usize]);
                }
                nodes.push(Node {
                    bbox,
                    children: group.to_vec(),
                    is_leaf: true,
                });
                level.push((nodes.len() - 1) as u32);
            }
        }
        // --- Pack upper levels ---
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            // Keep spatial order: sort level nodes by center-x then tile.
            level.sort_by(|&a, &b| {
                nodes[a as usize]
                    .bbox
                    .center()
                    .x
                    .total_cmp(&nodes[b as usize].bbox.center().x)
            });
            let count = level.len().div_ceil(NODE_CAPACITY);
            let slices = (count as f64).sqrt().ceil() as usize;
            let per = level.len().div_ceil(slices);
            let mut regrouped: Vec<u32> = Vec::with_capacity(level.len());
            for slice in level.chunks(per) {
                let mut s: Vec<u32> = slice.to_vec();
                s.sort_by(|&a, &b| {
                    nodes[a as usize]
                        .bbox
                        .center()
                        .y
                        .total_cmp(&nodes[b as usize].bbox.center().y)
                });
                regrouped.extend(s);
            }
            for group in regrouped.chunks(NODE_CAPACITY) {
                let mut bbox = Aabb::empty();
                for &i in group {
                    bbox = bbox.union(&nodes[i as usize].bbox);
                }
                nodes.push(Node {
                    bbox,
                    children: group.to_vec(),
                    is_leaf: false,
                });
                next.push((nodes.len() - 1) as u32);
            }
            level = next;
        }
        let root = level.first().copied();
        Self {
            nodes,
            root,
            item_boxes: boxes.to_vec(),
            len,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of the whole tree (empty box when the tree is empty).
    pub fn bbox(&self) -> Aabb {
        self.root
            .map_or_else(Aabb::empty, |r| self.nodes[r as usize].bbox)
    }

    /// Calls `visit` with the index of every item whose box intersects
    /// `query`.
    pub fn query<F: FnMut(usize)>(&self, query: &Aabb, mut visit: F) {
        let Some(root) = self.root else { return };
        let mut stack: Vec<u32> = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !node.bbox.intersects(query) {
                continue;
            }
            if node.is_leaf {
                for &item in &node.children {
                    if self.item_boxes[item as usize].intersects(query) {
                        visit(item as usize);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Collects the indices of all items whose box intersects `query`.
    /// Matches are exact with respect to the supplied item boxes; callers
    /// working with polygons still refine with exact geometry.
    pub fn query_vec(&self, query: &Aabb) -> Vec<usize> {
        let mut out = Vec::new();
        self.query(query, |i| out.push(i));
        out
    }

    /// Calls `visit` with every item whose box contains the point `p`.
    pub fn query_point<F: FnMut(usize)>(&self, p: Point2, mut visit: F) {
        let Some(root) = self.root else { return };
        let mut stack: Vec<u32> = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !node.bbox.contains(p) {
                continue;
            }
            if node.is_leaf {
                for &item in &node.children {
                    if self.item_boxes[item as usize].contains(p) {
                        visit(item as usize);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Height of the tree (0 for empty, 1 for a single leaf level).
    pub fn height(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut h = 1;
        let mut ni = root;
        while !self.nodes[ni as usize].is_leaf {
            ni = self.nodes[ni as usize].children[0];
            h += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_boxes(n: usize) -> Vec<Aabb> {
        // n×n unit squares tiling [0, n]².
        let mut out = Vec::with_capacity(n * n);
        for y in 0..n {
            for x in 0..n {
                out.push(Aabb::new(
                    Point2::new(x as f64, y as f64),
                    Point2::new(x as f64 + 1.0, y as f64 + 1.0),
                ));
            }
        }
        out
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t
            .query_vec(&Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0)))
            .is_empty());
    }

    #[test]
    fn query_matches_brute_force() {
        let boxes = grid_boxes(17); // 289 items, multiple levels
        let tree = RTree::build(&boxes);
        assert_eq!(tree.len(), 289);
        assert!(tree.height() >= 2);
        let queries = [
            Aabb::new(Point2::new(2.5, 3.5), Point2::new(5.5, 4.5)),
            Aabb::new(Point2::new(-1.0, -1.0), Point2::new(0.5, 0.5)),
            Aabb::new(Point2::new(100.0, 100.0), Point2::new(101.0, 101.0)),
            Aabb::new(Point2::new(0.0, 0.0), Point2::new(17.0, 17.0)),
            Aabb::new(Point2::new(8.0, 8.0), Point2::new(8.0, 8.0)), // point-like
        ];
        for q in &queries {
            let mut got = tree.query_vec(q);
            got.sort_unstable();
            let mut expect: Vec<usize> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(q))
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn point_queries() {
        let boxes = grid_boxes(10);
        let tree = RTree::build(&boxes);
        let mut got = Vec::new();
        tree.query_point(Point2::new(3.5, 7.5), |i| got.push(i));
        assert_eq!(got, vec![7 * 10 + 3]);
        // Grid corner point hits the four adjacent cells.
        let mut corner = Vec::new();
        tree.query_point(Point2::new(5.0, 5.0), |i| corner.push(i));
        corner.sort_unstable();
        assert_eq!(corner, vec![4 * 10 + 4, 4 * 10 + 5, 5 * 10 + 4, 5 * 10 + 5]);
        let mut outside = Vec::new();
        tree.query_point(Point2::new(-0.1, 5.0), |i| outside.push(i));
        assert!(outside.is_empty());
    }

    #[test]
    fn single_item_tree() {
        let b = Aabb::new(Point2::ORIGIN, Point2::new(1.0, 1.0));
        let tree = RTree::build(&[b]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.query_vec(&b), vec![0]);
        assert_eq!(tree.bbox(), b);
    }

    #[test]
    fn tree_bbox_covers_all_items() {
        let boxes = grid_boxes(13);
        let tree = RTree::build(&boxes);
        let root = tree.bbox();
        for b in &boxes {
            assert!(root.contains_box(b));
        }
        assert_eq!(root, Aabb::new(Point2::ORIGIN, Point2::new(13.0, 13.0)));
    }

    #[test]
    fn overlapping_random_boxes() {
        let mut state: u64 = 7;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let boxes: Vec<Aabb> = (0..400)
            .map(|_| {
                let c = Point2::new(next() * 10.0, next() * 10.0);
                let w = next();
                let h = next();
                Aabb::new(c, Point2::new(c.x + w, c.y + h))
            })
            .collect();
        let tree = RTree::build(&boxes);
        let q = Aabb::new(Point2::new(3.0, 3.0), Point2::new(6.0, 6.0));
        let mut got = tree.query_vec(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
