//! Axis-aligned boxes in arbitrary dimension — the units that make the
//! aggregate interpolation problem dimension-agnostic (paper §2.2 and §3.4:
//! "GeoAlign is applicable to any dimension").
//!
//! A [`NdBox`] in 1-D is an interval, in 2-D a rectangle, in 3-D a cube-like
//! cell (e.g. the disease-distribution example of §2.2), and in 4-D a
//! space–time cell.

use crate::error::GeomError;
use crate::interval::Interval;

/// An axis-aligned box `[lo_1, hi_1] × ... × [lo_n, hi_n]` in n dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct NdBox {
    axes: Vec<Interval>,
}

impl NdBox {
    /// Builds a box from per-axis intervals. The dimension is the number of
    /// intervals; a zero-dimensional box is permitted and has volume 1
    /// (empty product), though nothing in the library creates one.
    pub fn new(axes: Vec<Interval>) -> Self {
        Self { axes }
    }

    /// Builds a box from `(lo, hi)` pairs.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Result<Self, GeomError> {
        let axes = bounds
            .iter()
            .enumerate()
            .map(|(axis, &(lo, hi))| {
                Interval::new(lo, hi).map_err(|e| match e {
                    GeomError::InvertedBounds { .. } => GeomError::InvertedBounds { axis },
                    other => other,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { axes })
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis intervals.
    pub fn axes(&self) -> &[Interval] {
        &self.axes
    }

    /// Lebesgue measure: length in 1-D, area in 2-D, volume in 3-D, etc.
    pub fn volume(&self) -> f64 {
        self.axes.iter().map(Interval::length).product()
    }

    /// Center point, one coordinate per axis.
    pub fn center(&self) -> Vec<f64> {
        self.axes.iter().map(Interval::center).collect()
    }

    /// Closed containment of a point given as one coordinate per axis.
    /// Returns an error when the point dimension does not match.
    pub fn contains(&self, point: &[f64]) -> Result<bool, GeomError> {
        if point.len() != self.dim() {
            return Err(GeomError::DimensionMismatch {
                left: self.dim(),
                right: point.len(),
            });
        }
        Ok(self.axes.iter().zip(point).all(|(ax, &x)| ax.contains(x)))
    }

    /// Intersection with positive volume, or `Ok(None)` when the boxes are
    /// disjoint or touch only on a face. Errors on dimension mismatch.
    pub fn intersection(&self, other: &NdBox) -> Result<Option<NdBox>, GeomError> {
        if self.dim() != other.dim() {
            return Err(GeomError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        let mut axes = Vec::with_capacity(self.dim());
        for (a, b) in self.axes.iter().zip(&other.axes) {
            match a.intersection(b) {
                Some(i) => axes.push(i),
                None => return Ok(None),
            }
        }
        Ok(Some(NdBox { axes }))
    }
}

/// Builds the regular grid partition of a box into `counts[d]` equal slices
/// per axis, in row-major order (last axis fastest).
pub fn grid_partition(bounds: &[(f64, f64)], counts: &[usize]) -> Result<Vec<NdBox>, GeomError> {
    if bounds.len() != counts.len() {
        return Err(GeomError::DimensionMismatch {
            left: bounds.len(),
            right: counts.len(),
        });
    }
    let mut per_axis: Vec<Vec<Interval>> = Vec::with_capacity(bounds.len());
    for (&(lo, hi), &n) in bounds.iter().zip(counts) {
        per_axis.push(crate::interval::equal_bins(lo, hi, n)?);
    }
    let total: usize = counts.iter().product();
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; counts.len()];
    if total == 0 {
        return Ok(out);
    }
    loop {
        let axes: Vec<Interval> = idx
            .iter()
            .zip(&per_axis)
            .map(|(&i, bins)| bins[i])
            .collect();
        out.push(NdBox::new(axes));
        // Increment the mixed-radix counter, last axis fastest.
        let mut d = counts.len();
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(bounds: &[(f64, f64)]) -> NdBox {
        NdBox::from_bounds(bounds).unwrap()
    }

    #[test]
    fn volume_across_dimensions() {
        assert_eq!(boxed(&[(0.0, 5.0)]).volume(), 5.0);
        assert_eq!(boxed(&[(0.0, 2.0), (0.0, 3.0)]).volume(), 6.0);
        assert_eq!(boxed(&[(0.0, 2.0), (0.0, 3.0), (1.0, 2.0)]).volume(), 6.0);
        assert_eq!(boxed(&[]).volume(), 1.0); // empty product convention
    }

    #[test]
    fn construction_reports_failing_axis() {
        let err = NdBox::from_bounds(&[(0.0, 1.0), (3.0, 2.0)]).unwrap_err();
        assert_eq!(err, GeomError::InvertedBounds { axis: 1 });
    }

    #[test]
    fn containment() {
        let b = boxed(&[(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)]);
        assert!(b.contains(&[0.5, 1.0, 2.9]).unwrap());
        assert!(b.contains(&[0.0, 0.0, 0.0]).unwrap()); // corner
        assert!(!b.contains(&[1.5, 1.0, 1.0]).unwrap());
        assert!(b.contains(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn intersection_3d() {
        let a = boxed(&[(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]);
        let b = boxed(&[(1.0, 3.0), (1.0, 3.0), (1.0, 3.0)]);
        let i = a.intersection(&b).unwrap().unwrap();
        assert_eq!(i.volume(), 1.0);
        // Face-touching boxes do not produce a positive-volume intersection.
        let c = boxed(&[(2.0, 3.0), (0.0, 2.0), (0.0, 2.0)]);
        assert!(a.intersection(&c).unwrap().is_none());
        // Dimension mismatch is an error, not a silent None.
        let d = boxed(&[(0.0, 1.0)]);
        assert!(a.intersection(&d).is_err());
    }

    #[test]
    fn grid_partition_covers_volume() {
        let cells = grid_partition(&[(0.0, 1.0), (0.0, 2.0)], &[4, 5]).unwrap();
        assert_eq!(cells.len(), 20);
        let total: f64 = cells.iter().map(NdBox::volume).sum();
        assert!((total - 2.0).abs() < 1e-12);
        // Cells are pairwise volume-disjoint.
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                assert!(cells[i].intersection(&cells[j]).unwrap().is_none());
            }
        }
    }

    #[test]
    fn grid_partition_3d_counts() {
        let cells = grid_partition(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)], &[2, 3, 4]).unwrap();
        assert_eq!(cells.len(), 24);
        let total: f64 = cells.iter().map(NdBox::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_partition_zero_count_is_empty() {
        let cells = grid_partition(&[(0.0, 1.0), (0.0, 1.0)], &[0, 5]).unwrap();
        assert!(cells.is_empty());
    }
}
