//! Convex hulls (Andrew's monotone chain).

use crate::point::Point2;
use crate::predicates::{orient2d, Orientation};

/// Computes the convex hull of a point set with Andrew's monotone chain in
/// O(n log n).
///
/// Returns the hull vertices in counter-clockwise order with collinear
/// boundary points removed. Degenerate inputs (fewer than 3 distinct points,
/// or all collinear) return the reduced chain (possibly fewer than 3 points).
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::{signed_area_of, Polygon};

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
            Point2::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(signed_area_of(&hull) > 0.0); // CCW
        let poly = Polygon::new(hull).unwrap();
        assert_eq!(poly.area(), 1.0);
    }

    #[test]
    fn collinear_points_on_boundary_removed() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.0), // collinear on bottom edge
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new(1.0, 1.0)]).len(), 1);
        // Duplicates collapse.
        assert_eq!(
            convex_hull(&[Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)]).len(),
            1
        );
        // All collinear: the chain keeps only the two extremes.
        let line: Vec<Point2> = (0..10)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
    }

    #[test]
    fn hull_contains_all_points() {
        // Deterministic pseudo-random points via a simple LCG.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point2> = (0..200).map(|_| Point2::new(next(), next())).collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        let poly = Polygon::new(hull).unwrap();
        assert!(poly.is_convex());
        for p in &pts {
            assert!(poly.contains(*p), "hull must contain {p}");
        }
    }
}
