//! Error types for geometric construction and queries.

use std::fmt;

/// Errors raised when constructing or validating geometric objects.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A polygon needs at least three distinct vertices.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// The polygon ring has (numerically) zero area.
    DegenerateRing,
    /// An interval or box was constructed with `lo > hi` on some axis.
    InvertedBounds {
        /// Axis on which the bounds were inverted (0 for 1-D intervals).
        axis: usize,
    },
    /// Dimension mismatch between two n-dimensional objects.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A Voronoi diagram was requested with no seed points.
    NoSeeds,
    /// Voronoi seeds must be pairwise distinct; two coincided.
    DuplicateSeed {
        /// Index of the first seed of the coinciding pair.
        first: usize,
        /// Index of the second seed of the coinciding pair.
        second: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewVertices { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
            GeomError::NonFiniteCoordinate => write!(f, "non-finite coordinate"),
            GeomError::DegenerateRing => write!(f, "polygon ring has zero area"),
            GeomError::InvertedBounds { axis } => {
                write!(f, "inverted bounds (lo > hi) on axis {axis}")
            }
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::NoSeeds => write!(f, "Voronoi diagram requires at least one seed"),
            GeomError::DuplicateSeed { first, second } => {
                write!(f, "Voronoi seeds {first} and {second} coincide")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GeomError, &str)> = vec![
            (GeomError::TooFewVertices { got: 2 }, "at least 3"),
            (GeomError::NonFiniteCoordinate, "non-finite"),
            (GeomError::DegenerateRing, "zero area"),
            (GeomError::InvertedBounds { axis: 1 }, "axis 1"),
            (GeomError::DimensionMismatch { left: 2, right: 3 }, "2 vs 3"),
            (GeomError::NoSeeds, "at least one seed"),
            (
                GeomError::DuplicateSeed {
                    first: 0,
                    second: 7,
                },
                "0 and 7",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
