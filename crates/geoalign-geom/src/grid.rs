//! Uniform grid index over point sets.
//!
//! Supports the expanding-ring neighbor enumeration that drives the
//! grid-accelerated Voronoi construction: neighbors are visited in
//! (approximately) increasing distance, cell ring by cell ring, with an
//! exact lower bound on the distance of any unvisited point.

use crate::bbox::Aabb;
use crate::point::Point2;

/// A uniform grid bucketing point indices by cell.
#[derive(Debug, Clone)]
pub struct PointGrid {
    bounds: Aabb,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    /// CSR-style bucket layout: `starts[c]..starts[c+1]` indexes into `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Point2>,
}

impl PointGrid {
    /// Builds a grid over `points`, sized so the average bucket holds about
    /// `target_per_cell` points (minimum 1×1 grid).
    pub fn build(points: Vec<Point2>, target_per_cell: usize) -> Self {
        let bounds = Aabb::from_points(points.iter().copied());
        let n = points.len().max(1);
        let cells = (n / target_per_cell.max(1)).max(1);
        // Aspect-ratio aware split of `cells` into nx × ny. Both dimensions
        // are clamped to the cell budget so degenerate extents (e.g. all
        // points collinear) cannot blow the grid up to millions of empty
        // cells.
        let w = bounds.width().max(1e-12);
        let h = bounds.height().max(1e-12);
        let nx = ((cells as f64 * w / h).sqrt().round() as usize).clamp(1, cells);
        let ny = (cells / nx).clamp(1, cells);
        let cell_w = w / nx as f64;
        let cell_h = h / ny as f64;

        let cell_of = |p: Point2| -> usize {
            let cx = (((p.x - bounds.min.x) / cell_w) as usize).min(nx - 1);
            let cy = (((p.y - bounds.min.y) / cell_h) as usize).min(ny - 1);
            cy * nx + cx
        };

        // Counting sort into CSR buckets.
        let mut counts = vec![0u32; nx * ny + 1];
        for &p in &points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut items = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        Self {
            bounds,
            nx,
            ny,
            cell_w,
            cell_h,
            starts: counts,
            items,
            points,
        }
    }

    /// The indexed points, in input order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn cell_coords(&self, p: Point2) -> (isize, isize) {
        let cx = ((p.x - self.bounds.min.x) / self.cell_w).floor() as isize;
        let cy = ((p.y - self.bounds.min.y) / self.cell_h).floor() as isize;
        (
            cx.clamp(0, self.nx as isize - 1),
            cy.clamp(0, self.ny as isize - 1),
        )
    }

    fn bucket(&self, cx: isize, cy: isize) -> &[u32] {
        if cx < 0 || cy < 0 || cx >= self.nx as isize || cy >= self.ny as isize {
            return &[];
        }
        let c = cy as usize * self.nx + cx as usize;
        let s = self.starts[c] as usize;
        let e = self.starts[c + 1] as usize;
        &self.items[s..e]
    }

    /// Indices of all points within `radius` of `q` (inclusive).
    pub fn within_radius(&self, q: Point2, radius: f64) -> Vec<usize> {
        let r2 = radius * radius;
        let (cx0, cy0) = self.cell_coords(Point2::new(q.x - radius, q.y - radius));
        let (cx1, cy1) = self.cell_coords(Point2::new(q.x + radius, q.y + radius));
        let mut out = Vec::new();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in self.bucket(cx, cy) {
                    if self.points[i as usize].dist_sq(q) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
        out
    }

    /// Index of the nearest point to `q`, or `None` when empty. When several
    /// points are equally near, one of them is returned (which one is
    /// unspecified). Terminates early once the ring lower bound proves no
    /// closer point remains.
    pub fn nearest(&self, q: Point2) -> Option<usize> {
        let mut it = self.neighbors(q);
        let mut best: Option<(usize, f64)> = None;
        while let Some((i, d2)) = it.next() {
            match best {
                Some((bi, bd)) => {
                    if d2 < bd || (d2 == bd && i < bi) {
                        best = Some((i, d2));
                    }
                }
                None => best = Some((i, d2)),
            }
            if let Some((_, bd)) = best {
                let lb = it.ring_min_dist();
                if lb * lb > bd {
                    break;
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Enumerates point indices in rings of grid cells centered at `q`,
    /// yielding `(index, dist_sq)` pairs. Rings are visited in increasing
    /// ring number; [`NeighborIter::ring_min_dist`] lower-bounds the distance
    /// of any point not yet visited, enabling early termination.
    pub fn neighbors(&self, q: Point2) -> NeighborIter<'_> {
        NeighborIter::new(self, q, usize::MAX)
    }
}

/// Ring-expanding neighbor iterator; see [`PointGrid::neighbors`].
pub struct NeighborIter<'a> {
    grid: &'a PointGrid,
    q: Point2,
    qcx: isize,
    qcy: isize,
    ring: isize,
    max_ring: isize,
    buf: Vec<(usize, f64)>,
    buf_pos: usize,
    exhausted: bool,
    limit: usize,
    yielded: usize,
}

impl<'a> NeighborIter<'a> {
    fn new(grid: &'a PointGrid, q: Point2, limit: usize) -> Self {
        let (qcx, qcy) = if grid.is_empty() {
            (0, 0)
        } else {
            grid.cell_coords(q)
        };
        let max_ring = grid.nx.max(grid.ny) as isize;
        Self {
            grid,
            q,
            qcx,
            qcy,
            ring: -1,
            max_ring,
            buf: Vec::new(),
            buf_pos: 0,
            exhausted: grid.is_empty(),
            limit,
            yielded: 0,
        }
    }

    /// The ring currently being drained (-1 before the first ring starts).
    pub fn current_ring(&self) -> isize {
        self.ring
    }

    /// Lower bound on the distance from the query to any point in a ring
    /// that has not been *started* yet (i.e. rings `> current_ring()`).
    /// Points still buffered in the current ring may be closer than this
    /// bound; they are, however, yielded in sorted order, so consumers that
    /// track the best distance seen so far can combine both facts for a
    /// sound early exit (see [`PointGrid::nearest`]).
    pub fn ring_min_dist(&self) -> f64 {
        if self.exhausted {
            return f64::INFINITY;
        }
        let next = (self.ring + 1).max(0) as f64 - 1.0;
        if next <= 0.0 {
            return 0.0;
        }
        // Any cell in ring r is at least (r-1) cells away in Chebyshev
        // terms; convert to Euclidean via the smaller cell dimension.
        next * self.grid.cell_w.min(self.grid.cell_h)
    }

    fn fill_ring(&mut self) -> bool {
        self.ring += 1;
        if self.ring > self.max_ring {
            self.exhausted = true;
            return false;
        }
        self.buf.clear();
        self.buf_pos = 0;
        let r = self.ring;
        let (gx, gy) = (self.grid.nx as isize, self.grid.ny as isize);
        // Outside the grid entirely: done once the ring can no longer touch.
        if self.qcx - r >= gx && self.qcx + r < 0 && self.qcy - r >= gy && self.qcy + r < 0 {
            self.exhausted = true;
            return false;
        }
        let visit = |cx: isize, cy: isize, me: &mut Self| {
            for &i in me.grid.bucket(cx, cy) {
                let d2 = me.grid.points[i as usize].dist_sq(me.q);
                me.buf.push((i as usize, d2));
            }
        };
        if r == 0 {
            visit(self.qcx, self.qcy, self);
        } else {
            for cx in (self.qcx - r)..=(self.qcx + r) {
                visit(cx, self.qcy - r, self);
                visit(cx, self.qcy + r, self);
            }
            for cy in (self.qcy - r + 1)..=(self.qcy + r - 1) {
                visit(self.qcx - r, cy, self);
                visit(self.qcx + r, cy, self);
            }
        }
        // Sort the ring's points by distance so consumers see a useful order.
        self.buf.sort_by(|a, b| a.1.total_cmp(&b.1));
        true
    }
}

impl Iterator for NeighborIter<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.yielded >= self.limit {
            return None;
        }
        loop {
            if self.exhausted {
                return None;
            }
            if self.buf_pos < self.buf.len() {
                let item = self.buf[self.buf_pos];
                self.buf_pos += 1;
                self.yielded += 1;
                return Some(item);
            }
            if !self.fill_ring() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<Point2> {
        // Deterministic LCG points in the unit square.
        let mut state: u64 = 42;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point2::new(next(), next())).collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(500);
        let grid = PointGrid::build(pts.clone(), 4);
        for q in cloud(100)
            .into_iter()
            .map(|p| Point2::new(p.x * 1.4 - 0.2, p.y * 1.4 - 0.2))
        {
            let bf = pts
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.dist_sq(q).total_cmp(&b.1.dist_sq(q)))
                .map(|(i, _)| i)
                .unwrap();
            let got = grid.nearest(q).unwrap();
            assert_eq!(
                pts[got].dist_sq(q),
                pts[bf].dist_sq(q),
                "nearest mismatch at {q}"
            );
        }
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = cloud(300);
        let grid = PointGrid::build(pts.clone(), 8);
        let q = Point2::new(0.5, 0.5);
        for &r in &[0.01, 0.1, 0.25, 2.0] {
            let mut got = grid.within_radius(q, r);
            got.sort_unstable();
            let mut expect: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(q) <= r)
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "radius {r}");
        }
    }

    #[test]
    fn neighbors_enumerate_everything_once() {
        let pts = cloud(250);
        let grid = PointGrid::build(pts, 4);
        let mut seen: Vec<usize> = grid
            .neighbors(Point2::new(0.3, 0.7))
            .map(|(i, _)| i)
            .collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..250).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn ring_lower_bound_is_valid() {
        let pts = cloud(400);
        let grid = PointGrid::build(pts, 4);
        let q = Point2::new(0.5, 0.5);
        let mut it = grid.neighbors(q);
        let mut max_seen: f64 = 0.0;
        while let Some((_, d2)) = it.next() {
            max_seen = max_seen.max(d2.sqrt());
            let lb = it.ring_min_dist();
            // Every *future* point must be at distance >= lb. We can't check
            // the future directly here, but lb must never exceed the distance
            // of the next yielded point; peek by cloning is unavailable, so
            // instead assert lb is finite and non-negative during iteration.
            assert!(lb >= 0.0);
        }
        assert!(max_seen > 0.0);
    }

    #[test]
    fn lower_bound_soundness_against_future_rings() {
        let pts = cloud(400);
        let grid = PointGrid::build(pts, 4);
        let q = Point2::new(0.2, 0.8);
        // Record (distance, ring, bound-at-yield-time) triples. The bound
        // promises nothing about the remainder of the *current* ring, only
        // about rings that have not started yet.
        let mut it = grid.neighbors(q);
        let mut log: Vec<(f64, isize, f64)> = Vec::new();
        while let Some((_, d2)) = it.next() {
            log.push((d2.sqrt(), it.current_ring(), it.ring_min_dist()));
        }
        for i in 0..log.len() {
            let (_, ring_i, bound) = log[i];
            for &(dist_j, ring_j, _) in &log[i + 1..] {
                if ring_j > ring_i {
                    assert!(
                        dist_j >= bound - 1e-12,
                        "ring {ring_j} point at {dist_j} violates bound {bound} from ring {ring_i}"
                    );
                }
            }
        }
        // Within a ring, yields are sorted ascending.
        for w in log.windows(2) {
            if w[0].1 == w[1].1 {
                assert!(w[0].0 <= w[1].0 + 1e-15);
            }
        }
    }

    #[test]
    fn empty_and_single_point_grids() {
        let empty = PointGrid::build(Vec::new(), 4);
        assert!(empty.is_empty());
        assert!(empty.nearest(Point2::ORIGIN).is_none());
        assert!(empty.within_radius(Point2::ORIGIN, 1.0).is_empty());

        let single = PointGrid::build(vec![Point2::new(3.0, 4.0)], 4);
        assert_eq!(single.nearest(Point2::ORIGIN), Some(0));
        assert_eq!(single.within_radius(Point2::ORIGIN, 5.0), vec![0]);
        assert!(single.within_radius(Point2::ORIGIN, 4.9).is_empty());
    }

    #[test]
    fn degenerate_collinear_points() {
        // All points on a horizontal line: grid height collapses.
        let pts: Vec<Point2> = (0..50).map(|i| Point2::new(i as f64, 7.0)).collect();
        let grid = PointGrid::build(pts, 4);
        assert_eq!(grid.nearest(Point2::new(12.4, 0.0)), Some(12));
        assert_eq!(grid.within_radius(Point2::new(10.0, 7.0), 2.0).len(), 5);
    }
}
