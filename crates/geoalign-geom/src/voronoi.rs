//! Bounded Voronoi tessellations.
//!
//! GeoAlign's synthetic universes are Voronoi partitions of a rectangular
//! universe: many seeds produce a fine "zip-code-like" layer, few seeds a
//! coarse "county-like" layer. Cells are convex, pairwise disjoint, and
//! cover the universe — exactly the unit-system axioms of paper §2.1
//! (Eq. 1).
//!
//! The construction is the classic half-plane clipping method with a
//! security-radius cutoff: cell *i* starts as the bounding rectangle and is
//! clipped by the perpendicular bisector against neighbors in increasing
//! distance (enumerated through a [`PointGrid`]); once the next candidate
//! is farther than twice the cell's current circumradius, no later seed can
//! cut the cell and the loop stops. With roughly uniform seeds this builds
//! the whole diagram in near-linear time.

use crate::bbox::Aabb;
use crate::clip::{clip_ring_halfplane, HalfPlane};
use crate::error::GeomError;
use crate::grid::PointGrid;
use crate::point::Point2;
use crate::polygon::Polygon;

/// A bounded Voronoi diagram: one convex cell per seed.
#[derive(Debug, Clone)]
pub struct VoronoiDiagram {
    seeds: Vec<Point2>,
    cells: Vec<Polygon>,
    bounds: Aabb,
}

impl VoronoiDiagram {
    /// Computes the Voronoi diagram of `seeds` clipped to the rectangle
    /// `bounds`.
    ///
    /// Seeds must be non-empty, pairwise distinct and lie inside `bounds`
    /// (seeds outside simply produce cells clipped to the rectangle, which
    /// may be empty — that case is rejected as a duplicate-like error to
    /// keep the "one cell per seed" invariant simple, so keep seeds inside).
    pub fn build(seeds: Vec<Point2>, bounds: Aabb) -> Result<Self, GeomError> {
        if seeds.is_empty() {
            return Err(GeomError::NoSeeds);
        }
        if seeds.iter().any(|s| !s.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let grid = PointGrid::build(seeds.clone(), 2);
        let rect = bounds.corners().to_vec();
        let mut cells: Vec<Polygon> = Vec::with_capacity(seeds.len());
        let mut ring: Vec<Point2> = Vec::with_capacity(16);
        let mut scratch: Vec<Point2> = Vec::with_capacity(16);

        for (i, &seed) in seeds.iter().enumerate() {
            ring.clear();
            ring.extend_from_slice(&rect);
            // Circumradius of the current cell around its seed.
            let mut radius_sq = ring.iter().map(|v| v.dist_sq(seed)).fold(0.0f64, f64::max);

            let mut it = grid.neighbors(seed);
            while let Some((j, d2)) = it.next() {
                if j == i {
                    continue;
                }
                if d2 == 0.0 {
                    return Err(GeomError::DuplicateSeed {
                        first: i.min(j),
                        second: i.max(j),
                    });
                }
                // Security radius: a seed at distance d has its bisector at
                // d/2 from `seed`; it can only cut the cell if d/2 < R,
                // i.e. d² < 4R². Points within a grid ring arrive sorted by
                // distance, so when this one is too far the rest of its ring
                // is too — but a *later* ring may still hold closer seeds
                // (ring distance and Euclidean distance interleave), so we
                // may only stop once the lower bound on all future rings is
                // itself beyond the security radius.
                if d2 >= 4.0 * radius_sq {
                    let lb = it.ring_min_dist();
                    if lb * lb >= 4.0 * radius_sq {
                        break;
                    }
                    continue;
                }
                let hp = HalfPlane::bisector(seed, grid.points()[j]);
                if clip_ring_halfplane(&ring, &hp, &mut scratch) == 0 {
                    // Seed outside bounds can lose its whole cell; treat as
                    // construction failure to preserve the bijection.
                    return Err(GeomError::DegenerateRing);
                }
                std::mem::swap(&mut ring, &mut scratch);
                radius_sq = ring.iter().map(|v| v.dist_sq(seed)).fold(0.0f64, f64::max);
            }
            let cell = Polygon::new(ring.clone()).map_err(|_| GeomError::DegenerateRing)?;
            cells.push(cell);
        }
        Ok(Self {
            seeds,
            cells,
            bounds,
        })
    }

    /// Builds a diagram from seeds scattered on a jittered grid — the
    /// standard way the data generator creates "organic" unit systems with
    /// deterministic seeding. `jitter` in `[0, 0.5)` is the fraction of a
    /// grid step each seed may deviate; `rand(k)` must return a value in
    /// `[0, 1)` for counter `k`.
    pub fn jittered_grid(
        bounds: Aabb,
        nx: usize,
        ny: usize,
        jitter: f64,
        mut rand: impl FnMut(u64) -> f64,
    ) -> Result<Self, GeomError> {
        if nx == 0 || ny == 0 {
            return Err(GeomError::NoSeeds);
        }
        let sx = bounds.width() / nx as f64;
        let sy = bounds.height() / ny as f64;
        let mut seeds = Vec::with_capacity(nx * ny);
        let mut k = 0u64;
        for gy in 0..ny {
            for gx in 0..nx {
                let jx = (rand(k) - 0.5) * 2.0 * jitter;
                k += 1;
                let jy = (rand(k) - 0.5) * 2.0 * jitter;
                k += 1;
                seeds.push(Point2::new(
                    bounds.min.x + (gx as f64 + 0.5 + jx) * sx,
                    bounds.min.y + (gy as f64 + 0.5 + jy) * sy,
                ));
            }
        }
        Self::build(seeds, bounds)
    }

    /// The seed points, in input order.
    pub fn seeds(&self) -> &[Point2] {
        &self.seeds
    }

    /// The cells; `cells()[i]` is the dominance region of `seeds()[i]`.
    pub fn cells(&self) -> &[Polygon] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` for a diagram with no cells (never constructed by
    /// [`VoronoiDiagram::build`], which rejects empty seed sets).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The bounding rectangle the diagram was clipped to.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Consumes the diagram, returning its cells.
    pub fn into_cells(self) -> Vec<Polygon> {
        self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))
    }

    fn lcg(seed: u64) -> impl FnMut(u64) -> f64 {
        let mut state = seed | 1;
        move |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn single_seed_owns_everything() {
        let d = VoronoiDiagram::build(vec![Point2::new(0.3, 0.7)], unit_bounds()).unwrap();
        assert_eq!(d.len(), 1);
        assert!((d.cells()[0].area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_seeds_split_by_bisector() {
        let d = VoronoiDiagram::build(
            vec![Point2::new(0.25, 0.5), Point2::new(0.75, 0.5)],
            unit_bounds(),
        )
        .unwrap();
        assert!((d.cells()[0].area() - 0.5).abs() < 1e-12);
        assert!((d.cells()[1].area() - 0.5).abs() < 1e-12);
        // Cell 0 is the left half.
        assert!(d.cells()[0].contains(Point2::new(0.1, 0.5)));
        assert!(!d.cells()[0].contains(Point2::new(0.9, 0.5)));
    }

    #[test]
    fn duplicate_seeds_rejected() {
        let e = VoronoiDiagram::build(
            vec![Point2::new(0.5, 0.5), Point2::new(0.5, 0.5)],
            unit_bounds(),
        )
        .unwrap_err();
        assert_eq!(
            e,
            GeomError::DuplicateSeed {
                first: 0,
                second: 1
            }
        );
        assert_eq!(
            VoronoiDiagram::build(vec![], unit_bounds()).unwrap_err(),
            GeomError::NoSeeds
        );
    }

    #[test]
    fn cells_partition_the_bounds() {
        let d = VoronoiDiagram::jittered_grid(unit_bounds(), 8, 8, 0.4, lcg(99)).unwrap();
        assert_eq!(d.len(), 64);
        let total: f64 = d.cells().iter().map(Polygon::area).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "areas must sum to the universe: {total}"
        );
        // All cells are convex and inside bounds.
        for c in d.cells() {
            assert!(c.is_convex());
            assert!(d.bounds().contains_box(c.bbox()));
        }
    }

    #[test]
    fn each_cell_contains_its_seed_and_no_other() {
        let d = VoronoiDiagram::jittered_grid(unit_bounds(), 6, 6, 0.45, lcg(7)).unwrap();
        for (i, cell) in d.cells().iter().enumerate() {
            assert!(
                cell.contains(d.seeds()[i]),
                "cell {i} must contain its seed"
            );
        }
        // Interior sample points belong to the cell of their nearest seed.
        let mut r = lcg(1234);
        for k in 0..200 {
            let q = Point2::new(r(k), r(k));
            let nearest = d
                .seeds()
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.dist_sq(q).total_cmp(&b.1.dist_sq(q)))
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                d.cells()[nearest].contains(q),
                "point {q} must lie in the cell of its nearest seed {nearest}"
            );
        }
    }

    #[test]
    fn large_diagram_builds_and_partitions() {
        let d = VoronoiDiagram::jittered_grid(unit_bounds(), 40, 40, 0.49, lcg(5)).unwrap();
        assert_eq!(d.len(), 1600);
        let total: f64 = d.cells().iter().map(Polygon::area).sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn collinear_seeds() {
        let seeds: Vec<Point2> = (0..5)
            .map(|i| Point2::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let d = VoronoiDiagram::build(seeds, unit_bounds()).unwrap();
        let total: f64 = d.cells().iter().map(Polygon::area).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Interior cells are 0.2-wide strips.
        assert!((d.cells()[2].area() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jittered_grid_rejects_zero_counts() {
        assert!(VoronoiDiagram::jittered_grid(unit_bounds(), 0, 3, 0.1, lcg(1)).is_err());
    }
}
