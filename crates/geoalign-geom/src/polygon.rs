//! Simple polygons: closed areas bounded by a single non-self-intersecting
//! ring, as used for the 2-D units of the aggregate interpolation problem
//! (paper §2.2, Eq. 2).

use crate::bbox::Aabb;
use crate::error::GeomError;
use crate::point::Point2;
use crate::predicates::{orient2d, Orientation};

/// A simple polygon stored as a counter-clockwise ring of vertices.
///
/// The ring is *open*: the closing edge from the last vertex back to the
/// first is implicit. Construction normalizes orientation to CCW and strips
/// consecutive duplicate vertices; it rejects rings with fewer than three
/// distinct vertices, non-finite coordinates, or zero area. Self-intersection
/// is **not** checked at construction (it is O(n log n)); callers producing
/// polygons from clipping/Voronoi get simplicity by construction, and
/// [`Polygon::is_simple`] offers an explicit check.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    verts: Vec<Point2>,
    bbox: Aabb,
}

impl Polygon {
    /// Builds a polygon from a vertex ring (either orientation; the stored
    /// ring is normalized to counter-clockwise).
    pub fn new(mut verts: Vec<Point2>) -> Result<Self, GeomError> {
        if verts.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        // Strip consecutive duplicates (including last == first wrap).
        verts.dedup();
        while verts.len() > 1 && verts.last() == verts.first() {
            verts.pop();
        }
        if verts.len() < 3 {
            return Err(GeomError::TooFewVertices { got: verts.len() });
        }
        let signed = signed_area_of(&verts);
        if signed == 0.0 {
            return Err(GeomError::DegenerateRing);
        }
        if signed < 0.0 {
            verts.reverse();
        }
        let bbox = Aabb::from_points(verts.iter().copied());
        Ok(Self { verts, bbox })
    }

    /// The axis-aligned rectangle `[x0, x1] × [y0, y1]` as a polygon.
    pub fn rect(min: Point2, max: Point2) -> Result<Self, GeomError> {
        let b = Aabb::new(min, max);
        Self::new(b.corners().to_vec())
    }

    /// A regular `n`-gon centered at `c` with circumradius `r`.
    pub fn regular(c: Point2, r: f64, n: usize) -> Result<Self, GeomError> {
        let verts = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point2::new(c.x + r * t.cos(), c.y + r * t.sin())
            })
            .collect();
        Self::new(verts)
    }

    /// The vertex ring (counter-clockwise, open).
    pub fn vertices(&self) -> &[Point2] {
        &self.verts
    }

    /// Number of vertices (equal to the number of edges).
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always `false` — a constructed polygon has at least three vertices.
    /// Provided for clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cached axis-aligned bounding box.
    pub fn bbox(&self) -> &Aabb {
        &self.bbox
    }

    /// Iterator over directed edges `(v[i], v[i+1])`, wrapping.
    pub fn edges(&self) -> impl Iterator<Item = (Point2, Point2)> + '_ {
        let n = self.verts.len();
        (0..n).map(move |i| (self.verts[i], self.verts[(i + 1) % n]))
    }

    /// Enclosed area, by the shoelace formula. Always positive.
    pub fn area(&self) -> f64 {
        signed_area_of(&self.verts).abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.dist(b)).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point2 {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        // Shift by the first vertex for numerical stability with far-from-
        // origin coordinates.
        let o = self.verts[0];
        for (p, q) in self.edges() {
            let p = p - o;
            let q = q - o;
            let w = p.cross(q);
            a2 += w;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        // a2 is twice the signed area (positive: ring is CCW).
        Point2::new(o.x + cx / (3.0 * a2), o.y + cy / (3.0 * a2))
    }

    /// Returns `true` when every interior angle turns the same way, i.e. the
    /// polygon is convex (collinear runs allowed).
    pub fn is_convex(&self) -> bool {
        let n = self.verts.len();
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            let c = self.verts[(i + 2) % n];
            if orient2d(a, b, c) == Orientation::Clockwise {
                return false;
            }
        }
        true
    }

    /// O(n²) simplicity check: no two non-adjacent edges intersect. Intended
    /// for tests and validation of externally supplied rings, not hot paths.
    pub fn is_simple(&self) -> bool {
        let n = self.verts.len();
        for i in 0..n {
            let (a1, a2) = (self.verts[i], self.verts[(i + 1) % n]);
            for j in (i + 1)..n {
                // Skip adjacent edges (sharing a vertex).
                if j == i || (j + 1) % n == i || (i + 1) % n == j {
                    continue;
                }
                let (b1, b2) = (self.verts[j], self.verts[(j + 1) % n]);
                if segments_intersect(a1, a2, b1, b2) {
                    return false;
                }
            }
        }
        true
    }

    /// Point-in-polygon by the crossing-number method with exact boundary
    /// handling: points on the boundary count as contained.
    pub fn contains(&self, p: Point2) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.verts.len();
        let mut j = n - 1;
        for i in 0..n {
            let a = self.verts[j];
            let b = self.verts[i];
            if crate::predicates::on_segment(p, a, b) {
                return true;
            }
            // Half-open rule on the y-range avoids double-counting vertices.
            if (b.y > p.y) != (a.y > p.y) {
                // x coordinate of the edge at height p.y.
                let t = (p.y - b.y) / (a.y - b.y);
                let x = b.x + t * (a.x - b.x);
                if p.x < x {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Translates all vertices by `d`.
    pub fn translated(&self, d: Point2) -> Polygon {
        // Translation preserves validity; rebuild the bbox cheaply.
        let verts: Vec<Point2> = self.verts.iter().map(|&v| v + d).collect();
        let bbox = Aabb::new(self.bbox.min + d, self.bbox.max + d);
        Polygon { verts, bbox }
    }

    /// Consumes the polygon, returning its vertex ring.
    pub fn into_vertices(self) -> Vec<Point2> {
        self.verts
    }
}

/// Signed shoelace area of a ring (positive for counter-clockwise).
/// Coordinates are shifted by the first vertex before summing to avoid
/// catastrophic cancellation far from the origin.
pub fn signed_area_of(verts: &[Point2]) -> f64 {
    if verts.len() < 3 {
        return 0.0;
    }
    let o = verts[0];
    let mut acc = 0.0;
    for i in 1..verts.len() - 1 {
        acc += (verts[i] - o).cross(verts[i + 1] - o);
    }
    0.5 * acc
}

/// Proper or touching intersection test for closed segments `[a1,a2]` and
/// `[b1,b2]` using robust orientation predicates.
pub fn segments_intersect(a1: Point2, a2: Point2, b1: Point2, b2: Point2) -> bool {
    let o1 = orient2d(a1, a2, b1);
    let o2 = orient2d(a1, a2, b2);
    let o3 = orient2d(b1, b2, a1);
    let o4 = orient2d(b1, b2, a2);
    // General position: strict straddling on both sides.
    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return true;
    }
    // Collinear/touching special cases.
    use crate::predicates::on_segment;
    if o1 == Orientation::Collinear && on_segment(b1, a1, a2) {
        return true;
    }
    if o2 == Orientation::Collinear && on_segment(b2, a1, a2) {
        return true;
    }
    if o3 == Orientation::Collinear && on_segment(a1, b1, b2) {
        return true;
    }
    if o4 == Orientation::Collinear && on_segment(a2, b1, b2) {
        return true;
    }
    o1 != o2 && o3 != o4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)).unwrap()
    }

    #[test]
    fn construction_rejects_bad_rings() {
        assert_eq!(
            Polygon::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]),
            Err(GeomError::TooFewVertices { got: 2 })
        );
        assert_eq!(
            Polygon::new(vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(2.0, 0.0)
            ]),
            Err(GeomError::DegenerateRing)
        );
        assert_eq!(
            Polygon::new(vec![
                Point2::new(f64::NAN, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0)
            ]),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn orientation_is_normalized() {
        let cw = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(signed_area_of(cw.vertices()) > 0.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn duplicate_and_closing_vertices_are_stripped() {
        let p = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 0.0), // closing repeat
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn area_perimeter_centroid_of_square() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert_eq!(sq.perimeter(), 4.0);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_far_from_origin_is_stable() {
        let off = Point2::new(1e8, -1e8);
        let sq = unit_square().translated(off);
        let c = sq.centroid();
        assert!((c.x - (1e8 + 0.5)).abs() < 1e-4);
        assert!((c.y - (-1e8 + 0.5)).abs() < 1e-4);
        assert!((sq.area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn triangle_centroid_is_vertex_mean() {
        let t = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(0.0, 3.0),
        ])
        .unwrap();
        let c = t.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
        assert_eq!(t.area(), 4.5);
    }

    #[test]
    fn convexity() {
        assert!(unit_square().is_convex());
        assert!(Polygon::regular(Point2::ORIGIN, 1.0, 7)
            .unwrap()
            .is_convex());
        // An L-shape is not convex.
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(!l.is_convex());
        assert!(l.is_simple());
        assert_eq!(l.area(), 3.0);
    }

    #[test]
    fn simplicity_detects_bowtie() {
        // A symmetric bowtie has zero signed area and is rejected outright.
        assert_eq!(
            Polygon::new(vec![
                Point2::new(0.0, 0.0),
                Point2::new(2.0, 2.0),
                Point2::new(2.0, 0.0),
                Point2::new(0.0, 2.0),
            ]),
            Err(GeomError::DegenerateRing)
        );
        // An asymmetric self-intersecting ring survives construction but is
        // flagged by the explicit simplicity check.
        let bow = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 3.0),
        ])
        .unwrap();
        assert!(!bow.is_simple());
    }

    #[test]
    fn containment_including_boundary() {
        let sq = unit_square();
        assert!(sq.contains(Point2::new(0.5, 0.5)));
        assert!(sq.contains(Point2::new(0.0, 0.0))); // corner
        assert!(sq.contains(Point2::new(0.5, 0.0))); // edge
        assert!(sq.contains(Point2::new(1.0, 1.0)));
        assert!(!sq.contains(Point2::new(1.5, 0.5)));
        assert!(!sq.contains(Point2::new(-0.0001, 0.5)));
    }

    #[test]
    fn containment_concave() {
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(Point2::new(0.5, 1.5)));
        assert!(l.contains(Point2::new(1.5, 0.5)));
        assert!(!l.contains(Point2::new(1.5, 1.5))); // the notch
    }

    #[test]
    fn containment_vertex_ray_degeneracy() {
        // Horizontal ray through a vertex must not double count.
        let tri = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(2.0, 2.0),
        ])
        .unwrap();
        // Query at the same height as the apex, outside.
        assert!(!tri.contains(Point2::new(-1.0, 2.0)));
        assert!(!tri.contains(Point2::new(5.0, 2.0)));
        // At apex height only the apex itself is inside.
        assert!(tri.contains(Point2::new(2.0, 2.0)));
    }

    #[test]
    fn regular_polygon_area_converges_to_circle() {
        let p = Polygon::regular(Point2::ORIGIN, 1.0, 4096).unwrap();
        assert!((p.area() - std::f64::consts::PI).abs() < 1e-4);
        assert!((p.perimeter() - 2.0 * std::f64::consts::PI).abs() < 1e-4);
    }

    #[test]
    fn edges_wrap_around() {
        let sq = unit_square();
        let edges: Vec<_> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].1, sq.vertices()[0]);
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Point2::new(0.0, 0.0);
        let e = Point2::new(2.0, 2.0);
        // Proper crossing.
        assert!(segments_intersect(
            o,
            e,
            Point2::new(0.0, 2.0),
            Point2::new(2.0, 0.0)
        ));
        // Touching at endpoint.
        assert!(segments_intersect(o, e, e, Point2::new(3.0, 0.0)));
        // Collinear overlap.
        assert!(segments_intersect(
            o,
            e,
            Point2::new(1.0, 1.0),
            Point2::new(3.0, 3.0)
        ));
        // Collinear disjoint.
        assert!(!segments_intersect(
            o,
            Point2::new(1.0, 1.0),
            Point2::new(1.5, 1.5),
            e
        ));
        // Parallel disjoint.
        assert!(!segments_intersect(
            o,
            e,
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 2.0)
        ));
        // Fully disjoint.
        assert!(!segments_intersect(
            o,
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 2.0)
        ));
    }
}
