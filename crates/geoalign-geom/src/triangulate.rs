//! Polygon triangulation by ear clipping.
//!
//! Triangulating a unit polygon enables exact area decomposition and
//! area-uniform point sampling inside arbitrary (simple, possibly concave)
//! units — used for synthetic workloads that need points "uniformly over a
//! unit" rather than over its bounding box, and as an independent witness
//! for the shoelace area in tests.

use crate::point::Point2;
use crate::polygon::Polygon;
use crate::predicates::{orient2d, Orientation};

/// A triangle as three vertices in counter-clockwise order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// The vertices, counter-clockwise.
    pub vertices: [Point2; 3],
}

impl Triangle {
    /// Triangle area (non-negative for CCW input).
    pub fn area(&self) -> f64 {
        let [a, b, c] = self.vertices;
        0.5 * (b - a).cross(c - a)
    }

    /// Closed containment including edges and vertices.
    pub fn contains(&self, p: Point2) -> bool {
        let [a, b, c] = self.vertices;
        orient2d(a, b, p) != Orientation::Clockwise
            && orient2d(b, c, p) != Orientation::Clockwise
            && orient2d(c, a, p) != Orientation::Clockwise
    }

    /// Maps barycentric-ish uniform coordinates `(u, v)` in `[0,1)²` to a
    /// uniformly distributed point inside the triangle.
    pub fn sample(&self, u: f64, v: f64) -> Point2 {
        let (mut u, mut v) = (u, v);
        if u + v > 1.0 {
            u = 1.0 - u;
            v = 1.0 - v;
        }
        let [a, b, c] = self.vertices;
        a + (b - a) * u + (c - a) * v
    }
}

/// Triangulates a simple polygon into `n − 2` triangles by ear clipping
/// (O(n²); unit polygons are small).
///
/// The input ring must be simple; the polygon type guarantees CCW
/// orientation and non-zero area. Collinear vertices are tolerated.
pub fn triangulate(poly: &Polygon) -> Vec<Triangle> {
    let verts = poly.vertices();
    let n = verts.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n.saturating_sub(2));

    // Guard against pathological rings: each full pass must clip at least
    // one ear for a simple polygon; if none is found (numerical trouble),
    // fall back to fan triangulation of the remainder.
    'outer: while indices.len() > 3 {
        let m = indices.len();
        for k in 0..m {
            let ia = indices[(k + m - 1) % m];
            let ib = indices[k];
            let ic = indices[(k + 1) % m];
            let (a, b, c) = (verts[ia], verts[ib], verts[ic]);
            // Ear tip must be convex.
            if orient2d(a, b, c) != Orientation::CounterClockwise {
                continue;
            }
            // No other remaining vertex may lie inside the candidate ear.
            let tri = Triangle {
                vertices: [a, b, c],
            };
            let blocked = indices
                .iter()
                .any(|&j| j != ia && j != ib && j != ic && tri.contains(verts[j]));
            if blocked {
                continue;
            }
            out.push(tri);
            indices.remove(k);
            continue 'outer;
        }
        // No ear found: numerical fallback (fan from the first vertex).
        for w in 1..indices.len() - 1 {
            out.push(Triangle {
                vertices: [verts[indices[0]], verts[indices[w]], verts[indices[w + 1]]],
            });
        }
        indices.truncate(0);
        return out;
    }
    if indices.len() == 3 {
        out.push(Triangle {
            vertices: [verts[indices[0]], verts[indices[1]], verts[indices[2]]],
        });
    }
    out
}

/// Samples `n` points uniformly over a polygon's interior: triangulate,
/// pick triangles with probability proportional to area, then sample each
/// triangle uniformly. `rand01(k)` supplies uniform-[0,1) variates.
pub fn sample_uniform(poly: &Polygon, n: usize, mut rand01: impl FnMut() -> f64) -> Vec<Point2> {
    let tris = triangulate(poly);
    if tris.is_empty() {
        return Vec::new();
    }
    let mut cum = Vec::with_capacity(tris.len());
    let mut acc = 0.0;
    for t in &tris {
        acc += t.area().max(0.0);
        cum.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let x = rand01() * total;
            let idx = cum.partition_point(|&c| c < x).min(tris.len() - 1);
            tris[idx].sample(rand01(), rand01())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg() -> impl FnMut() -> f64 {
        let mut state: u64 = 0xC0FFEE;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn assert_covers_area(poly: &Polygon) {
        let tris = triangulate(poly);
        assert_eq!(tris.len(), poly.len() - 2);
        let total: f64 = tris.iter().map(Triangle::area).sum();
        assert!(
            (total - poly.area()).abs() < 1e-9 * poly.area().max(1.0),
            "triangle areas {total} vs polygon {}",
            poly.area()
        );
        for t in &tris {
            assert!(t.area() > 0.0, "degenerate triangle {t:?}");
        }
    }

    #[test]
    fn triangle_basics() {
        let t = Triangle {
            vertices: [
                Point2::new(0.0, 0.0),
                Point2::new(2.0, 0.0),
                Point2::new(0.0, 2.0),
            ],
        };
        assert_eq!(t.area(), 2.0);
        assert!(t.contains(Point2::new(0.5, 0.5)));
        assert!(t.contains(Point2::new(0.0, 0.0))); // vertex
        assert!(t.contains(Point2::new(1.0, 1.0))); // hypotenuse
        assert!(!t.contains(Point2::new(1.5, 1.5)));
    }

    #[test]
    fn triangulates_convex_polygons() {
        assert_covers_area(&Polygon::rect(Point2::new(0.0, 0.0), Point2::new(3.0, 2.0)).unwrap());
        assert_covers_area(&Polygon::regular(Point2::new(1.0, 1.0), 2.0, 9).unwrap());
    }

    #[test]
    fn triangulates_concave_polygons() {
        // L-shape.
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(3.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(0.0, 3.0),
        ])
        .unwrap();
        assert_covers_area(&l);
        // A comb-like polygon with two notches.
        let comb = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(6.0, 0.0),
            Point2::new(6.0, 3.0),
            Point2::new(5.0, 3.0),
            Point2::new(5.0, 1.0),
            Point2::new(4.0, 1.0),
            Point2::new(4.0, 3.0),
            Point2::new(2.0, 3.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(0.0, 3.0),
        ])
        .unwrap();
        assert_covers_area(&comb);
    }

    #[test]
    fn triangles_stay_inside_the_polygon() {
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(3.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(0.0, 3.0),
        ])
        .unwrap();
        for t in triangulate(&l) {
            // Triangle centroid must lie inside the polygon.
            let c = (t.vertices[0] + t.vertices[1] + t.vertices[2]) / 3.0;
            assert!(l.contains(c), "centroid {c} escaped the polygon");
        }
    }

    #[test]
    fn uniform_sampling_is_area_proportional() {
        // An L-shape where the vertical arm has twice the area of the
        // horizontal arm.
        let l = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 5.0),
            Point2::new(0.0, 5.0),
        ])
        .unwrap();
        let mut rng = lcg();
        let pts = sample_uniform(&l, 4000, &mut rng);
        assert_eq!(pts.len(), 4000);
        for p in &pts {
            assert!(l.contains(*p), "sample {p} escaped");
        }
        // Vertical arm x<1,y>1 has area 4; rest has area 2.
        let in_arm = pts.iter().filter(|p| p.y > 1.0).count() as f64 / 4000.0;
        assert!((in_arm - 4.0 / 6.0).abs() < 0.05, "arm fraction {in_arm}");
    }

    #[test]
    fn triangle_sampler_folds_into_the_triangle() {
        let t = Triangle {
            vertices: [
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 1.0),
            ],
        };
        // u + v > 1 folds back inside.
        let p = t.sample(0.9, 0.9);
        assert!(t.contains(p));
        assert!(t.contains(t.sample(0.0, 0.0)));
        assert!(t.contains(t.sample(0.5, 0.49)));
    }
}
