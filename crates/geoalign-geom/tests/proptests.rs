//! Property-based tests of the geometry substrate's core invariants.

use geoalign_geom::clip::clip_convex;
use geoalign_geom::convex::convex_hull;
use geoalign_geom::polygon::signed_area_of;
use geoalign_geom::{Aabb, Point2, Polygon, RTree, VoronoiDiagram};
use proptest::prelude::*;

fn pt(x: f64, y: f64) -> Point2 {
    Point2::new(x, y)
}

prop_compose! {
    /// A random convex polygon: the hull of 3..16 random points.
    fn convex_poly()(pts in prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 3..16))
        -> Option<Polygon>
    {
        let points: Vec<Point2> = pts.into_iter().map(|(x, y)| pt(x, y)).collect();
        let hull = convex_hull(&points);
        (hull.len() >= 3).then(|| Polygon::new(hull).ok()).flatten()
    }
}

proptest! {
    #[test]
    fn hull_is_convex_and_contains_inputs(
        pts in prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 3..40)
    ) {
        let points: Vec<Point2> = pts.into_iter().map(|(x, y)| pt(x, y)).collect();
        let hull = convex_hull(&points);
        prop_assume!(hull.len() >= 3);
        let poly = Polygon::new(hull).unwrap();
        prop_assert!(poly.is_convex());
        for p in &points {
            prop_assert!(poly.contains(*p));
        }
    }

    #[test]
    fn shoelace_orientation_normalized(
        pts in prop::collection::vec((0.0..10.0f64, 0.0..10.0f64), 3..20)
    ) {
        let points: Vec<Point2> = pts.into_iter().map(|(x, y)| pt(x, y)).collect();
        let hull = convex_hull(&points);
        prop_assume!(hull.len() >= 3);
        let poly = Polygon::new(hull).unwrap();
        // Stored ring is CCW: signed area positive; area matches.
        let signed = signed_area_of(poly.vertices());
        prop_assert!(signed > 0.0);
        prop_assert!((signed - poly.area()).abs() < 1e-9);
    }

    #[test]
    fn clipping_is_monotone_and_commutative(a in convex_poly(), b in convex_poly()) {
        prop_assume!(a.is_some() && b.is_some());
        let (a, b) = (a.unwrap(), b.unwrap());
        let ab = clip_convex(&a, &b);
        let ba = clip_convex(&b, &a);
        match (&ab, &ba) {
            (Some(x), Some(y)) => {
                // Intersection area is symmetric and bounded by both inputs.
                prop_assert!((x.area() - y.area()).abs() < 1e-6 * x.area().max(1.0));
                prop_assert!(x.area() <= a.area() + 1e-9);
                prop_assert!(x.area() <= b.area() + 1e-9);
                prop_assert!(x.is_convex());
            }
            (None, None) => {}
            // One None, one tiny sliver can disagree only below the
            // degeneracy threshold; verify the area really is negligible.
            (Some(x), None) | (None, Some(x)) => {
                prop_assert!(x.area() < 1e-6, "asymmetric clip with area {}", x.area());
            }
        }
    }

    #[test]
    fn clip_by_containing_box_is_identity(a in convex_poly()) {
        prop_assume!(a.is_some());
        let a = a.unwrap();
        let big = Polygon::rect(pt(-100.0, -100.0), pt(100.0, 100.0)).unwrap();
        let clipped = clip_convex(&a, &big).unwrap();
        prop_assert!((clipped.area() - a.area()).abs() < 1e-9);
    }

    #[test]
    fn voronoi_partitions_area(
        seeds in prop::collection::vec((0.01..0.99f64, 0.01..0.99f64), 1..40)
    ) {
        let pts: Vec<Point2> = seeds.into_iter().map(|(x, y)| pt(x, y)).collect();
        // Dedup nearly identical seeds to respect the distinctness contract.
        let mut unique: Vec<Point2> = Vec::new();
        for p in pts {
            if unique.iter().all(|q| q.dist(p) > 1e-9) {
                unique.push(p);
            }
        }
        let bounds = Aabb::new(pt(0.0, 0.0), pt(1.0, 1.0));
        let d = VoronoiDiagram::build(unique.clone(), bounds).unwrap();
        let total: f64 = d.cells().iter().map(Polygon::area).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "cells must tile the square: {total}");
        for (i, c) in d.cells().iter().enumerate() {
            prop_assert!(c.contains(unique[i]));
            prop_assert!(c.is_convex());
        }
    }

    #[test]
    fn rtree_matches_brute_force(
        boxes in prop::collection::vec(
            (0.0..10.0f64, 0.0..10.0f64, 0.01..3.0f64, 0.01..3.0f64), 1..60),
        query in (0.0..10.0f64, 0.0..10.0f64, 0.1..5.0f64, 0.1..5.0f64)
    ) {
        let aabbs: Vec<Aabb> = boxes
            .iter()
            .map(|&(x, y, w, h)| Aabb::new(pt(x, y), pt(x + w, y + h)))
            .collect();
        let tree = RTree::build(&aabbs);
        let q = Aabb::new(pt(query.0, query.1), pt(query.0 + query.2, query.1 + query.3));
        let mut got = tree.query_vec(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = aabbs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn polygon_contains_consistent_with_area_sampling(a in convex_poly()) {
        prop_assume!(a.is_some());
        let a = a.unwrap();
        // The centroid of a convex polygon is inside it.
        prop_assert!(a.contains(a.centroid()));
        // Points far outside the bbox are not.
        let far = a.bbox().max + pt(1.0, 1.0);
        prop_assert!(!a.contains(far));
    }
}
