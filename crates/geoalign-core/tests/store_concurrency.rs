//! Multi-threaded smoke test: hammer a small `CrosswalkStore` from many
//! threads at once and check that every thread always sees a consistent
//! snapshot and that the counters add up.

use geoalign_core::{CrosswalkKey, CrosswalkStore, GeoAlign, ReferenceData};
use geoalign_partition::{AggregateVector, DisaggregationMatrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A small reference universe, deterministically varied by `seed` so that
/// distinct seeds produce distinct fingerprints.
fn reference_set(seed: u64) -> Vec<ReferenceData> {
    let n_source = 6;
    let n_target = 4;
    (0..2)
        .map(|r| {
            let mut triples = Vec::new();
            for i in 0..n_source {
                // Every source row gets two entries; values depend on the seed.
                let j1 = (i + r) % n_target;
                let j2 = (i + r + 1 + seed as usize) % n_target;
                let v = 1.0 + ((seed * 31 + (i as u64) * 7 + r as u64) % 13) as f64;
                triples.push((i, j1, v));
                if j2 != j1 {
                    triples.push((i, j2, v / 2.0 + 0.5));
                }
            }
            let dm = DisaggregationMatrix::from_triples(
                format!("r{r}-{seed}"),
                n_source,
                n_target,
                triples,
            )
            .unwrap();
            ReferenceData::from_dm(format!("r{r}-{seed}"), dm).unwrap()
        })
        .collect()
}

#[test]
fn store_survives_many_threads() {
    const THREADS: usize = 8;
    const ITERS: usize = 200;
    const DISTINCT_KEYS: u64 = 6;

    // Room for every distinct key: once warm, all lookups must hit even
    // while eight threads stamp entries concurrently. (Eviction order is
    // covered deterministically by the unit tests in `store.rs`.)
    let store = Arc::new(CrosswalkStore::new(8));
    let prepare_calls = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let prepare_calls = Arc::clone(&prepare_calls);
            thread::spawn(move || {
                let aligner = GeoAlign::new();
                for i in 0..ITERS {
                    let seed = ((t + i) as u64) % DISTINCT_KEYS;
                    let refs = reference_set(seed);
                    let refs_view: Vec<&ReferenceData> = refs.iter().collect();
                    let key = CrosswalkKey::new("zip", format!("county{seed}"), &refs_view);
                    let (prepared, _hit) = store
                        .get_or_insert_with(&key, || {
                            prepare_calls.fetch_add(1, Ordering::Relaxed);
                            aligner.prepare(&refs_view)
                        })
                        .unwrap();
                    // Whatever snapshot we got must be internally consistent
                    // and usable: apply a query and check mass preservation.
                    assert_eq!(prepared.n_source(), 6);
                    assert_eq!(prepared.n_target(), 4);
                    let obj = AggregateVector::new(
                        "o",
                        (0..6).map(|k| 1.0 + k as f64).collect::<Vec<_>>(),
                    )
                    .unwrap();
                    let est = prepared.apply_values(&obj).unwrap();
                    let total: f64 = est.estimate.iter().sum();
                    assert!(
                        (total - obj.total()).abs() < 1e-6 * obj.total(),
                        "mass drifted under concurrency: {total}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = store.stats();
    // Every lookup either hit or missed; nothing lost.
    assert_eq!(stats.hits + stats.misses, (THREADS * ITERS) as u64);
    // Only the distinct keys ever live in the store.
    assert_eq!(store.len() as u64, DISTINCT_KEYS);
    // Once each key is warm every later lookup hits, so hits dominate.
    assert!(stats.hits > stats.misses, "{stats:?}");
    // Cold keys are single-flight: threads racing on a missing key all
    // count a miss but elect one leader to prepare, so prepare calls are
    // bounded by misses — and every distinct key needed at least one.
    let prepares = prepare_calls.load(Ordering::Relaxed) as u64;
    assert!(
        (DISTINCT_KEYS..=stats.misses).contains(&prepares),
        "prepares {prepares} outside [{DISTINCT_KEYS}, {}]",
        stats.misses
    );
}
