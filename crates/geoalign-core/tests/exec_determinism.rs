//! Thread-count invariance of the parallel core paths: the integration
//! pipeline's join and the prepared-crosswalk batch apply must be
//! bit-identical at 1, 2 and 8 threads (DESIGN.md §9), including empty
//! and single-item batches.

use geoalign_core::{GeoAlign, IntegrationPipeline, ReferenceData};
use geoalign_exec::Executor;
use geoalign_partition::{AggregateTable, AggregateVector, DisaggregationMatrix};

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Two references over a 6-source / 3-target world with pseudo-random
/// intersection masses (non-terminating binary fractions, so bitwise
/// agreement is a statement about accumulation order).
fn references(seed: u64) -> Vec<ReferenceData> {
    let mut state = seed;
    (0..2)
        .map(|k| {
            let triples: Vec<(usize, usize, f64)> = (0..6)
                .flat_map(|i| {
                    let a = lcg(&mut state) / 3.0 + 0.01;
                    let b = lcg(&mut state) / 7.0 + 0.01;
                    vec![(i, i % 3, a), (i, (i + 1) % 3, b)]
                })
                .collect();
            let dm = DisaggregationMatrix::from_triples(format!("ref{k}"), 6, 3, triples).unwrap();
            ReferenceData::from_dm(format!("ref{k}"), dm).unwrap()
        })
        .collect()
}

#[test]
fn batch_apply_is_thread_count_invariant() {
    let refs = references(0x5eed);
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let prepared = GeoAlign::new().prepare(&ref_slices).unwrap();

    let mut state = 0x0b5e55ed;
    let objectives: Vec<AggregateVector> = (0..13)
        .map(|i| {
            let values: Vec<f64> = (0..6).map(|_| lcg(&mut state) * 10.0 + 0.1).collect();
            AggregateVector::new(format!("attr{i}"), values).unwrap()
        })
        .collect();

    let reference = prepared
        .apply_batch_with(&objectives, Executor::sequential())
        .unwrap();
    // The batch path agrees with one-at-a-time applies...
    for (est, obj) in reference.iter().zip(&objectives) {
        let single = prepared.apply_values(obj).unwrap();
        assert_eq!(bits(&est.estimate), bits(&single.estimate));
        assert_eq!(bits(&est.weights), bits(&single.weights));
    }
    // ...and with itself at every thread count.
    for threads in THREAD_COUNTS {
        let parallel = prepared
            .apply_batch_with(&objectives, Executor::new(threads))
            .unwrap();
        assert_eq!(reference.len(), parallel.len());
        for (a, b) in reference.iter().zip(&parallel) {
            assert_eq!(bits(&a.estimate), bits(&b.estimate));
            assert_eq!(bits(&a.weights), bits(&b.weights));
        }
    }
}

#[test]
fn batch_apply_edge_batches() {
    let refs = references(0x11);
    let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
    let prepared = GeoAlign::new().prepare(&ref_slices).unwrap();
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        assert!(prepared.apply_batch_with(&[], exec).unwrap().is_empty());
        let one = vec![AggregateVector::new("x", vec![1.0; 6]).unwrap()];
        assert_eq!(prepared.apply_batch_with(&one, exec).unwrap().len(), 1);
        // The first invalid vector (wrong length) decides the error,
        // exactly like a sequential loop.
        let bad = vec![
            AggregateVector::new("ok", vec![1.0; 6]).unwrap(),
            AggregateVector::new("short", vec![1.0; 2]).unwrap(),
        ];
        assert!(prepared.apply_batch_with(&bad, exec).is_err());
    }
}

/// A pipeline holding two systems and a pseudo-random crosswalk.
fn pipeline(seed: u64) -> IntegrationPipeline {
    let mut p = IntegrationPipeline::new();
    p.register_system("zip", ["z0", "z1", "z2", "z3", "z4", "z5"]);
    p.register_system("county", ["A", "B", "C"]);
    for r in references(seed) {
        p.register_reference("zip", "county", r).unwrap();
    }
    p
}

#[test]
fn pipeline_join_is_thread_count_invariant() {
    let p = pipeline(0x7001);
    let mut state: u64 = 0x70_01;
    let mut csvs = Vec::new();
    for t in 0..5 {
        let mut csv = format!("zip,attr{t}\n");
        for z in 0..6 {
            csv.push_str(&format!("z{z},{}\n", lcg(&mut state) * 50.0 + 1.0));
        }
        csvs.push(csv);
    }
    // One table already on the target system rides along as pass-through.
    let county_csv = "county,direct\nA,1.5\nB,2.5\nC,3.25\n".to_owned();
    let mut parsed: Vec<AggregateTable> = csvs
        .iter()
        .map(|c| AggregateTable::parse_csv(c).unwrap())
        .collect();
    parsed.push(AggregateTable::parse_csv(&county_csv).unwrap());
    let tables: Vec<(&str, &AggregateTable)> = parsed
        .iter()
        .enumerate()
        .map(|(i, t)| (if i < 5 { "zip" } else { "county" }, t))
        .collect();

    let reference = p
        .join_with(&tables, "county", Executor::sequential())
        .unwrap();
    for threads in THREAD_COUNTS {
        let parallel = p
            .join_with(&tables, "county", Executor::new(threads))
            .unwrap();
        assert_eq!(reference.columns.len(), parallel.columns.len());
        for (a, b) in reference.columns.iter().zip(&parallel.columns) {
            assert_eq!(a.attribute, b.attribute);
            assert_eq!(bits(&a.values), bits(&b.values));
            assert_eq!(
                a.weights.as_deref().map(bits),
                b.weights.as_deref().map(bits)
            );
        }
    }
    // Empty joins and unknown systems behave identically in parallel.
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        assert!(p.join_with(&[], "county", exec).unwrap().columns.is_empty());
        assert!(p
            .join_with(&[("mars", &parsed[0])], "county", exec)
            .is_err());
    }
}
