//! The GeoAlign algorithm (EDBT 2018) and its evaluation toolkit.
//!
//! GeoAlign realigns an attribute's aggregates from a set of *source*
//! units (e.g. zip codes) to incongruent *target* units (e.g. counties)
//! by learning, at the source level, which convex combination of known
//! *reference* attributes best matches the objective's distribution
//! (Eq. 15), transferring those weights to the references' disaggregation
//! matrices (Eq. 14), and re-aggregating (Eq. 17).
//!
//! # Quickstart
//!
//! ```
//! use geoalign_core::{GeoAlign, ReferenceData};
//! use geoalign_partition::{AggregateVector, DisaggregationMatrix};
//!
//! // One source unit (a zip code) overlapping two target counties, with
//! // a population reference split 10,000 / 15,000 across them.
//! let dm = DisaggregationMatrix::from_triples(
//!     "population", 1, 2, [(0, 0, 10_000.0), (0, 1, 15_000.0)],
//! ).unwrap();
//! let population = ReferenceData::from_dm("population", dm).unwrap();
//!
//! // 100 crimes reported in the zip code; how many per county?
//! let crimes = AggregateVector::new("crimes", vec![100.0]).unwrap();
//! let result = GeoAlign::new().estimate(&crimes, &[&population]).unwrap();
//! assert!((result.estimate[0] - 40.0).abs() < 1e-9);
//! assert!((result.estimate[1] - 60.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod baselines;
pub mod durable;
pub mod error;
pub mod eval;
pub mod interpolator;
mod obs;
pub mod persist;
pub mod pipeline;
pub mod prepare;
pub mod reference;
pub mod store;

pub use align::{GeoAlign, GeoAlignConfig, GeoAlignResult, PhaseTimings};
pub use baselines::{areal_weighting, dasymetric, regression_combiner};
pub use durable::DurableBacking;
pub use error::CoreError;
pub use interpolator::{
    ArealWeightingInterpolator, DasymetricInterpolator, GeoAlignInterpolator, Interpolator,
    RegressionInterpolator,
};
pub use pipeline::{AlignedColumn, IntegrationPipeline, JoinedTable};
pub use prepare::{ApplyScratch, CrosswalkEstimate, PreparedCrosswalk};
pub use reference::{validate_references, ReferenceData};
pub use store::{fingerprint_references, CrosswalkKey, CrosswalkStore, StoreStats};
