//! Baseline interpolators the paper compares against (§4):
//!
//! * the **dasymetric method** — redistribute the objective by the
//!   disaggregation matrix of a *single* known reference attribute
//!   (Langford 2006; Wright 1936);
//! * the **areal weighting method** — the dasymetric method with *area*
//!   as the reference, i.e. the homogeneity assumption (Goodchild & Lam);
//! * an **unconstrained regression** combiner — an ablation showing why
//!   Eq. 15's simplex constraint matters (related-work regression methods
//!   fit unconstrained coefficients).

use crate::error::CoreError;
use crate::reference::{validate_references, ReferenceData};
use geoalign_linalg::{CsrMatrix, DMatrix, HouseholderQr};
use geoalign_partition::{AggregateVector, DisaggregationMatrix};

/// Dasymetric weighting by a single reference (paper §3.3): each source
/// unit's objective mass is split across targets proportionally to the
/// reference's split.
///
/// Source units where the reference has no mass contribute nothing
/// (the method has no information there) — the classic failure mode that
/// motivates multi-reference learning.
pub fn dasymetric(
    objective_source: &AggregateVector,
    reference: &ReferenceData,
) -> Result<Vec<f64>, CoreError> {
    validate_references(objective_source.len(), &[reference])?;
    let dm = reference.dm().matrix();
    let denom = reference.source().values();
    let obj = objective_source.values();
    let mut out = vec![0.0; dm.ncols()];
    for (i, (&oi, &di)) in obj.iter().zip(denom).enumerate() {
        if di <= 0.0 {
            continue;
        }
        let scale = oi / di;
        let (cols, vals) = dm.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            out[j as usize] += scale * v;
        }
    }
    Ok(out)
}

/// Areal weighting (paper §3.3's "special case ... using the disaggregation
/// matrix of area as the reference"): dasymetric weighting with the measure
/// (area / length / volume) disaggregation matrix, i.e. the homogeneity
/// assumption.
pub fn areal_weighting(
    objective_source: &AggregateVector,
    measure_dm: &DisaggregationMatrix,
) -> Result<Vec<f64>, CoreError> {
    let reference = ReferenceData::from_dm(measure_dm.attribute().to_owned(), measure_dm.clone())?;
    dasymetric(objective_source, &reference)
}

/// Unconstrained-regression combiner (ablation): ordinary least squares on
/// the normalized source aggregates with **no** simplex constraint, applied
/// through the same Eq. 14 disaggregation. Coefficients may be negative;
/// resulting matrix entries are clamped at zero and rows renormalized to
/// preserve volume, mirroring what a practitioner would have to bolt on.
pub fn regression_combiner(
    objective_source: &AggregateVector,
    refs: &[&ReferenceData],
) -> Result<Vec<f64>, CoreError> {
    let (n_source, n_target) = validate_references(objective_source.len(), refs)?;
    let columns: Vec<Vec<f64>> = refs.iter().map(|r| r.source().normalized()).collect();
    let a = DMatrix::from_columns(&columns)?;
    let b = objective_source.normalized();
    let coef = match HouseholderQr::new(&a)?.solve(&b) {
        Ok(c) => c,
        // Collinear references: fall back to a uniform mixture.
        Err(geoalign_linalg::LinalgError::Singular) => vec![1.0 / refs.len() as f64; refs.len()],
        Err(e) => return Err(e.into()),
    };

    // Eq. 14 with the raw coefficients, clamping negatives entry-wise.
    let mats: Vec<&CsrMatrix> = refs.iter().map(|r| r.dm().matrix()).collect();
    let combined = CsrMatrix::weighted_sum(&mats, &coef)?;
    let obj = objective_source.values();
    let _ = n_source; // shape validated above; iteration is value-driven
    let mut out = vec![0.0; n_target];
    for (i, &oi) in obj.iter().enumerate() {
        let (cols, vals) = combined.row(i);
        let clamped: Vec<f64> = vals.iter().map(|&v| v.max(0.0)).collect();
        let row_sum: f64 = clamped.iter().sum();
        if row_sum <= 0.0 {
            continue;
        }
        let scale = oi / row_sum;
        for (&j, &v) in cols.iter().zip(&clamped) {
            out[j as usize] += scale * v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::GeoAlign;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn agg(vals: &[f64]) -> AggregateVector {
        AggregateVector::new("obj", vals.to_vec()).unwrap()
    }

    #[test]
    fn dasymetric_proportional_split() {
        let r = make_ref("pop", &[&[10.0, 15.0], &[0.0, 8.0]]);
        let obj = agg(&[100.0, 50.0]);
        let est = dasymetric(&obj, &r).unwrap();
        assert!((est[0] - 40.0).abs() < 1e-12);
        assert!((est[1] - 110.0).abs() < 1e-12);
    }

    #[test]
    fn dasymetric_equals_geoalign_with_one_reference() {
        let r = make_ref(
            "pop",
            &[&[3.0, 1.0, 0.0], &[2.0, 2.0, 5.0], &[0.0, 0.0, 4.0]],
        );
        let obj = agg(&[10.0, 20.0, 30.0]);
        let das = dasymetric(&obj, &r).unwrap();
        let ga = GeoAlign::new().estimate(&obj, &[&r]).unwrap();
        for (d, g) in das.iter().zip(&ga.estimate) {
            assert!((d - g).abs() < 1e-9, "{d} vs {g}");
        }
    }

    #[test]
    fn dasymetric_drops_mass_where_reference_is_blind() {
        // Reference zero at source 1 → its 50 units of objective vanish.
        let r = make_ref("sparse", &[&[1.0, 1.0], &[0.0, 0.0]]);
        let obj = agg(&[10.0, 50.0]);
        let est = dasymetric(&obj, &r).unwrap();
        let total: f64 = est.iter().sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn areal_weighting_is_uniform_by_measure() {
        // Source unit of area 2 split 1.5/0.5 across targets.
        let area =
            DisaggregationMatrix::from_triples("area", 1, 2, [(0, 0, 1.5), (0, 1, 0.5)]).unwrap();
        let obj = agg(&[8.0]);
        let est = areal_weighting(&obj, &area).unwrap();
        assert!((est[0] - 6.0).abs() < 1e-12);
        assert!((est[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn areal_weighting_fails_on_clustered_attribute() {
        // True distribution is fully clustered in target 0, but areas are
        // even — areal weighting must be badly wrong (the paper's headline
        // observation: >15× worse than GeoAlign).
        let area =
            DisaggregationMatrix::from_triples("area", 1, 2, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let pop = make_ref("pop", &[&[100.0, 0.0]]);
        let obj = agg(&[60.0]);
        let aw = areal_weighting(&obj, &area).unwrap();
        let das = dasymetric(&obj, &pop).unwrap();
        let truth = [60.0, 0.0];
        let aw_err: f64 = aw.iter().zip(&truth).map(|(a, t)| (a - t).abs()).sum();
        let das_err: f64 = das.iter().zip(&truth).map(|(a, t)| (a - t).abs()).sum();
        assert!(aw_err > 10.0 * das_err.max(1e-9));
    }

    #[test]
    fn regression_combiner_preserves_volume() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[0.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 0.0], &[1.0, 1.0]]);
        let obj = agg(&[10.0, 20.0, 30.0]);
        let est = regression_combiner(&obj, &[&r1, &r2]).unwrap();
        let total: f64 = est.iter().sum();
        assert!((total - 60.0).abs() < 1e-9);
        assert!(est.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn regression_combiner_handles_collinear_references() {
        let r1 = make_ref("a", &[&[1.0, 1.0], &[2.0, 0.0]]);
        let r2 = make_ref("a2", &[&[2.0, 2.0], &[4.0, 0.0]]); // 2× r1
        let obj = agg(&[4.0, 4.0]);
        let est = regression_combiner(&obj, &[&r1, &r2]).unwrap();
        let total: f64 = est.iter().sum();
        assert!((total - 8.0).abs() < 1e-9);
    }

    #[test]
    fn shape_validation() {
        let r = make_ref("a", &[&[1.0, 1.0]]);
        assert!(dasymetric(&agg(&[1.0, 2.0]), &r).is_err());
    }
}
