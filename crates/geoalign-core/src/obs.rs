//! Library-level metric handles, registered once in the process-global
//! [`Registry`](geoalign_obs::Registry).
//!
//! Handles are cached in `OnceLock` statics so the hot paths pay only the
//! atomic increment, never a registry lookup. Names follow the workspace
//! convention `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8).

use geoalign_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

macro_rules! global_histogram {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Arc<Histogram> {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| Registry::global().histogram($metric, $help))
        }
    };
}

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Cached global handle for the metric named in the body.
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| Registry::global().counter($metric, $help))
        }
    };
}

global_histogram!(
    prepare_micros,
    "geoalign_core_prepare_micros",
    "Wall time of GeoAlign::prepare (Gram matrix + row-sum snapshot)"
);
global_histogram!(
    apply_micros,
    "geoalign_core_apply_micros",
    "Wall time of a prepared-crosswalk apply (weight learning + disaggregation)"
);
global_histogram!(
    solver_iterations,
    "geoalign_core_solver_iterations",
    "Iterations taken by the Eq. 15 simplex least-squares solver"
);
global_histogram!(
    solver_support_size,
    "geoalign_core_solver_support_size",
    "Active-set size of the learned weights (references with nonzero beta)"
);
global_histogram!(
    incremental_prepare_micros,
    "geoalign_core_incremental_prepare_micros",
    "Wall time of an incremental prepared-crosswalk update (one reference delta)"
);
global_counter!(
    incremental_rows,
    "geoalign_core_incremental_prepare_rows_total",
    "Design-matrix rows touched by incremental prepared-crosswalk updates"
);
global_counter!(
    store_hits,
    "geoalign_core_store_hits_total",
    "CrosswalkStore lookups served from cache"
);
global_counter!(
    store_misses,
    "geoalign_core_store_misses_total",
    "CrosswalkStore lookups that found no entry"
);
global_counter!(
    store_evictions,
    "geoalign_core_store_evictions_total",
    "CrosswalkStore entries evicted to stay within capacity"
);
global_counter!(
    store_coalesced,
    "geoalign_core_store_coalesced_total",
    "CrosswalkStore lookups that waited on another thread's in-flight prepare"
);
global_counter!(
    durable_persist_errors,
    "geoalign_core_durable_persist_errors_total",
    "Background persistence jobs whose durable write failed"
);
global_counter!(
    durable_decode_errors,
    "geoalign_core_durable_decode_errors_total",
    "Durable read-throughs whose payload failed to decode (degraded to recompute)"
);

/// Records the Eq. 15 solver outcome: iteration count and the number of
/// references carrying weight (active-set size).
pub(crate) fn record_solver(iterations: usize, beta: &[f64]) {
    solver_iterations().record_value(iterations as u64);
    let support = beta.iter().filter(|&&b| b > 1e-12).count();
    solver_support_size().record_value(support as u64);
}
