//! A sharded, concurrency-friendly cache of [`PreparedCrosswalk`]s.
//!
//! The serving layer answers many crosswalk queries against few distinct
//! (source system, target system, reference set) combinations, so the
//! expensive prepare half of the prepare/apply split is cached here.
//! Entries are keyed by the two system names plus a fingerprint of the
//! reference set, so re-registering different references under the same
//! system pair can never serve a stale snapshot.
//!
//! The map is split into [`SHARDS`] independent `RwLock`ed shards hashed
//! by key, so concurrent readers on different crosswalks never contend on
//! one lock, and readers of the *same* crosswalk share a read lock.
//! Hit/miss/eviction counters are lock-free atomics. Eviction is
//! approximate LRU over last-used stamps from a global atomic clock.

use crate::durable::DurableBacking;
use crate::error::CoreError;
use crate::prepare::PreparedCrosswalk;
use crate::reference::ReferenceData;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Number of independent lock shards.
const SHARDS: usize = 16;

/// Identity of one cached crosswalk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CrosswalkKey {
    /// Name of the source unit system (e.g. `"zip"`).
    pub source: String,
    /// Name of the target unit system (e.g. `"county"`).
    pub target: String,
    /// Fingerprint of the exact reference set the snapshot was prepared
    /// from (see [`fingerprint_references`]).
    pub fingerprint: u64,
}

impl CrosswalkKey {
    /// Key for `source → target` over the given reference set.
    pub fn new(
        source: impl Into<String>,
        target: impl Into<String>,
        refs: &[&ReferenceData],
    ) -> Self {
        CrosswalkKey {
            source: source.into(),
            target: target.into(),
            fingerprint: fingerprint_references(refs),
        }
    }
}

/// Content fingerprint of a reference set: FNV-1a over each reference's
/// name, dimensions, source aggregates, and every disaggregation-matrix
/// entry (as exact f64 bit patterns). Order-sensitive — the same
/// references supplied in a different order learn weights in a different
/// order and are deliberately treated as a different crosswalk.
pub fn fingerprint_references(refs: &[&ReferenceData]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(refs.len() as u64).to_le_bytes());
    for r in refs {
        eat(r.name().as_bytes());
        eat(&[0xff]); // name terminator so "ab"+"c" != "a"+"bc"
        eat(&(r.n_source() as u64).to_le_bytes());
        eat(&(r.n_target() as u64).to_le_bytes());
        for v in r.source().values() {
            eat(&v.to_bits().to_le_bytes());
        }
        for (i, j, v) in r.dm().matrix().iter() {
            eat(&(i as u64).to_le_bytes());
            eat(&(j as u64).to_le_bytes());
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

struct Entry {
    prepared: Arc<PreparedCrosswalk>,
    last_used: AtomicU64,
}

/// One in-flight prepare that threads racing on the same cold key wait on
/// (single-flight coalescing). `done` flips to `true` when the leading
/// thread finishes — successfully or not — and the condvar wakes waiters.
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Counter snapshot of a [`CrosswalkStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Lookups that waited on another thread's in-flight prepare instead
    /// of preparing themselves (single-flight coalescing).
    pub coalesced: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl StoreStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded concurrent cache of prepared crosswalks. All methods take
/// `&self`; the store is meant to be shared as an `Arc` across serving
/// threads.
pub struct CrosswalkStore {
    shards: Vec<RwLock<HashMap<CrosswalkKey, Entry>>>,
    /// Prepares currently in flight, for single-flight coalescing.
    flights: Mutex<HashMap<CrosswalkKey, Arc<Flight>>>,
    /// Optional durable tier: cold misses read through to disk before
    /// recomputing, and fresh prepares are written behind to it.
    backing: Option<Arc<DurableBacking>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for CrosswalkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CrosswalkStore")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl CrosswalkStore {
    /// Store holding at most `capacity` prepared crosswalks (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CrosswalkStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            flights: Mutex::new(HashMap::new()),
            backing: None,
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// [`CrosswalkStore::new`] with a durable backing tier. Cold misses
    /// in [`CrosswalkStore::get_or_insert_with`] consult the disk store
    /// before recomputing (a warm hit counts in
    /// `geoalign_store_warm_hits_total`), and freshly prepared snapshots
    /// are handed to the backing's write-behind persister.
    pub fn with_backing(capacity: usize, backing: Arc<DurableBacking>) -> Self {
        let mut store = Self::new(capacity);
        store.backing = Some(backing);
        store
    }

    /// The durable backing tier, when one is attached.
    pub fn backing(&self) -> Option<&Arc<DurableBacking>> {
        self.backing.as_ref()
    }

    fn shard(&self, key: &CrosswalkKey) -> &RwLock<HashMap<CrosswalkKey, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a prepared crosswalk, counting a hit or miss.
    pub fn get(&self, key: &CrosswalkKey) -> Option<Arc<PreparedCrosswalk>> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        match shard.get(key) {
            Some(entry) => {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::store_hits().inc();
                Some(Arc::clone(&entry.prepared))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::obs::store_misses().inc();
                None
            }
        }
    }

    /// Inserts (or replaces) a prepared crosswalk, evicting the
    /// least-recently-used entries if the store grows past capacity.
    pub fn insert(&self, key: CrosswalkKey, prepared: Arc<PreparedCrosswalk>) {
        let entry = Entry {
            prepared,
            last_used: AtomicU64::new(self.tick()),
        };
        {
            let mut shard = self.shard(&key).write().unwrap_or_else(|e| e.into_inner());
            shard.insert(key, entry);
        }
        self.evict_over_capacity();
    }

    /// Cache lookup that refreshes the LRU stamp but does not count a hit
    /// or miss — used by the single-flight re-checks, whose initial
    /// [`CrosswalkStore::get`] already counted the lookup.
    fn lookup_quiet(&self, key: &CrosswalkKey) -> Option<Arc<PreparedCrosswalk>> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        shard.get(key).map(|entry| {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            Arc::clone(&entry.prepared)
        })
    }

    /// Cache-through lookup: returns the cached snapshot or prepares one
    /// with `prepare`, stores it, and returns it. The boolean is `true`
    /// when the snapshot came from the cache (including after waiting on
    /// another thread's prepare).
    ///
    /// Cold keys are **single-flight**: threads racing on the same missing
    /// key elect one leader to run `prepare` (outside every lock, so a
    /// slow prepare never blocks readers of other keys) while the rest
    /// wait on it and are counted in `geoalign_core_store_coalesced_total`.
    /// If the leader fails or panics its error is its own; waiters retry,
    /// electing a new leader, so one bad prepare never wedges the key.
    pub fn get_or_insert_with<F>(
        &self,
        key: &CrosswalkKey,
        prepare: F,
    ) -> Result<(Arc<PreparedCrosswalk>, bool), CoreError>
    where
        F: FnOnce() -> Result<PreparedCrosswalk, CoreError>,
    {
        if let Some(found) = self.get(key) {
            return Ok((found, true));
        }
        let mut prepare = Some(prepare);
        loop {
            // Decide leader vs. waiter under the flights lock; the leader
            // may have landed its insert between our miss and here, so
            // re-check the cache first.
            enum Role {
                Leader(Arc<Flight>),
                Waiter(Arc<Flight>),
            }
            let role = {
                let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(found) = self.lookup_quiet(key) {
                    return Ok((found, true));
                }
                match flights.get(key) {
                    Some(flight) => Role::Waiter(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::default());
                        flights.insert(key.clone(), Arc::clone(&flight));
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Leader(flight) => {
                    // The guard lands even on error or panic, so waiters
                    // always wake up and can retry.
                    let _landing = FlightLanding {
                        store: self,
                        key,
                        flight: &flight,
                    };
                    // Read-through: a snapshot persisted by an earlier
                    // process serves this miss without re-preparing.
                    if let Some(revived) =
                        self.backing.as_ref().and_then(|b| b.lookup_prepared(key))
                    {
                        self.insert(key.clone(), Arc::clone(&revived));
                        return Ok((revived, true));
                    }
                    let prepare = prepare.take().expect("a leader runs the closure only once");
                    let snapshot = Arc::new(prepare()?);
                    self.insert(key.clone(), Arc::clone(&snapshot));
                    // Write-behind: persist off the request path.
                    if let Some(backing) = &self.backing {
                        backing.persist_prepared(key, &snapshot);
                    }
                    return Ok((snapshot, false));
                }
                Role::Waiter(flight) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    crate::obs::store_coalesced().inc();
                    let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
                    while !*done {
                        done = flight.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                    }
                    drop(done);
                    if let Some(found) = self.lookup_quiet(key) {
                        return Ok((found, true));
                    }
                    // The leader failed; loop and possibly lead ourselves.
                }
            }
        }
    }

    /// Drops the entry for `key`, if present. Used when a reference set
    /// is re-registered.
    pub fn invalidate(&self, key: &CrosswalkKey) -> bool {
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        shard.remove(key).is_some()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Evicts approximate-LRU entries until the store fits its capacity.
    fn evict_over_capacity(&self) {
        while self.len() > self.capacity {
            // Find the globally oldest stamp under read locks...
            let mut victim: Option<(usize, CrosswalkKey, u64)> = None;
            for (s, shard) in self.shards.iter().enumerate() {
                let shard = shard.read().unwrap_or_else(|e| e.into_inner());
                for (key, entry) in shard.iter() {
                    let stamp = entry.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(_, _, best)| stamp < *best) {
                        victim = Some((s, key.clone(), stamp));
                    }
                }
            }
            // ...then remove it under the shard's write lock. A concurrent
            // touch between the scan and the removal makes this merely
            // approximate LRU, which is fine for a cache.
            let Some((s, key, _)) = victim else { break };
            let removed = {
                let mut shard = self.shards[s].write().unwrap_or_else(|e| e.into_inner());
                shard.remove(&key).is_some()
            };
            if removed {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                crate::obs::store_evictions().inc();
            }
        }
    }
}

/// Drop guard of a single-flight leader: deregisters the flight and wakes
/// every waiter, whether the prepare returned, errored, or panicked.
struct FlightLanding<'a> {
    store: &'a CrosswalkStore,
    key: &'a CrosswalkKey,
    flight: &'a Arc<Flight>,
}

impl Drop for FlightLanding<'_> {
    fn drop(&mut self) {
        let mut flights = self.store.flights.lock().unwrap_or_else(|e| e.into_inner());
        flights.remove(self.key);
        drop(flights);
        let mut done = self.flight.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        self.flight.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::GeoAlign;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, scale: f64) -> ReferenceData {
        let dm = DisaggregationMatrix::from_triples(
            name,
            2,
            2,
            [(0, 0, scale), (0, 1, 2.0 * scale), (1, 1, 3.0 * scale)],
        )
        .unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn prepared(r: &ReferenceData) -> Arc<PreparedCrosswalk> {
        Arc::new(GeoAlign::new().prepare(&[r]).unwrap())
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let a = make_ref("pop", 1.0);
        let b = make_ref("pop", 2.0); // same name, different values
        let c = make_ref("jobs", 1.0); // different name, same values
        let fa = fingerprint_references(&[&a]);
        assert_eq!(fa, fingerprint_references(&[&a]));
        assert_ne!(fa, fingerprint_references(&[&b]));
        assert_ne!(fa, fingerprint_references(&[&c]));
        assert_ne!(
            fingerprint_references(&[&a, &c]),
            fingerprint_references(&[&c, &a])
        );
    }

    #[test]
    fn hit_and_miss_counters() {
        let store = CrosswalkStore::new(8);
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        assert!(store.get(&key).is_none());
        store.insert(key.clone(), prepared(&r));
        assert!(store.get(&key).is_some());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let store = CrosswalkStore::new(2);
        let refs: Vec<ReferenceData> = (0..5)
            .map(|k| make_ref(&format!("r{k}"), k as f64 + 1.0))
            .collect();
        let keys: Vec<CrosswalkKey> = refs
            .iter()
            .map(|r| CrosswalkKey::new("zip", "county", &[r]))
            .collect();
        store.insert(keys[0].clone(), prepared(&refs[0]));
        store.insert(keys[1].clone(), prepared(&refs[1]));
        // Touch key 0 so key 1 is the LRU when key 2 arrives.
        assert!(store.get(&keys[0]).is_some());
        store.insert(keys[2].clone(), prepared(&refs[2]));
        assert_eq!(store.len(), 2);
        assert!(store.get(&keys[1]).is_none(), "LRU entry should be evicted");
        assert!(store.get(&keys[0]).is_some());
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        store.insert(keys[3].clone(), prepared(&refs[3]));
        store.insert(keys[4].clone(), prepared(&refs[4]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 3);
    }

    #[test]
    fn get_or_insert_with_prepares_once_per_key() {
        let store = CrosswalkStore::new(4);
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let ga = GeoAlign::new();
        let (first, hit1) = store
            .get_or_insert_with(&key, || ga.prepare(&[&r]))
            .unwrap();
        assert!(!hit1);
        let (second, hit2) = store
            .get_or_insert_with(&key, || panic!("must not re-prepare"))
            .unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn racing_cold_lookups_coalesce_to_one_prepare() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;
        use std::time::Duration;

        let store = CrosswalkStore::new(4);
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let calls = AtomicUsize::new(0);
        let (leader_entered_tx, leader_entered_rx) = mpsc::channel::<()>();

        let (store, key, calls, r) = (&store, &key, &calls, &r);
        let (first, second) = std::thread::scope(|s| {
            let leader = s.spawn(move || {
                let (p, hit) = store
                    .get_or_insert_with(key, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        leader_entered_tx.send(()).unwrap();
                        // Hold the flight open until the other thread is
                        // provably waiting on it (bounded, ~1 s worst case).
                        for _ in 0..1000 {
                            if store.stats().coalesced >= 1 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        GeoAlign::new().prepare(&[r])
                    })
                    .unwrap();
                assert!(!hit, "the leader prepared, it did not hit");
                p
            });
            let waiter = s.spawn(move || {
                // Only start once the leader is inside its prepare, so this
                // lookup must coalesce rather than lead or hit.
                leader_entered_rx.recv().unwrap();
                let (p, hit) = store
                    .get_or_insert_with(key, || panic!("the closure must run exactly once"))
                    .unwrap();
                assert!(hit, "the waiter is served from the leader's insert");
                p
            });
            (leader.join().unwrap(), waiter.join().unwrap())
        });

        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.stats().coalesced, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn failed_leader_does_not_wedge_the_key() {
        let store = CrosswalkStore::new(4);
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let err = store
            .get_or_insert_with(&key, || Err(CoreError::NoReferences))
            .unwrap_err();
        assert!(matches!(err, CoreError::NoReferences));
        // The flight was cleaned up: a later lookup prepares normally.
        let (p, hit) = store
            .get_or_insert_with(&key, || GeoAlign::new().prepare(&[&r]))
            .unwrap();
        assert!(!hit);
        assert_eq!(p.n_source(), 2);
    }

    #[test]
    fn evictions_are_counted_exactly_once_per_removed_entry() {
        // Regression guard for the eviction metric: the counter (and its
        // obs twin) must tick exactly once per entry actually removed —
        // never for replacements, invalidations, or failed prepares.
        let store = CrosswalkStore::new(3);
        let refs: Vec<ReferenceData> = (0..10)
            .map(|k| make_ref(&format!("r{k}"), k as f64 + 1.0))
            .collect();
        let obs_before = crate::obs::store_evictions().get();
        for r in &refs {
            let key = CrosswalkKey::new("zip", "county", &[r]);
            store.insert(key, prepared(r));
        }
        // 10 inserts into capacity 3: exactly 7 entries were evicted.
        let stats = store.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 7);
        assert_eq!(crate::obs::store_evictions().get() - obs_before, 7);

        // Replacing an existing key is not an eviction.
        let key0 = CrosswalkKey::new("zip", "county", &[&refs[9]]);
        store.insert(key0.clone(), prepared(&refs[9]));
        assert_eq!(store.stats().evictions, 7);

        // Invalidation is not an eviction.
        store.invalidate(&key0);
        assert_eq!(store.stats().evictions, 7);

        // A failed single-flight leader inserts nothing and therefore
        // evicts nothing.
        let cold = CrosswalkKey::new("tract", "county", &[&refs[0]]);
        let _ = store.get_or_insert_with(&cold, || Err(CoreError::NoReferences));
        assert_eq!(store.stats().evictions, 7);
        assert_eq!(crate::obs::store_evictions().get() - obs_before, 7);
    }

    #[test]
    fn concurrent_eviction_never_double_counts() {
        // Hammer a capacity-1 store from several threads; every eviction
        // decision races with the others. Conservation must hold exactly:
        // entries inserted == entries evicted + entries still present.
        let store = CrosswalkStore::new(1);
        let refs: Vec<ReferenceData> = (0..8)
            .map(|k| make_ref(&format!("c{k}"), k as f64 + 1.0))
            .collect();
        let per_thread = 5usize;
        std::thread::scope(|s| {
            for chunk in refs.chunks(2) {
                let (store, chunk) = (&store, chunk);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        for r in chunk {
                            let key = CrosswalkKey::new("zip", "county", &[r]);
                            store.insert(key, prepared(r));
                        }
                    }
                });
            }
        });
        let stats = store.stats();
        // 8 distinct keys re-inserted 5 times each: a re-insert of a key
        // still cached replaces (no eviction); each eviction removed one
        // entry. Exact conservation: what went in and is gone was evicted.
        assert!(stats.entries <= 1 + 7); // capacity 1, transiently above
        assert!(stats.evictions >= 7, "at least 7 distinct keys displaced");
        assert!(
            stats.evictions <= (per_thread * 8) as u64 - stats.entries as u64,
            "counted more evictions ({}) than entries that could have left",
            stats.evictions
        );
    }

    #[test]
    fn backing_read_through_and_write_behind() {
        let dir =
            std::env::temp_dir().join(format!("geoalign-core-backing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = geoalign_store::StoreOptions {
            segment_max_bytes: 64 << 20,
            fsync: false,
        };
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        {
            let backing =
                Arc::new(crate::durable::DurableBacking::open_with(&dir, opts.clone()).unwrap());
            let store = CrosswalkStore::with_backing(4, Arc::clone(&backing));
            let (_, hit) = store
                .get_or_insert_with(&key, || GeoAlign::new().prepare(&[&r]))
                .unwrap();
            assert!(!hit, "first compute is a genuine miss");
            backing.flush();
        }
        // Fresh cache, same disk: the miss is served from the store
        // without running the prepare closure.
        let backing = Arc::new(crate::durable::DurableBacking::open_with(&dir, opts).unwrap());
        let store = CrosswalkStore::with_backing(4, backing);
        let warm_before = geoalign_store::obs::warm_hits().get();
        let (revived, hit) = store
            .get_or_insert_with(&key, || panic!("warm start must not re-prepare"))
            .unwrap();
        assert!(hit, "disk revival counts as a hit");
        assert_eq!(revived.n_source(), 2);
        assert!(geoalign_store::obs::warm_hits().get() > warm_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalidate_removes_entries() {
        let store = CrosswalkStore::new(4);
        let r = make_ref("pop", 1.0);
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        store.insert(key.clone(), prepared(&r));
        assert!(store.invalidate(&key));
        assert!(!store.invalidate(&key));
        assert!(store.is_empty());
    }
}
