//! A uniform interface over interpolation methods, used by the evaluation
//! harness to compare GeoAlign with the baselines on equal footing.

use crate::align::{GeoAlign, GeoAlignConfig};
use crate::baselines;
use crate::error::CoreError;
use crate::reference::ReferenceData;
use geoalign_partition::{AggregateVector, DisaggregationMatrix};

/// An aggregate interpolation method: estimates the objective's target
/// aggregates from its source aggregates and a set of references.
pub trait Interpolator {
    /// Display name used in reports (e.g. `"GeoAlign"`,
    /// `"dasymetric(Population)"`).
    fn name(&self) -> String;

    /// Runs the method. Implementations may use all, one, or none of the
    /// supplied references.
    fn estimate(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError>;
}

/// [`Interpolator`] adapter for [`GeoAlign`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GeoAlignInterpolator {
    config: GeoAlignConfig,
}

impl GeoAlignInterpolator {
    /// Adapter with the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adapter with an explicit configuration.
    pub fn with_config(config: GeoAlignConfig) -> Self {
        Self { config }
    }
}

impl Interpolator for GeoAlignInterpolator {
    fn name(&self) -> String {
        "GeoAlign".to_owned()
    }

    fn estimate(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError> {
        Ok(GeoAlign::with_config(self.config)
            .estimate(objective_source, refs)?
            .estimate)
    }
}

/// [`Interpolator`] adapter for the single-reference dasymetric method:
/// selects its reference *by name* from the supplied set, so the
/// cross-validation harness can exclude it when it coincides with the test
/// dataset (paper §4.1).
#[derive(Debug, Clone)]
pub struct DasymetricInterpolator {
    reference_name: String,
}

impl DasymetricInterpolator {
    /// Dasymetric weighting by the named reference.
    pub fn new(reference_name: impl Into<String>) -> Self {
        Self {
            reference_name: reference_name.into(),
        }
    }

    /// The reference this method redistributes by.
    pub fn reference_name(&self) -> &str {
        &self.reference_name
    }
}

impl Interpolator for DasymetricInterpolator {
    fn name(&self) -> String {
        format!("dasymetric({})", self.reference_name)
    }

    fn estimate(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError> {
        let r = refs
            .iter()
            .find(|r| r.name() == self.reference_name)
            .ok_or_else(|| CoreError::UnknownReference {
                name: self.reference_name.clone(),
            })?;
        baselines::dasymetric(objective_source, r)
    }
}

/// [`Interpolator`] adapter for areal weighting. Owns its measure (area)
/// disaggregation matrix and ignores the supplied references.
#[derive(Debug, Clone)]
pub struct ArealWeightingInterpolator {
    measure_dm: DisaggregationMatrix,
}

impl ArealWeightingInterpolator {
    /// Areal weighting with the given measure disaggregation matrix
    /// (typically [`geoalign_partition::Overlay::measure_dm`]).
    pub fn new(measure_dm: DisaggregationMatrix) -> Self {
        Self { measure_dm }
    }
}

impl Interpolator for ArealWeightingInterpolator {
    fn name(&self) -> String {
        "areal weighting".to_owned()
    }

    fn estimate(
        &self,
        objective_source: &AggregateVector,
        _refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError> {
        baselines::areal_weighting(objective_source, &self.measure_dm)
    }
}

/// [`Interpolator`] adapter for the unconstrained-regression ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegressionInterpolator;

impl Interpolator for RegressionInterpolator {
    fn name(&self) -> String {
        "regression (unconstrained)".to_owned()
    }

    fn estimate(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError> {
        baselines::regression_combiner(objective_source, refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    #[test]
    fn adapters_agree_with_direct_calls() {
        let r = make_ref("pop", &[&[10.0, 15.0], &[2.0, 8.0]]);
        let obj = AggregateVector::new("o", vec![100.0, 50.0]).unwrap();
        let refs = [&r];

        let ga = GeoAlignInterpolator::new();
        assert_eq!(ga.name(), "GeoAlign");
        let direct = crate::align::GeoAlign::new()
            .estimate(&obj, &refs)
            .unwrap()
            .estimate;
        assert_eq!(ga.estimate(&obj, &refs).unwrap(), direct);

        let das = DasymetricInterpolator::new("pop");
        assert_eq!(das.name(), "dasymetric(pop)");
        assert_eq!(
            das.estimate(&obj, &refs).unwrap(),
            crate::baselines::dasymetric(&obj, &r).unwrap()
        );
    }

    #[test]
    fn dasymetric_adapter_requires_its_reference() {
        let r = make_ref("pop", &[&[1.0, 1.0]]);
        let obj = AggregateVector::new("o", vec![2.0]).unwrap();
        let das = DasymetricInterpolator::new("households");
        assert!(matches!(
            das.estimate(&obj, &[&r]),
            Err(CoreError::UnknownReference { .. })
        ));
        assert_eq!(das.reference_name(), "households");
    }

    #[test]
    fn areal_adapter_ignores_references() {
        let area =
            DisaggregationMatrix::from_triples("area", 1, 2, [(0, 0, 3.0), (0, 1, 1.0)]).unwrap();
        let aw = ArealWeightingInterpolator::new(area);
        let obj = AggregateVector::new("o", vec![8.0]).unwrap();
        let est = aw.estimate(&obj, &[]).unwrap();
        assert!((est[0] - 6.0).abs() < 1e-12);
        assert_eq!(aw.name(), "areal weighting");
    }

    #[test]
    fn regression_adapter_runs() {
        let r1 = make_ref("a", &[&[1.0, 0.0], &[0.0, 2.0]]);
        let r2 = make_ref("b", &[&[0.5, 0.5], &[1.0, 1.0]]);
        let obj = AggregateVector::new("o", vec![3.0, 3.0]).unwrap();
        let reg = RegressionInterpolator;
        let est = reg.estimate(&obj, &[&r1, &r2]).unwrap();
        let total: f64 = est.iter().sum();
        assert!((total - 6.0).abs() < 1e-9);
        assert!(reg.name().contains("regression"));
    }
}
