//! Error type for the algorithm layer.

use std::fmt;

/// Errors raised by interpolators and the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No reference attributes were supplied where at least one is needed.
    NoReferences,
    /// A named reference was not found in the supplied set.
    UnknownReference {
        /// The requested reference name.
        name: String,
    },
    /// Objective and references disagree on the number of source units.
    SourceMismatch {
        /// Number of source units of the objective.
        objective: usize,
        /// Number of source units of the offending reference.
        reference: usize,
        /// Name of the offending reference.
        name: String,
    },
    /// Two references disagree on the number of target units.
    TargetMismatch {
        /// Target units of the first reference.
        left: usize,
        /// Target units of the offending reference.
        right: usize,
        /// Name of the offending reference.
        name: String,
    },
    /// A reference's aggregate vector length does not match its own
    /// disaggregation matrix.
    InconsistentReference {
        /// Name of the offending reference.
        name: String,
    },
    /// The evaluation harness needs at least this many datasets.
    NotEnoughDatasets {
        /// Minimum required.
        needed: usize,
        /// Actually available.
        got: usize,
    },
    /// Propagated partition-layer failure.
    Partition(geoalign_partition::PartitionError),
    /// Propagated linear-algebra failure.
    Linalg(geoalign_linalg::LinalgError),
    /// A parallel job failed (a task panicked).
    Exec(geoalign_exec::ExecError),
    /// A persistence failure: the durable store errored, or on-disk bytes
    /// failed to decode back into domain objects.
    Persist {
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoReferences => write!(f, "at least one reference attribute is required"),
            CoreError::UnknownReference { name } => write!(f, "unknown reference '{name}'"),
            CoreError::SourceMismatch { objective, reference, name } => write!(
                f,
                "reference '{name}' covers {reference} source units but the objective covers {objective}"
            ),
            CoreError::TargetMismatch { left, right, name } => write!(
                f,
                "reference '{name}' covers {right} target units but others cover {left}"
            ),
            CoreError::InconsistentReference { name } => write!(
                f,
                "reference '{name}' has a disaggregation matrix inconsistent with its aggregate vector"
            ),
            CoreError::NotEnoughDatasets { needed, got } => {
                write!(f, "need at least {needed} datasets, got {got}")
            }
            CoreError::Partition(e) => write!(f, "partition error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::Persist { detail } => write!(f, "persistence error: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Partition(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            CoreError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geoalign_partition::PartitionError> for CoreError {
    fn from(e: geoalign_partition::PartitionError) -> Self {
        CoreError::Partition(e)
    }
}

impl From<geoalign_linalg::LinalgError> for CoreError {
    fn from(e: geoalign_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<geoalign_exec::ExecError> for CoreError {
    fn from(e: geoalign_exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = CoreError::UnknownReference { name: "pop".into() };
        assert!(e.to_string().contains("pop"));
        let e = CoreError::SourceMismatch {
            objective: 3,
            reference: 5,
            name: "r".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e: CoreError = geoalign_linalg::LinalgError::Singular.into();
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
