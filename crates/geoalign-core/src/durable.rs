//! The durable backing tier of the crosswalk cache: a
//! [`geoalign_store::Store`] plus a single-worker background persister.
//!
//! The cache's miss path is latency-critical, so writes to disk are
//! asynchronous: `persist_prepared` encodes nothing on the calling
//! thread — it hands the `Arc` snapshot to a one-worker
//! [`WorkerPool`](geoalign_exec::WorkerPool) that encodes, appends to
//! the WAL, and fsyncs off the request path. [`DurableBacking::flush`]
//! waits for the queue to drain, which is what makes "checkpoint then
//! kill -9" deterministic in tests and in `POST /checkpoint`.
//!
//! Reads (`lookup_prepared`) are synchronous: they only run on a cache
//! miss, where a disk read + decode is still orders of magnitude cheaper
//! than re-running prepare.

use crate::error::CoreError;
use crate::persist;
use crate::prepare::PreparedCrosswalk;
use crate::store::CrosswalkKey;
use geoalign_store::{Store, StoreOptions};
use std::sync::{Arc, Condvar, Mutex};

/// One queued persistence job: the store key plus the snapshot to encode.
struct PersistJob {
    key: String,
    prepared: Arc<PreparedCrosswalk>,
}

/// Shared write-behind state: how many jobs are queued or running, and a
/// condvar to wake `flush` when the count reaches zero.
#[derive(Default)]
struct Pending {
    count: Mutex<usize>,
    drained: Condvar,
}

/// A durable store plus the background persister that feeds it.
pub struct DurableBacking {
    store: Arc<Store>,
    pending: Arc<Pending>,
    // Option only so Drop can take and join the pool.
    pool: Option<geoalign_exec::WorkerPool<PersistJob>>,
}

impl std::fmt::Debug for DurableBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableBacking")
            .field("dir", &self.store.dir())
            .field("entries", &self.store.len())
            .finish()
    }
}

impl DurableBacking {
    /// Opens (or creates) the durable store at `dir` and starts the
    /// persister. Recovery — snapshot load, WAL replay, torn-tail repair
    /// — happens here; inspect it via [`DurableBacking::store`] and
    /// [`geoalign_store::Store::recovery`].
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self, CoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`DurableBacking::open`] with explicit store options.
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        opts: StoreOptions,
    ) -> Result<Self, CoreError> {
        let store = Arc::new(Store::open_with(dir, opts).map_err(|e| CoreError::Persist {
            detail: e.to_string(),
        })?);
        let pending = Arc::new(Pending::default());
        let pool = {
            let store = Arc::clone(&store);
            let pending = Arc::clone(&pending);
            geoalign_exec::WorkerPool::new("store-persist", 1, move |job: PersistJob| {
                let bytes = persist::encode_prepared(&job.prepared);
                if store.put(&job.key, bytes).is_err() {
                    crate::obs::durable_persist_errors().inc();
                }
                let mut count = pending.count.lock().unwrap_or_else(|e| e.into_inner());
                *count -= 1;
                if *count == 0 {
                    pending.drained.notify_all();
                }
            })
        };
        Ok(DurableBacking {
            store,
            pending,
            pool: Some(pool),
        })
    }

    /// The underlying store (for direct puts of systems and references,
    /// checkpointing, and recovery inspection).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Read-through: revives a prepared crosswalk from disk. Returns
    /// `None` when absent; a present-but-undecodable payload also returns
    /// `None` (counted in `geoalign_core_durable_decode_errors_total`) so
    /// a damaged entry degrades to a recompute, never an outage.
    pub fn lookup_prepared(&self, key: &CrosswalkKey) -> Option<Arc<PreparedCrosswalk>> {
        let bytes = self.store.get(&persist::prepared_key(key))?;
        match persist::decode_prepared(&bytes) {
            Ok(prepared) => {
                geoalign_store::obs::warm_hits().inc();
                Some(Arc::new(prepared))
            }
            Err(_) => {
                crate::obs::durable_decode_errors().inc();
                None
            }
        }
    }

    /// Write-behind: queues the snapshot for encoding and a durable WAL
    /// append on the persister thread. Returns immediately.
    pub fn persist_prepared(&self, key: &CrosswalkKey, prepared: &Arc<PreparedCrosswalk>) {
        let job = PersistJob {
            key: persist::prepared_key(key),
            prepared: Arc::clone(prepared),
        };
        {
            let mut count = self.pending.count.lock().unwrap_or_else(|e| e.into_inner());
            *count += 1;
        }
        if let Some(pool) = &self.pool {
            if !pool.submit(job) {
                // The pool is shutting down; the job will never run.
                let mut count = self.pending.count.lock().unwrap_or_else(|e| e.into_inner());
                *count -= 1;
                if *count == 0 {
                    self.pending.drained.notify_all();
                }
            }
        }
    }

    /// Blocks until every queued persistence job has committed. After
    /// `flush` returns, a `kill -9` loses nothing that was queued before
    /// the call.
    pub fn flush(&self) {
        let mut count = self.pending.count.lock().unwrap_or_else(|e| e.into_inner());
        while *count > 0 {
            count = self
                .pending
                .drained
                .wait(count)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Flushes the persister queue, then checkpoints the store (snapshot
    /// + WAL compaction).
    pub fn checkpoint(&self) -> Result<geoalign_store::CheckpointReport, CoreError> {
        self.flush();
        self.store.checkpoint().map_err(|e| CoreError::Persist {
            detail: e.to_string(),
        })
    }
}

impl Drop for DurableBacking {
    fn drop(&mut self) {
        self.flush();
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::GeoAlign;
    use crate::reference::ReferenceData;
    use geoalign_partition::DisaggregationMatrix;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("geoalign-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast() -> StoreOptions {
        StoreOptions {
            segment_max_bytes: 64 << 20,
            fsync: false,
        }
    }

    fn make_ref(name: &str) -> ReferenceData {
        let dm =
            DisaggregationMatrix::from_triples(name, 2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
                .unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    #[test]
    fn persist_flush_lookup_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let r = make_ref("pop");
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let prepared = Arc::new(GeoAlign::new().prepare(&[&r]).unwrap());
        {
            let backing = DurableBacking::open_with(&dir, fast()).unwrap();
            assert!(backing.lookup_prepared(&key).is_none());
            backing.persist_prepared(&key, &prepared);
            backing.flush();
            assert!(backing.lookup_prepared(&key).is_some());
        }
        // Reopen: the entry survived and applies identically.
        let backing = DurableBacking::open_with(&dir, fast()).unwrap();
        let revived = backing.lookup_prepared(&key).unwrap();
        let obj = geoalign_partition::AggregateVector::new("o", vec![5.0, 7.0]).unwrap();
        let cold = prepared.apply_values(&obj).unwrap();
        let warm = revived.apply_values(&obj).unwrap();
        for (x, y) in warm.estimate.iter().zip(&cold.estimate) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_payload_degrades_to_none() {
        let dir = tmp_dir("damaged");
        let r = make_ref("pop");
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let backing = DurableBacking::open_with(&dir, fast()).unwrap();
        backing
            .store()
            .put(
                &crate::persist::prepared_key(&key),
                b"not a snapshot".to_vec(),
            )
            .unwrap();
        assert!(backing.lookup_prepared(&key).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_flushes_then_compacts() {
        let dir = tmp_dir("ckpt");
        let r = make_ref("pop");
        let key = CrosswalkKey::new("zip", "county", &[&r]);
        let prepared = Arc::new(GeoAlign::new().prepare(&[&r]).unwrap());
        let backing = DurableBacking::open_with(&dir, fast()).unwrap();
        backing.persist_prepared(&key, &prepared);
        let report = backing.checkpoint().unwrap();
        assert_eq!(report.records, 1, "flush ran before the snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
