//! Reference-noise robustness (paper §4.4.1, Figure 7).
//!
//! The paper perturbs every reference's *source-level* aggregates with an
//! `x%` level of noise — each value becomes `(1 ± x/100) · value` with a
//! random sign — and reports the ratio `RMSE(perturbed) / RMSE(original)`
//! over 20 replicates per level. Ratios near 1 mean the prediction is
//! invariant to reference noise.

use crate::error::CoreError;
use crate::eval::dataset::Catalog;
use crate::interpolator::Interpolator;
use crate::reference::ReferenceData;
use geoalign_linalg::stats::{self, FiveNumber};
use geoalign_partition::AggregateVector;

/// Perturbs a reference's source aggregates at `level_pct`% noise:
/// every value is multiplied by `1 + level/100` or `1 − level/100`, sign
/// chosen by `rand01` (a uniform-[0,1) sampler; `< 0.5` means minus).
pub fn perturb_source(
    reference: &ReferenceData,
    level_pct: f64,
    rand01: &mut impl FnMut() -> f64,
) -> Result<ReferenceData, CoreError> {
    let factor = level_pct / 100.0;
    let values: Vec<f64> = reference
        .source()
        .values()
        .iter()
        .map(|&v| {
            let sign = if rand01() < 0.5 { -1.0 } else { 1.0 };
            (v * (1.0 + sign * factor)).max(0.0)
        })
        .collect();
    let agg = AggregateVector::new(reference.source().attribute().to_owned(), values)
        .map_err(CoreError::Partition)?;
    reference.with_source(agg)
}

/// One row of the noise-robustness report: the distribution of RMSE ratios
/// for one dataset at one noise level.
#[derive(Debug, Clone)]
pub struct NoiseCell {
    /// Test dataset name.
    pub dataset: String,
    /// Noise level in percent.
    pub level_pct: f64,
    /// `RMSE(perturbed) / RMSE(original)` per replicate.
    pub ratios: Vec<f64>,
    /// Five-number summary of `ratios` (the box of Figure 7's box plot).
    pub summary: FiveNumber,
}

/// Full result of the noise-robustness experiment.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// Universe name.
    pub universe: String,
    /// Method under test.
    pub method: String,
    /// One cell per `(dataset, level)` pair.
    pub cells: Vec<NoiseCell>,
}

impl NoiseReport {
    /// The cell for a `(dataset, level)` pair.
    pub fn cell(&self, dataset: &str, level_pct: f64) -> Option<&NoiseCell> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.level_pct == level_pct)
    }
}

/// Runs the Figure 7 protocol: for every dataset of `catalog` as test
/// objective, perturb **all** references at each noise level, re-estimate,
/// and record the RMSE ratio against the unperturbed run, `replicates`
/// times per level. `rand01` drives the random signs.
pub fn noise_experiment(
    catalog: &Catalog,
    method: &dyn Interpolator,
    levels_pct: &[f64],
    replicates: usize,
    rand01: &mut impl FnMut() -> f64,
) -> Result<NoiseReport, CoreError> {
    if catalog.len() < 2 {
        return Err(CoreError::NotEnoughDatasets {
            needed: 2,
            got: catalog.len(),
        });
    }
    let mut cells = Vec::with_capacity(catalog.len() * levels_pct.len());
    for (di, test) in catalog.datasets().iter().enumerate() {
        let refs = catalog.references_excluding(di);
        let objective = test.reference().source();
        let baseline_est = method.estimate(objective, &refs)?;
        let baseline_rmse = stats::rmse(&baseline_est, test.target_truth())?;
        for &level in levels_pct {
            let mut ratios = Vec::with_capacity(replicates);
            for _ in 0..replicates {
                let perturbed: Vec<ReferenceData> = refs
                    .iter()
                    .map(|r| perturb_source(r, level, rand01))
                    .collect::<Result<_, _>>()?;
                let pr: Vec<&ReferenceData> = perturbed.iter().collect();
                let est = method.estimate(objective, &pr)?;
                let rmse = stats::rmse(&est, test.target_truth())?;
                // A zero baseline (perfect reconstruction) makes the ratio
                // undefined; report 1.0 when the perturbed run is also
                // perfect, else the raw RMSE as a conservative stand-in.
                let ratio = if baseline_rmse > 0.0 {
                    rmse / baseline_rmse
                } else if rmse == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                };
                ratios.push(ratio);
            }
            let summary = stats::five_number(&ratios)?;
            cells.push(NoiseCell {
                dataset: test.name().to_owned(),
                level_pct: level,
                ratios,
                summary,
            });
        }
    }
    Ok(NoiseReport {
        universe: catalog.universe().to_owned(),
        method: method.name(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dataset::Dataset;
    use crate::interpolator::GeoAlignInterpolator;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn lcg() -> impl FnMut() -> f64 {
        let mut state: u64 = 0x1234_5678_9ABC_DEF0;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn perturbation_respects_level() {
        let r = make_ref("r", &[&[100.0, 0.0], &[0.0, 50.0]]);
        let mut rng = lcg();
        let p = perturb_source(&r, 10.0, &mut rng).unwrap();
        for (&orig, &pert) in r.source().values().iter().zip(p.source().values()) {
            let lo = orig * 0.9 - 1e-12;
            let hi = orig * 1.1 + 1e-12;
            assert!(pert >= lo && pert <= hi, "{pert} outside [{lo}, {hi}]");
            // Sign chosen means exactly ±10%.
            if orig > 0.0 {
                let rel = (pert / orig - 1.0).abs();
                assert!((rel - 0.1).abs() < 1e-12);
            }
        }
        // Zero-level noise is the identity.
        let z = perturb_source(&r, 0.0, &mut rng).unwrap();
        assert_eq!(z.source().values(), r.source().values());
        // DM is untouched.
        assert_eq!(p.dm().nnz(), r.dm().nnz());
    }

    #[test]
    fn experiment_produces_ratio_distribution() {
        // Catalog with structure so RMSEs are non-zero.
        let a = Dataset::from_reference(make_ref(
            "alpha",
            &[&[4.0, 1.0], &[1.0, 4.0], &[2.0, 2.0], &[5.0, 0.0]],
        ));
        let b = Dataset::from_reference(make_ref(
            "beta",
            &[&[6.0, 3.0], &[3.0, 6.0], &[5.0, 3.0], &[7.0, 1.0]],
        ));
        let c = Dataset::from_reference(make_ref(
            "gamma",
            &[&[1.0, 4.0], &[4.0, 1.0], &[2.0, 3.0], &[0.0, 5.0]],
        ));
        let area = DisaggregationMatrix::from_triples(
            "area",
            4,
            2,
            (0..4).flat_map(|i| [(i, 0, 1.0), (i, 1, 1.0)]),
        )
        .unwrap();
        let cat = Catalog::new("toy", vec![a, b, c], area).unwrap();
        let ga = GeoAlignInterpolator::new();
        let mut rng = lcg();
        let report = noise_experiment(&cat, &ga, &[1.0, 10.0, 50.0], 5, &mut rng).unwrap();
        assert_eq!(report.cells.len(), 9);
        for cell in &report.cells {
            assert_eq!(cell.ratios.len(), 5);
            assert!(cell.summary.min <= cell.summary.median);
            assert!(cell.summary.median <= cell.summary.max);
            assert!(cell.ratios.iter().all(|r| r.is_finite() && *r >= 0.0));
        }
        assert!(report.cell("alpha", 10.0).is_some());
        assert!(report.cell("alpha", 99.0).is_none());
    }
}
