//! Leave-one-dataset-out cross-validation (paper §4.1): each dataset in a
//! catalog takes a turn as the test objective while the rest serve as the
//! reference pool; every method's NRMSE against the ground truth is
//! recorded. This is the protocol behind Figure 5.

use crate::error::CoreError;
use crate::eval::dataset::Catalog;
use crate::interpolator::Interpolator;
use geoalign_linalg::stats;

/// One cell of the cross-validation table.
#[derive(Debug, Clone)]
pub struct CrossValCell {
    /// Test dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// NRMSE of the method on the dataset, or `None` when the combination
    /// is skipped (e.g. dasymetric-by-X tested on X itself, per §4.1).
    pub nrmse: Option<f64>,
}

/// The full cross-validation result for one universe.
#[derive(Debug, Clone)]
pub struct CrossValReport {
    /// Universe name.
    pub universe: String,
    /// All `(dataset × method)` cells, dataset-major.
    pub cells: Vec<CrossValCell>,
}

impl CrossValReport {
    /// NRMSE of `method` on `dataset`, if evaluated.
    pub fn nrmse(&self, dataset: &str, method: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.method == method)
            .and_then(|c| c.nrmse)
    }

    /// All evaluated NRMSE values of one method, across datasets.
    pub fn method_nrmses(&self, method: &str) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.method == method)
            .filter_map(|c| c.nrmse)
            .collect()
    }

    /// Worst (maximum) NRMSE of a method across datasets, if any cell was
    /// evaluated.
    pub fn method_max_nrmse(&self, method: &str) -> Option<f64> {
        self.method_nrmses(method).into_iter().reduce(f64::max)
    }

    /// Renders the report as an aligned text table (datasets as rows,
    /// methods as columns), matching the shape of paper Figure 5.
    pub fn to_table(&self) -> String {
        let mut datasets: Vec<&str> = Vec::new();
        let mut methods: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !datasets.contains(&c.dataset.as_str()) {
                datasets.push(&c.dataset);
            }
            if !methods.contains(&c.method.as_str()) {
                methods.push(&c.method);
            }
        }
        let name_w = datasets.iter().map(|d| d.len()).max().unwrap_or(7).max(7);
        let col_w = methods.iter().map(|m| m.len()).max().unwrap_or(8).max(8);
        let mut out = String::new();
        out.push_str(&format!("{:name_w$}", "dataset"));
        for m in &methods {
            out.push_str(&format!("  {m:>col_w$}"));
        }
        out.push('\n');
        for d in &datasets {
            out.push_str(&format!("{d:name_w$}"));
            for m in &methods {
                match self.nrmse(d, m) {
                    Some(v) => out.push_str(&format!("  {v:>col_w$.4}")),
                    None => out.push_str(&format!("  {:>col_w$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Decides whether a method must be skipped for a given test dataset.
///
/// Mirrors §4.1: "when one of the population reference datasets or the area
/// dataset is used as the test dataset, the performance of both methods
/// referencing this dataset is not evaluated". A dasymetric method is
/// skipped when its reference *is* the test dataset (the reference pool
/// excludes the test dataset, so the method would have nothing to
/// redistribute by); areal weighting is skipped when the test dataset is
/// the measure attribute itself.
fn skip(method_name: &str, dataset_name: &str, measure_attr: &str) -> bool {
    if method_name == format!("dasymetric({dataset_name})") {
        return true;
    }
    method_name == "areal weighting" && dataset_name == measure_attr
}

/// Runs leave-one-dataset-out cross-validation of `methods` over `catalog`.
pub fn cross_validate(
    catalog: &Catalog,
    methods: &[&dyn Interpolator],
) -> Result<CrossValReport, CoreError> {
    if catalog.len() < 2 {
        return Err(CoreError::NotEnoughDatasets {
            needed: 2,
            got: catalog.len(),
        });
    }
    let measure_attr = catalog.measure_dm().attribute().to_owned();
    let mut cells = Vec::with_capacity(catalog.len() * methods.len());
    for (di, test) in catalog.datasets().iter().enumerate() {
        let refs = catalog.references_excluding(di);
        let objective = test.reference().source();
        for method in methods {
            let mname = method.name();
            let nrmse = if skip(&mname, test.name(), &measure_attr) {
                None
            } else {
                let estimate = method.estimate(objective, &refs)?;
                Some(stats::nrmse(&estimate, test.target_truth())?)
            };
            cells.push(CrossValCell {
                dataset: test.name().to_owned(),
                method: mname,
                nrmse,
            });
        }
    }
    Ok(CrossValReport {
        universe: catalog.universe().to_owned(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dataset::Dataset;
    use crate::interpolator::{
        ArealWeightingInterpolator, DasymetricInterpolator, GeoAlignInterpolator,
    };
    use crate::reference::ReferenceData;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn small_catalog() -> Catalog {
        // Three correlated datasets over 3 source × 2 target units.
        let a =
            Dataset::from_reference(make_ref("alpha", &[&[4.0, 1.0], &[1.0, 4.0], &[2.0, 2.0]]));
        let b = Dataset::from_reference(make_ref("beta", &[&[8.0, 2.0], &[2.0, 8.0], &[4.0, 4.0]]));
        let c =
            Dataset::from_reference(make_ref("gamma", &[&[3.0, 2.0], &[1.0, 1.0], &[0.0, 4.0]]));
        let area = DisaggregationMatrix::from_triples(
            "area",
            3,
            2,
            [
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
            ],
        )
        .unwrap();
        Catalog::new("toy", vec![a, b, c], area).unwrap()
    }

    #[test]
    fn report_covers_all_cells() {
        let cat = small_catalog();
        let ga = GeoAlignInterpolator::new();
        let das = DasymetricInterpolator::new("beta");
        let aw = ArealWeightingInterpolator::new(cat.measure_dm().clone());
        let methods: Vec<&dyn Interpolator> = vec![&ga, &das, &aw];
        let report = cross_validate(&cat, &methods).unwrap();
        assert_eq!(report.cells.len(), 9);
        // Dasymetric(beta) is skipped exactly on beta.
        assert!(report.nrmse("beta", "dasymetric(beta)").is_none());
        assert!(report.nrmse("alpha", "dasymetric(beta)").is_some());
        // GeoAlign recovers alpha perfectly: beta is alpha scaled by 2.
        let g = report.nrmse("alpha", "GeoAlign").unwrap();
        assert!(g < 1e-6, "GeoAlign NRMSE on alpha should be ~0, got {g}");
    }

    #[test]
    fn table_renders_all_rows() {
        let cat = small_catalog();
        let ga = GeoAlignInterpolator::new();
        let methods: Vec<&dyn Interpolator> = vec![&ga];
        let report = cross_validate(&cat, &methods).unwrap();
        let table = report.to_table();
        for name in ["alpha", "beta", "gamma", "GeoAlign"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn method_summaries() {
        let cat = small_catalog();
        let ga = GeoAlignInterpolator::new();
        let methods: Vec<&dyn Interpolator> = vec![&ga];
        let report = cross_validate(&cat, &methods).unwrap();
        let all = report.method_nrmses("GeoAlign");
        assert_eq!(all.len(), 3);
        let max = report.method_max_nrmse("GeoAlign").unwrap();
        assert!(all.iter().all(|&v| v <= max));
        assert!(report.method_max_nrmse("nope").is_none());
    }

    #[test]
    fn needs_two_datasets() {
        let a = Dataset::from_reference(make_ref("solo", &[&[1.0, 1.0]]));
        let area =
            DisaggregationMatrix::from_triples("area", 1, 2, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let cat = Catalog::new("u", vec![a], area).unwrap();
        let ga = GeoAlignInterpolator::new();
        let methods: Vec<&dyn Interpolator> = vec![&ga];
        assert!(matches!(
            cross_validate(&cat, &methods),
            Err(CoreError::NotEnoughDatasets { .. })
        ));
    }
}
