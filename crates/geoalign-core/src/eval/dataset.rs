//! Datasets and catalogs for the evaluation harness.
//!
//! A *dataset* in the paper's sense (§4.1) is an attribute with an accurate
//! distribution at both geographic levels plus its disaggregation matrix —
//! so it can serve both as a reference (when another dataset is under test)
//! and as a test objective (its own target aggregates are the ground
//! truth).

use crate::error::CoreError;
use crate::reference::ReferenceData;
use geoalign_partition::DisaggregationMatrix;

/// One evaluation dataset: a reference plus its ground-truth target
/// aggregates.
#[derive(Debug, Clone)]
pub struct Dataset {
    reference: ReferenceData,
    target_truth: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from a reference whose disaggregation matrix is
    /// exact: the ground truth at the target level is the matrix's column
    /// sums (paper Eq. 7).
    pub fn from_reference(reference: ReferenceData) -> Self {
        let target_truth = reference.dm().matrix().col_sums();
        Self {
            reference,
            target_truth,
        }
    }

    /// Builds a dataset with explicitly supplied target truth (used when
    /// the truth comes from an independent tabulation).
    pub fn with_truth(reference: ReferenceData, target_truth: Vec<f64>) -> Result<Self, CoreError> {
        if target_truth.len() != reference.n_target() {
            return Err(CoreError::TargetMismatch {
                left: reference.n_target(),
                right: target_truth.len(),
                name: reference.name().to_owned(),
            });
        }
        Ok(Self {
            reference,
            target_truth,
        })
    }

    /// Dataset name (the attribute).
    pub fn name(&self) -> &str {
        self.reference.name()
    }

    /// The dataset viewed as a reference.
    pub fn reference(&self) -> &ReferenceData {
        &self.reference
    }

    /// Ground-truth aggregates at the target level.
    pub fn target_truth(&self) -> &[f64] {
        &self.target_truth
    }
}

/// A universe's worth of datasets plus the measure (area) disaggregation
/// matrix for areal weighting.
#[derive(Debug, Clone)]
pub struct Catalog {
    universe: String,
    datasets: Vec<Dataset>,
    measure_dm: DisaggregationMatrix,
}

impl Catalog {
    /// Assembles a catalog; all datasets must share source and target
    /// dimensions with the measure matrix.
    pub fn new(
        universe: impl Into<String>,
        datasets: Vec<Dataset>,
        measure_dm: DisaggregationMatrix,
    ) -> Result<Self, CoreError> {
        for d in &datasets {
            if d.reference().n_source() != measure_dm.n_source() {
                return Err(CoreError::SourceMismatch {
                    objective: measure_dm.n_source(),
                    reference: d.reference().n_source(),
                    name: d.name().to_owned(),
                });
            }
            if d.reference().n_target() != measure_dm.n_target() {
                return Err(CoreError::TargetMismatch {
                    left: measure_dm.n_target(),
                    right: d.reference().n_target(),
                    name: d.name().to_owned(),
                });
            }
        }
        Ok(Self {
            universe: universe.into(),
            datasets,
            measure_dm,
        })
    }

    /// Universe name (e.g. `"New York State"`).
    pub fn universe(&self) -> &str {
        &self.universe
    }

    /// The datasets.
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Returns `true` when the catalog holds no datasets.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The measure (area) disaggregation matrix.
    pub fn measure_dm(&self) -> &DisaggregationMatrix {
        &self.measure_dm
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.measure_dm.n_source()
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.measure_dm.n_target()
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name() == name)
    }

    /// References of every dataset except the one at `exclude` — the
    /// reference pool for a cross-validation fold.
    pub fn references_excluding(&self, exclude: usize) -> Vec<&ReferenceData> {
        self.datasets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .map(|(_, d)| d.reference())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn area_dm() -> DisaggregationMatrix {
        DisaggregationMatrix::from_triples("area", 2, 2, [(0, 0, 1.0), (1, 1, 1.0)]).unwrap()
    }

    #[test]
    fn truth_from_column_sums() {
        let d = Dataset::from_reference(make_ref("a", &[&[1.0, 2.0], &[3.0, 0.0]]));
        assert_eq!(d.target_truth(), &[4.0, 2.0]);
        assert_eq!(d.name(), "a");
    }

    #[test]
    fn explicit_truth_validated() {
        let r = make_ref("a", &[&[1.0, 2.0], &[3.0, 0.0]]);
        assert!(Dataset::with_truth(r.clone(), vec![1.0]).is_err());
        let d = Dataset::with_truth(r, vec![5.0, 1.0]).unwrap();
        assert_eq!(d.target_truth(), &[5.0, 1.0]);
    }

    #[test]
    fn catalog_validates_shapes() {
        let good = Dataset::from_reference(make_ref("a", &[&[1.0, 0.0], &[0.0, 1.0]]));
        let bad = Dataset::from_reference(make_ref("b", &[&[1.0, 0.0, 1.0]]));
        assert!(Catalog::new("u", vec![good.clone()], area_dm()).is_ok());
        assert!(Catalog::new("u", vec![good, bad], area_dm()).is_err());
    }

    #[test]
    fn reference_pool_excludes_test_dataset() {
        let a = Dataset::from_reference(make_ref("a", &[&[1.0, 0.0], &[0.0, 1.0]]));
        let b = Dataset::from_reference(make_ref("b", &[&[2.0, 0.0], &[0.0, 2.0]]));
        let c = Dataset::from_reference(make_ref("c", &[&[0.0, 3.0], &[3.0, 0.0]]));
        let cat = Catalog::new("u", vec![a, b, c], area_dm()).unwrap();
        assert_eq!(cat.len(), 3);
        let pool = cat.references_excluding(1);
        assert_eq!(pool.len(), 2);
        assert!(pool.iter().all(|r| r.name() != "b"));
        assert!(cat.get("b").is_some());
        assert!(cat.get("zzz").is_none());
    }
}
