//! Evaluation toolkit reproducing the paper's experimental protocols (§4):
//! leave-one-dataset-out cross-validation (Figure 5), reference-noise
//! robustness (Figure 7), and reference-selection robustness (Figure 8).
//! Runtime scalability (Figure 6) is driven by the benchmark harness using
//! [`crate::align::PhaseTimings`].

pub mod crossval;
pub mod dataset;
pub mod noise;
pub mod selection;

pub use crossval::{cross_validate, CrossValCell, CrossValReport};
pub use dataset::{Catalog, Dataset};
pub use noise::{noise_experiment, perturb_source, NoiseCell, NoiseReport};
pub use selection::{
    apply_leave_out, rank_by_correlation, selection_experiment, LeaveOut, SelectionCell,
    SelectionReport,
};
