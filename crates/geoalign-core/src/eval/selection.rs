//! Reference-selection robustness (paper §4.4.2, Figure 8).
//!
//! The paper leaves the 1 or 2 references with the highest (or lowest)
//! source-level correlation with the test attribute out of the pool and
//! measures the impact on NRMSE, showing that GeoAlign tolerates poorly
//! chosen references and only degrades when *every* well-related reference
//! is removed.

use crate::error::CoreError;
use crate::eval::dataset::Catalog;
use crate::interpolator::Interpolator;
use crate::reference::ReferenceData;
use geoalign_linalg::stats;

/// Which references to withhold from the pool, relative to their
/// source-level Pearson correlation with the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveOut {
    /// Use every available reference.
    None,
    /// Drop the `n` references *most* correlated with the objective.
    MostRelated(usize),
    /// Drop the `n` references *least* correlated with the objective.
    LeastRelated(usize),
}

impl LeaveOut {
    /// Display label used in reports.
    pub fn label(&self) -> String {
        match self {
            LeaveOut::None => "all references".to_owned(),
            LeaveOut::MostRelated(n) => format!("leave {n} most related out"),
            LeaveOut::LeastRelated(n) => format!("leave {n} least related out"),
        }
    }
}

/// Ranks `refs` by the absolute Pearson correlation of their source
/// aggregates with `objective_source`, descending. Returns
/// `(index, correlation)` pairs.
pub fn rank_by_correlation(
    objective_source: &[f64],
    refs: &[&ReferenceData],
) -> Result<Vec<(usize, f64)>, CoreError> {
    let mut ranked: Vec<(usize, f64)> = refs
        .iter()
        .enumerate()
        .map(|(i, r)| Ok((i, stats::pearson(objective_source, r.source().values())?)))
        .collect::<Result<_, CoreError>>()?;
    ranked.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
    Ok(ranked)
}

/// Applies a [`LeaveOut`] policy: returns the subset of `refs` to keep.
pub fn apply_leave_out<'a>(
    objective_source: &[f64],
    refs: &[&'a ReferenceData],
    policy: LeaveOut,
) -> Result<Vec<&'a ReferenceData>, CoreError> {
    let drop: Vec<usize> = match policy {
        LeaveOut::None => Vec::new(),
        LeaveOut::MostRelated(n) => rank_by_correlation(objective_source, refs)?
            .into_iter()
            .take(n)
            .map(|(i, _)| i)
            .collect(),
        LeaveOut::LeastRelated(n) => {
            let ranked = rank_by_correlation(objective_source, refs)?;
            ranked.into_iter().rev().take(n).map(|(i, _)| i).collect()
        }
    };
    let kept: Vec<&ReferenceData> = refs
        .iter()
        .enumerate()
        .filter(|(i, _)| !drop.contains(i))
        .map(|(_, r)| *r)
        .collect();
    if kept.is_empty() {
        return Err(CoreError::NoReferences);
    }
    Ok(kept)
}

/// One cell of the selection-robustness report.
#[derive(Debug, Clone)]
pub struct SelectionCell {
    /// Test dataset name.
    pub dataset: String,
    /// The leave-out policy applied to the reference pool.
    pub policy: LeaveOut,
    /// NRMSE under the reduced pool.
    pub nrmse: f64,
    /// Names of the withheld references.
    pub dropped: Vec<String>,
}

/// Full result of the selection-robustness experiment.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// Universe name.
    pub universe: String,
    /// Method under test.
    pub method: String,
    /// One cell per `(dataset, policy)` pair.
    pub cells: Vec<SelectionCell>,
}

impl SelectionReport {
    /// NRMSE for a `(dataset, policy)` pair.
    pub fn nrmse(&self, dataset: &str, policy: LeaveOut) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.policy == policy)
            .map(|c| c.nrmse)
    }
}

/// Runs the Figure 8 protocol over all datasets and policies.
pub fn selection_experiment(
    catalog: &Catalog,
    method: &dyn Interpolator,
    policies: &[LeaveOut],
) -> Result<SelectionReport, CoreError> {
    if catalog.len() < 3 {
        return Err(CoreError::NotEnoughDatasets {
            needed: 3,
            got: catalog.len(),
        });
    }
    let mut cells = Vec::with_capacity(catalog.len() * policies.len());
    for (di, test) in catalog.datasets().iter().enumerate() {
        let pool = catalog.references_excluding(di);
        let objective = test.reference().source();
        for &policy in policies {
            let kept = apply_leave_out(objective.values(), &pool, policy)?;
            let dropped: Vec<String> = pool
                .iter()
                .filter(|r| !kept.iter().any(|k| k.name() == r.name()))
                .map(|r| r.name().to_owned())
                .collect();
            let estimate = method.estimate(objective, &kept)?;
            let nrmse = stats::nrmse(&estimate, test.target_truth())?;
            cells.push(SelectionCell {
                dataset: test.name().to_owned(),
                policy,
                nrmse,
                dropped,
            });
        }
    }
    Ok(SelectionReport {
        universe: catalog.universe().to_owned(),
        method: method.name(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::dataset::Dataset;
    use crate::interpolator::GeoAlignInterpolator;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm =
            DisaggregationMatrix::from_triples(name, rows.len(), rows[0].len(), triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    #[test]
    fn ranking_orders_by_absolute_correlation() {
        let objective = [1.0, 2.0, 3.0, 4.0];
        let aligned = make_ref("aligned", &[&[2.0], &[4.0], &[6.0], &[8.0]]);
        let inverse = make_ref("inverse", &[&[4.0], &[3.0], &[2.0], &[1.0]]);
        let flat = make_ref("flat", &[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let refs = [&aligned, &flat, &inverse];
        let ranked = rank_by_correlation(&objective, &refs).unwrap();
        // aligned (|r|=1) and inverse (|r|=1) beat flat (|r|=0).
        assert_eq!(ranked[2].0, 1, "flat must rank last: {ranked:?}");
        assert!(ranked[0].1.abs() > 0.99);
    }

    #[test]
    fn leave_out_policies() {
        let objective = [1.0, 2.0, 3.0, 4.0];
        let aligned = make_ref("aligned", &[&[2.0], &[4.0], &[6.0], &[8.0]]);
        let noisy = make_ref("noisy", &[&[2.0], &[5.0], &[5.0], &[9.0]]);
        let flat = make_ref("flat", &[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let refs = [&aligned, &noisy, &flat];

        let all = apply_leave_out(&objective, &refs, LeaveOut::None).unwrap();
        assert_eq!(all.len(), 3);

        let no_best = apply_leave_out(&objective, &refs, LeaveOut::MostRelated(1)).unwrap();
        assert_eq!(no_best.len(), 2);
        assert!(no_best.iter().all(|r| r.name() != "aligned"));

        let no_worst = apply_leave_out(&objective, &refs, LeaveOut::LeastRelated(1)).unwrap();
        assert_eq!(no_worst.len(), 2);
        assert!(no_worst.iter().all(|r| r.name() != "flat"));

        // Dropping everything is rejected.
        assert!(apply_leave_out(&objective, &refs, LeaveOut::MostRelated(3)).is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(LeaveOut::None.label(), "all references");
        assert!(LeaveOut::MostRelated(2).label().contains("2 most"));
        assert!(LeaveOut::LeastRelated(1).label().contains("1 least"));
    }

    #[test]
    fn experiment_runs_over_policies() {
        let a = Dataset::from_reference(make_ref(
            "alpha",
            &[&[4.0, 1.0], &[1.0, 4.0], &[2.0, 2.0], &[5.0, 0.0]],
        ));
        let b = Dataset::from_reference(make_ref(
            "beta",
            &[&[8.0, 2.0], &[2.0, 8.0], &[4.0, 4.0], &[10.0, 0.0]],
        ));
        let c = Dataset::from_reference(make_ref(
            "gamma",
            &[&[1.0, 4.0], &[4.0, 1.0], &[2.0, 3.0], &[0.0, 5.0]],
        ));
        let d = Dataset::from_reference(make_ref(
            "delta",
            &[&[2.0, 2.0], &[3.0, 2.0], &[2.0, 3.0], &[3.0, 3.0]],
        ));
        let area = DisaggregationMatrix::from_triples(
            "area",
            4,
            2,
            (0..4).flat_map(|i| [(i, 0, 1.0), (i, 1, 1.0)]),
        )
        .unwrap();
        let cat = Catalog::new("toy", vec![a, b, c, d], area).unwrap();
        let ga = GeoAlignInterpolator::new();
        let policies = [
            LeaveOut::None,
            LeaveOut::LeastRelated(1),
            LeaveOut::MostRelated(1),
        ];
        let report = selection_experiment(&cat, &ga, &policies).unwrap();
        assert_eq!(report.cells.len(), 12);
        // Alpha's best reference is beta (exact 2× copy): dropping the
        // least-related reference must not hurt (beta still present).
        let base = report.nrmse("alpha", LeaveOut::None).unwrap();
        let least = report.nrmse("alpha", LeaveOut::LeastRelated(1)).unwrap();
        assert!(
            least <= base + 1e-9,
            "least-related drop hurt: {least} vs {base}"
        );
        // Every cell records what was dropped.
        for cell in &report.cells {
            match cell.policy {
                LeaveOut::None => assert!(cell.dropped.is_empty()),
                LeaveOut::MostRelated(n) | LeaveOut::LeastRelated(n) => {
                    assert_eq!(cell.dropped.len(), n)
                }
            }
        }
    }
}
