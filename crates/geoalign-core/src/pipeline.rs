//! Automatic aggregate-table integration — the paper's future-work
//! direction (§6): "an automatic aggregate data integration system that
//! joins multiple aggregate tables without user intervention".
//!
//! An [`IntegrationPipeline`] registers unit systems (by name, with their
//! string unit identifiers) and reference crosswalks between pairs of
//! systems. Given aggregate tables reported on *different* systems, it
//! realigns every table to a chosen target system with GeoAlign — using
//! all registered references for the relevant system pair — and emits one
//! joined table, keyed by the target system's unit identifiers. No shape
//! files, no user intervention beyond pointing at the data.

use crate::align::GeoAlign;
use crate::error::CoreError;
use crate::reference::ReferenceData;
use geoalign_partition::{AggregateTable, AggregateVector, UnitIndex};
use std::collections::HashMap;

/// A registered unit system: a name and its unit identifiers.
#[derive(Debug, Clone)]
struct SystemEntry {
    index: UnitIndex,
}

/// A table realigned (or passed through) to the target system, with its
/// provenance.
#[derive(Debug, Clone)]
pub struct AlignedColumn {
    /// Attribute name.
    pub attribute: String,
    /// System the data was originally reported on.
    pub reported_on: String,
    /// Values per target unit.
    pub values: Vec<f64>,
    /// Learned reference weights, when a crosswalk was needed.
    pub weights: Option<Vec<f64>>,
}

/// The joined result: one row per target unit, one column per input table.
#[derive(Debug, Clone)]
pub struct JoinedTable {
    /// Target system name.
    pub system: String,
    /// Target unit identifiers, in system order.
    pub unit_ids: Vec<String>,
    /// The aligned columns, in input order.
    pub columns: Vec<AlignedColumn>,
}

impl JoinedTable {
    /// Renders the join as CSV (`unit` + one column per attribute), with
    /// RFC 4180 quoting: fields containing commas, quotes, or line breaks
    /// are wrapped in double quotes and embedded quotes are doubled.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("unit");
        for c in &self.columns {
            out.push(',');
            push_csv_field(&mut out, &c.attribute);
        }
        out.push('\n');
        for (j, id) in self.unit_ids.iter().enumerate() {
            push_csv_field(&mut out, id);
            for c in &self.columns {
                let _ = write!(out, ",{}", c.values[j]);
            }
            out.push('\n');
        }
        out
    }
}

/// Appends `field` to `out`, quoting per RFC 4180 when needed.
fn push_csv_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// The automatic integration pipeline. See the module docs.
#[derive(Debug, Default)]
pub struct IntegrationPipeline {
    systems: HashMap<String, SystemEntry>,
    /// References keyed by `(source system, target system)`.
    references: HashMap<(String, String), Vec<ReferenceData>>,
    aligner: GeoAlign,
}

impl IntegrationPipeline {
    /// An empty pipeline with the default GeoAlign configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses a custom-configured aligner.
    pub fn with_aligner(aligner: GeoAlign) -> Self {
        Self {
            aligner,
            ..Self::default()
        }
    }

    /// Registers a unit system under `name` with its unit identifiers.
    /// Re-registering a name replaces the previous identifiers.
    pub fn register_system<I, S>(&mut self, name: impl Into<String>, unit_ids: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.systems.insert(
            name.into(),
            SystemEntry {
                index: UnitIndex::from_ids(unit_ids),
            },
        );
    }

    /// Registers a reference crosswalk from `source` to `target` system.
    /// The reference's dimensions must match the registered systems.
    pub fn register_reference(
        &mut self,
        source: &str,
        target: &str,
        reference: ReferenceData,
    ) -> Result<(), CoreError> {
        let s = self.system(source)?;
        let t = self.system(target)?;
        if reference.n_source() != s.index.len() {
            return Err(CoreError::SourceMismatch {
                objective: s.index.len(),
                reference: reference.n_source(),
                name: reference.name().to_owned(),
            });
        }
        if reference.n_target() != t.index.len() {
            return Err(CoreError::TargetMismatch {
                left: t.index.len(),
                right: reference.n_target(),
                name: reference.name().to_owned(),
            });
        }
        self.references
            .entry((source.to_owned(), target.to_owned()))
            .or_default()
            .push(reference);
        Ok(())
    }

    /// Replaces the reference at `position` for the `(source, target)`
    /// pair — the streaming-ingest upsert: a live aggregate state folds a
    /// new batch in, re-finalizes, and swaps its reference in place while
    /// every other registration keeps its position (and hence its design-
    /// matrix column). Dimensions are validated like
    /// [`IntegrationPipeline::register_reference`].
    pub fn replace_reference(
        &mut self,
        source: &str,
        target: &str,
        position: usize,
        reference: ReferenceData,
    ) -> Result<(), CoreError> {
        let s = self.system(source)?;
        let t = self.system(target)?;
        if reference.n_source() != s.index.len() {
            return Err(CoreError::SourceMismatch {
                objective: s.index.len(),
                reference: reference.n_source(),
                name: reference.name().to_owned(),
            });
        }
        if reference.n_target() != t.index.len() {
            return Err(CoreError::TargetMismatch {
                left: t.index.len(),
                right: reference.n_target(),
                name: reference.name().to_owned(),
            });
        }
        let key = (source.to_owned(), target.to_owned());
        let slot = self
            .references
            .get_mut(&key)
            .and_then(|refs| refs.get_mut(position))
            .ok_or_else(|| CoreError::UnknownReference {
                name: format!("{source} -> {target} reference #{position}"),
            })?;
        *slot = reference;
        Ok(())
    }

    /// The registered unit identifiers of `system`.
    pub fn unit_ids(&self, system: &str) -> Result<&[String], CoreError> {
        Ok(self.system(system)?.index.ids())
    }

    /// Number of references registered for the `(source, target)` pair.
    pub fn reference_count(&self, source: &str, target: &str) -> usize {
        self.references(source, target).len()
    }

    /// The references registered for the `(source, target)` pair, in
    /// registration order; empty when the pair has no crosswalk.
    pub fn references(&self, source: &str, target: &str) -> &[ReferenceData] {
        self.references
            .get(&(source.to_owned(), target.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether a unit system is registered under `name`.
    pub fn has_system(&self, name: &str) -> bool {
        self.systems.contains_key(name)
    }

    /// Names of all registered unit systems, sorted.
    pub fn system_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.systems.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The aligner the pipeline realigns with.
    pub fn aligner(&self) -> &GeoAlign {
        &self.aligner
    }

    fn system(&self, name: &str) -> Result<&SystemEntry, CoreError> {
        self.systems
            .get(name)
            .ok_or_else(|| CoreError::UnknownReference {
                name: format!("unit system '{name}'"),
            })
    }

    /// Joins aggregate tables reported on (possibly different) registered
    /// systems into one table on `target_system`. Tables already reported
    /// on the target pass through; others are realigned with GeoAlign
    /// using every reference registered for their system pair.
    pub fn join(
        &self,
        tables: &[(&str, &AggregateTable)],
        target_system: &str,
    ) -> Result<JoinedTable, CoreError> {
        self.join_with(tables, target_system, geoalign_exec::Executor::global())
    }

    /// [`IntegrationPipeline::join`] on an explicit executor. Each table
    /// realigns independently (one task per table); columns come back in
    /// input order and the first failing table (in input order) decides
    /// the error, exactly like the sequential loop.
    pub fn join_with(
        &self,
        tables: &[(&str, &AggregateTable)],
        target_system: &str,
        exec: geoalign_exec::Executor,
    ) -> Result<JoinedTable, CoreError> {
        let target = self.system(target_system)?;
        let per_table = exec.map_indexed(tables.len(), |i| {
            let (system_name, table) = tables[i];
            self.align_column(system_name, table, target_system)
        })?;
        let mut columns = Vec::with_capacity(tables.len());
        for column in per_table {
            columns.push(column?);
        }
        Ok(JoinedTable {
            system: target_system.to_owned(),
            unit_ids: target.index.ids().to_vec(),
            columns,
        })
    }

    /// Realigns (or passes through) one table to the target system — the
    /// per-table body of [`IntegrationPipeline::join`].
    fn align_column(
        &self,
        system_name: &str,
        table: &AggregateTable,
        target_system: &str,
    ) -> Result<AlignedColumn, CoreError> {
        let entry = self.system(system_name)?;
        let vector: AggregateVector = table
            .to_vector(&entry.index)
            .map_err(CoreError::Partition)?;
        if system_name == target_system {
            return Ok(AlignedColumn {
                attribute: table.attribute.clone(),
                reported_on: system_name.to_owned(),
                values: vector.into_values(),
                weights: None,
            });
        }
        let key = (system_name.to_owned(), target_system.to_owned());
        let refs = self
            .references
            .get(&key)
            .ok_or_else(|| CoreError::UnknownReference {
                name: format!("crosswalk {system_name} -> {target_system}"),
            })?;
        let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
        let result = self.aligner.estimate(&vector, &ref_slices)?;
        Ok(AlignedColumn {
            attribute: table.attribute.clone(),
            reported_on: system_name.to_owned(),
            values: result.estimate,
            weights: Some(result.weights),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    /// Builds a 3-zip / 2-county world with a population crosswalk.
    fn pipeline() -> IntegrationPipeline {
        let mut p = IntegrationPipeline::new();
        p.register_system("zip", ["z1", "z2", "z3"]);
        p.register_system("county", ["A", "B"]);
        let dm = DisaggregationMatrix::from_triples(
            "population",
            3,
            2,
            [
                (0, 0, 100.0), // z1 wholly in A
                (1, 0, 60.0),
                (1, 1, 40.0), // z2 straddles
                (2, 1, 80.0), // z3 wholly in B
            ],
        )
        .unwrap();
        let population = ReferenceData::from_dm("population", dm).unwrap();
        p.register_reference("zip", "county", population).unwrap();
        p
    }

    fn table(csv: &str) -> AggregateTable {
        AggregateTable::parse_csv(csv).unwrap()
    }

    #[test]
    fn joins_mixed_system_tables() {
        let p = pipeline();
        let steam = table("zip,steam\nz1,10\nz2,20\nz3,30\n");
        let income = table("county,income\nA,50000\nB,60000\n");
        let joined = p
            .join(&[("zip", &steam), ("county", &income)], "county")
            .unwrap();
        assert_eq!(joined.unit_ids, vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(joined.columns.len(), 2);
        // Steam realigned: A gets 10 + 20*0.6 = 22; B gets 20*0.4 + 30 = 38.
        let steam_col = &joined.columns[0];
        assert!((steam_col.values[0] - 22.0).abs() < 1e-9);
        assert!((steam_col.values[1] - 38.0).abs() < 1e-9);
        assert!(steam_col.weights.is_some());
        // Income passed through untouched.
        let income_col = &joined.columns[1];
        assert_eq!(income_col.values, vec![50_000.0, 60_000.0]);
        assert!(income_col.weights.is_none());
        // CSV render includes everything.
        let csv = joined.to_csv();
        assert!(csv.contains("unit,steam,income"));
        assert!(csv.lines().count() == 3);
    }

    #[test]
    fn to_csv_quotes_per_rfc_4180() {
        let joined = JoinedTable {
            system: "county".to_owned(),
            unit_ids: vec![
                "plain".to_owned(),
                "has,comma".to_owned(),
                "has \"quote\"".to_owned(),
                "has\nnewline".to_owned(),
            ],
            columns: vec![AlignedColumn {
                attribute: "crimes, total".to_owned(),
                reported_on: "zip".to_owned(),
                values: vec![1.0, 2.0, 3.0, 4.0],
                weights: None,
            }],
        };
        let csv = joined.to_csv();
        let mut lines = csv.split('\n');
        assert_eq!(lines.next(), Some("unit,\"crimes, total\""));
        assert_eq!(lines.next(), Some("plain,1"));
        assert_eq!(lines.next(), Some("\"has,comma\",2"));
        assert_eq!(lines.next(), Some("\"has \"\"quote\"\"\",3"));
        // The embedded newline stays inside one quoted field.
        assert_eq!(lines.next(), Some("\"has"));
        assert_eq!(lines.next(), Some("newline\",4"));
    }

    #[test]
    fn reference_accessors() {
        let p = pipeline();
        assert!(p.has_system("zip"));
        assert!(!p.has_system("tract"));
        assert_eq!(p.system_names(), vec!["county", "zip"]);
        let refs = p.references("zip", "county");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name(), "population");
        assert!(p.references("county", "zip").is_empty());
    }

    #[test]
    fn missing_crosswalk_is_reported() {
        let p = pipeline();
        let t = table("county,x\nA,1\nB,2\n");
        // county -> zip was never registered.
        let err = p.join(&[("county", &t)], "zip").unwrap_err();
        assert!(err.to_string().contains("county -> zip"), "{err}");
    }

    #[test]
    fn unknown_system_is_reported() {
        let p = pipeline();
        let t = table("tract,x\nt1,1\n");
        assert!(p.join(&[("tract", &t)], "county").is_err());
        assert!(p.unit_ids("tract").is_err());
        assert_eq!(p.unit_ids("zip").unwrap().len(), 3);
    }

    #[test]
    fn reference_dimension_validation() {
        let mut p = pipeline();
        let bad = ReferenceData::from_dm(
            "bad",
            DisaggregationMatrix::from_triples("bad", 2, 2, [(0, 0, 1.0)]).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            p.register_reference("zip", "county", bad),
            Err(CoreError::SourceMismatch { .. })
        ));
        assert_eq!(p.reference_count("zip", "county"), 1);
        assert_eq!(p.reference_count("county", "zip"), 0);
    }

    #[test]
    fn multiple_references_are_combined() {
        let mut p = pipeline();
        // A second, differently-shaped reference.
        let dm2 = DisaggregationMatrix::from_triples(
            "accidents",
            3,
            2,
            [(0, 0, 5.0), (1, 0, 1.0), (1, 1, 9.0), (2, 1, 4.0)],
        )
        .unwrap();
        p.register_reference(
            "zip",
            "county",
            ReferenceData::from_dm("accidents", dm2).unwrap(),
        )
        .unwrap();
        assert_eq!(p.reference_count("zip", "county"), 2);
        let steam = table("zip,steam\nz1,10\nz2,20\nz3,30\n");
        let joined = p.join(&[("zip", &steam)], "county").unwrap();
        let w = joined.columns[0].weights.as_ref().unwrap();
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass conserved regardless of the mixture.
        let total: f64 = joined.columns[0].values.iter().sum();
        assert!((total - 60.0).abs() < 1e-9);
    }

    #[test]
    fn replace_reference_swaps_in_place() {
        let mut p = pipeline();
        let dm2 = DisaggregationMatrix::from_triples(
            "accidents",
            3,
            2,
            [(0, 0, 5.0), (1, 1, 9.0), (2, 1, 4.0)],
        )
        .unwrap();
        p.register_reference(
            "zip",
            "county",
            ReferenceData::from_dm("accidents", dm2).unwrap(),
        )
        .unwrap();
        // Replace position 0; position 1 must keep its place.
        let dm3 =
            DisaggregationMatrix::from_triples("population", 3, 2, [(0, 0, 7.0), (2, 1, 3.0)])
                .unwrap();
        p.replace_reference(
            "zip",
            "county",
            0,
            ReferenceData::from_dm("population", dm3).unwrap(),
        )
        .unwrap();
        let refs = p.references("zip", "county");
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].source().values()[0], 7.0);
        assert_eq!(refs[1].name(), "accidents");
        // Out-of-range position and bad dimensions are rejected.
        let dm4 = DisaggregationMatrix::from_triples("x", 3, 2, [(0, 0, 1.0)]).unwrap();
        let ok = ReferenceData::from_dm("x", dm4).unwrap();
        assert!(p.replace_reference("zip", "county", 9, ok).is_err());
        let dm5 = DisaggregationMatrix::from_triples("x", 2, 2, [(0, 0, 1.0)]).unwrap();
        let bad = ReferenceData::from_dm("x", dm5).unwrap();
        assert!(matches!(
            p.replace_reference("zip", "county", 0, bad),
            Err(CoreError::SourceMismatch { .. })
        ));
    }

    #[test]
    fn tables_with_partial_unit_coverage() {
        let p = pipeline();
        // z2 missing from the table: treated as zero.
        let steam = table("zip,steam\nz1,10\nz3,30\n");
        let joined = p.join(&[("zip", &steam)], "county").unwrap();
        assert!((joined.columns[0].values[0] - 10.0).abs() < 1e-9);
        assert!((joined.columns[0].values[1] - 30.0).abs() < 1e-9);
    }
}
