//! Reference attributes: the ancillary data GeoAlign learns from.
//!
//! A reference is an attribute whose *true* disaggregation between source
//! and target units is known (paper §3.3: "the disaggregation matrix of the
//! reference attribute ... is often wrapped up in a crosswalk relationship
//! file").

use crate::error::CoreError;
use geoalign_partition::{AggregateVector, DisaggregationMatrix};

/// A reference attribute: its aggregates at the source level plus its
/// disaggregation matrix to the target level.
#[derive(Debug, Clone)]
pub struct ReferenceData {
    name: String,
    source: AggregateVector,
    dm: DisaggregationMatrix,
}

impl ReferenceData {
    /// Bundles a source aggregate vector with its disaggregation matrix.
    /// The vector length must match the matrix's source dimension.
    pub fn new(
        name: impl Into<String>,
        source: AggregateVector,
        dm: DisaggregationMatrix,
    ) -> Result<Self, CoreError> {
        let name = name.into();
        if source.len() != dm.n_source() {
            return Err(CoreError::InconsistentReference { name });
        }
        Ok(Self { name, source, dm })
    }

    /// Builds the reference directly from a disaggregation matrix, taking
    /// the source aggregates as the matrix's row sums (always consistent).
    pub fn from_dm(name: impl Into<String>, dm: DisaggregationMatrix) -> Result<Self, CoreError> {
        let source = dm.source_aggregates().map_err(CoreError::Partition)?;
        Ok(Self {
            name: name.into(),
            source,
            dm,
        })
    }

    /// Reference name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source-level aggregates.
    pub fn source(&self) -> &AggregateVector {
        &self.source
    }

    /// Disaggregation matrix to the target level.
    pub fn dm(&self) -> &DisaggregationMatrix {
        &self.dm
    }

    /// Number of source units.
    pub fn n_source(&self) -> usize {
        self.dm.n_source()
    }

    /// Number of target units.
    pub fn n_target(&self) -> usize {
        self.dm.n_target()
    }

    /// Returns a copy with the source aggregates replaced (used by the
    /// noise-robustness experiments, which perturb the source level only).
    pub fn with_source(&self, source: AggregateVector) -> Result<Self, CoreError> {
        Self::new(self.name.clone(), source, self.dm.clone())
    }
}

/// Validates a set of references against an objective: consistent source
/// count everywhere and a single common target count. Returns the common
/// `(n_source, n_target)`.
pub fn validate_references(
    objective_source_len: usize,
    refs: &[&ReferenceData],
) -> Result<(usize, usize), CoreError> {
    let Some(first) = refs.first() else {
        return Err(CoreError::NoReferences);
    };
    let n_target = first.n_target();
    for r in refs {
        if r.n_source() != objective_source_len {
            return Err(CoreError::SourceMismatch {
                objective: objective_source_len,
                reference: r.n_source(),
                name: r.name().to_owned(),
            });
        }
        if r.n_target() != n_target {
            return Err(CoreError::TargetMismatch {
                left: n_target,
                right: r.n_target(),
                name: r.name().to_owned(),
            });
        }
    }
    Ok((objective_source_len, n_target))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(
        n_source: usize,
        n_target: usize,
        triples: &[(usize, usize, f64)],
    ) -> DisaggregationMatrix {
        DisaggregationMatrix::from_triples("r", n_source, n_target, triples.iter().copied())
            .unwrap()
    }

    #[test]
    fn construction_checks_consistency() {
        let m = dm(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let good = AggregateVector::new("r", vec![1.0, 2.0]).unwrap();
        let r = ReferenceData::new("r", good, m.clone()).unwrap();
        assert_eq!(r.n_source(), 2);
        assert_eq!(r.n_target(), 2);
        let short = AggregateVector::new("r", vec![1.0]).unwrap();
        assert!(ReferenceData::new("r", short, m).is_err());
    }

    #[test]
    fn from_dm_derives_row_sums() {
        let m = dm(2, 3, &[(0, 0, 1.0), (0, 1, 2.0), (1, 2, 4.0)]);
        let r = ReferenceData::from_dm("r", m).unwrap();
        assert_eq!(r.source().values(), &[3.0, 4.0]);
    }

    #[test]
    fn validation_catches_mismatches() {
        let a = ReferenceData::from_dm("a", dm(2, 2, &[(0, 0, 1.0)])).unwrap();
        let b = ReferenceData::from_dm("b", dm(2, 3, &[(0, 0, 1.0)])).unwrap();
        let c = ReferenceData::from_dm("c", dm(3, 2, &[(0, 0, 1.0)])).unwrap();
        assert!(validate_references(2, &[]).is_err());
        assert_eq!(validate_references(2, &[&a]).unwrap(), (2, 2));
        assert!(matches!(
            validate_references(2, &[&a, &b]),
            Err(CoreError::TargetMismatch { .. })
        ));
        assert!(matches!(
            validate_references(2, &[&a, &c]),
            Err(CoreError::SourceMismatch { .. })
        ));
    }

    #[test]
    fn with_source_swaps_aggregates() {
        let r = ReferenceData::from_dm("r", dm(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)])).unwrap();
        let swapped = r
            .with_source(AggregateVector::new("r", vec![5.0, 6.0]).unwrap())
            .unwrap();
        assert_eq!(swapped.source().values(), &[5.0, 6.0]);
        assert_eq!(swapped.dm().nnz(), r.dm().nnz());
    }
}
