//! Domain codecs over `geoalign-store`'s byte-level vocabulary: unit
//! systems, references, and prepared crosswalks as length-prefixed
//! little-endian payloads.
//!
//! The codecs live here (not in `geoalign-store`) so the persistence
//! crate stays domain-blind and the dependency arrow keeps pointing from
//! core to store. Every float is written as its exact IEEE-754 bit
//! pattern and the Gram state is reassembled via
//! [`GramSystem::from_parts`] rather than recomputed, so a decoded
//! [`PreparedCrosswalk`] applies **byte-identically** to the one that
//! was encoded — a warm-started server answers the same bytes the cold
//! one did.
//!
//! ## Key space
//!
//! One flat, prefix-partitioned namespace inside the store:
//!
//! * `sys/<name>` — a unit system's identifier list;
//! * `ref/<nnnnnnnn>` — one reference registration, in registration
//!   order (the payload carries the system pair);
//! * `agg/<nnnnnnnn>` — one streaming-ingest aggregate rollup, in
//!   first-ingest order (the payload carries the system pair and the
//!   full mergeable state, which subsumes every batch folded so far);
//! * `prep/<fingerprint>/<len>/<len>/<source><target>` — a prepared
//!   crosswalk; the explicit lengths keep names containing `/`
//!   unambiguous.

use crate::align::GeoAlignConfig;
use crate::error::CoreError;
use crate::prepare::PreparedCrosswalk;
use crate::reference::ReferenceData;
use crate::store::CrosswalkKey;
use geoalign_linalg::simplex_ls::{GramSystem, SimplexSolver};
use geoalign_linalg::DMatrix;
use geoalign_partition::{AggregateVector, DisaggregationMatrix};
use geoalign_store::{ByteReader, ByteWriter};
use std::time::Duration;

/// Payload format version for every codec in this module.
const CODEC_VERSION: u8 = 1;

/// Key prefix for unit systems.
pub const SYSTEM_PREFIX: &str = "sys/";
/// Key prefix for reference registrations.
pub const REFERENCE_PREFIX: &str = "ref/";
/// Key prefix for prepared crosswalks.
pub const PREPARED_PREFIX: &str = "prep/";
/// Key prefix for streaming-ingest aggregate rollups.
pub const AGG_PREFIX: &str = "agg/";

/// Store key of the unit system `name`.
pub fn system_key(name: &str) -> String {
    format!("{SYSTEM_PREFIX}{name}")
}

/// Recovers a system name from its store key.
pub fn system_name_from_key(key: &str) -> Option<&str> {
    key.strip_prefix(SYSTEM_PREFIX)
}

/// Store key of the `index`-th reference registration. Zero-padded so
/// lexicographic prefix iteration replays registrations in order.
pub fn reference_key(index: u64) -> String {
    format!("{REFERENCE_PREFIX}{index:08}")
}

/// Store key of the `index`-th aggregate rollup. Zero-padded so
/// lexicographic prefix iteration replays rollups in first-ingest order,
/// keeping warm-start reference positions stable.
pub fn agg_key(index: u64) -> String {
    format!("{AGG_PREFIX}{index:08}")
}

/// Store key of a prepared crosswalk.
pub fn prepared_key(key: &CrosswalkKey) -> String {
    format!(
        "{PREPARED_PREFIX}{:016x}/{}/{}/{}{}",
        key.fingerprint,
        key.source.len(),
        key.target.len(),
        key.source,
        key.target
    )
}

fn persist_err(what: &str, e: impl std::fmt::Display) -> CoreError {
    CoreError::Persist {
        detail: format!("{what}: {e}"),
    }
}

// ---------------------------------------------------------------------
// Unit systems
// ---------------------------------------------------------------------

/// Encodes a unit system's identifier list.
pub fn encode_unit_system(unit_ids: &[String]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + unit_ids.iter().map(|s| 4 + s.len()).sum::<usize>());
    w.u8(CODEC_VERSION);
    w.u64(unit_ids.len() as u64);
    for id in unit_ids {
        w.str(id);
    }
    w.into_vec()
}

/// Decodes a unit system's identifier list.
pub fn decode_unit_system(bytes: &[u8]) -> Result<Vec<String>, CoreError> {
    let mut r = ByteReader::new(bytes);
    (|| {
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(geoalign_store::CodecError::new(format!(
                "unsupported unit-system codec version {version}"
            )));
        }
        let n = r.len_u64("unit count")?;
        let mut ids = Vec::with_capacity(n.min(bytes.len()));
        for _ in 0..n {
            ids.push(r.str()?.to_owned());
        }
        r.expect_end()?;
        Ok(ids)
    })()
    .map_err(|e| persist_err("unit system", e))
}

// ---------------------------------------------------------------------
// References
// ---------------------------------------------------------------------

/// Encodes one reference registration: the system pair it belongs to
/// plus the full [`ReferenceData`].
pub fn encode_reference(source: &str, target: &str, r: &ReferenceData) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64 + r.dm().nnz() * 24);
    w.u8(CODEC_VERSION);
    w.str(source);
    w.str(target);
    write_reference_data(&mut w, r);
    w.into_vec()
}

/// Decodes one reference registration back into `(source, target, data)`.
pub fn decode_reference(bytes: &[u8]) -> Result<(String, String, ReferenceData), CoreError> {
    let mut r = ByteReader::new(bytes);
    let (source, target) = (|| {
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(geoalign_store::CodecError::new(format!(
                "unsupported reference codec version {version}"
            )));
        }
        Ok((r.str()?.to_owned(), r.str()?.to_owned()))
    })()
    .map_err(|e| persist_err("reference", e))?;
    let data = read_reference_data(&mut r)?;
    r.expect_end().map_err(|e| persist_err("reference", e))?;
    Ok((source, target, data))
}

// ---------------------------------------------------------------------
// Aggregate rollups
// ---------------------------------------------------------------------

/// Encodes one streaming-ingest rollup: the system pair it belongs to
/// plus the full mergeable [`AggState`](geoalign_agg::AggState). The
/// state's own codec is canonical, so re-persisting an unchanged rollup
/// writes the same bytes.
pub fn encode_agg_rollup(source: &str, target: &str, state: &geoalign_agg::AggState) -> Vec<u8> {
    let state_bytes = state.encode();
    let mut w = ByteWriter::with_capacity(32 + state_bytes.len());
    w.u8(CODEC_VERSION);
    w.str(source);
    w.str(target);
    w.bytes(&state_bytes);
    w.into_vec()
}

/// Decodes one rollup back into `(source, target, state)`.
pub fn decode_agg_rollup(
    bytes: &[u8],
) -> Result<(String, String, geoalign_agg::AggState), CoreError> {
    let mut r = ByteReader::new(bytes);
    let (source, target, state_bytes) = (|| {
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(geoalign_store::CodecError::new(format!(
                "unsupported aggregate-rollup codec version {version}"
            )));
        }
        let source = r.str()?.to_owned();
        let target = r.str()?.to_owned();
        let state_bytes = r.bytes()?;
        r.expect_end()?;
        Ok((source, target, state_bytes))
    })()
    .map_err(|e| persist_err("aggregate rollup", e))?;
    let state = geoalign_agg::AggState::decode(state_bytes)
        .map_err(|e| persist_err("aggregate rollup", e))?;
    Ok((source, target, state))
}

fn write_reference_data(w: &mut ByteWriter, r: &ReferenceData) {
    w.str(r.name());
    w.str(r.source().attribute());
    w.f64_slice(r.source().values());
    let dm = r.dm();
    w.str(dm.attribute());
    w.u64(dm.n_source() as u64);
    w.u64(dm.n_target() as u64);
    w.u64(dm.nnz() as u64);
    for (i, j, v) in dm.matrix().iter() {
        w.u64(i as u64);
        w.u64(j as u64);
        w.f64(v);
    }
}

fn read_reference_data(r: &mut ByteReader<'_>) -> Result<ReferenceData, CoreError> {
    let what = "reference data";
    let name = r.str().map_err(|e| persist_err(what, e))?.to_owned();
    let attr = r.str().map_err(|e| persist_err(what, e))?.to_owned();
    let values = r
        .f64_vec("source aggregates")
        .map_err(|e| persist_err(what, e))?;
    let source = AggregateVector::new(attr, values).map_err(|e| persist_err(what, e))?;
    let dm_attr = r.str().map_err(|e| persist_err(what, e))?.to_owned();
    let n_source = r.len_u64("dm n_source").map_err(|e| persist_err(what, e))?;
    let n_target = r.len_u64("dm n_target").map_err(|e| persist_err(what, e))?;
    let nnz = r.len_u64("dm nnz").map_err(|e| persist_err(what, e))?;
    // Each triple takes 24 bytes; reject a lying count before allocating.
    if nnz.checked_mul(24).is_none_or(|b| b > r.remaining()) {
        return Err(CoreError::Persist {
            detail: format!("{what}: nnz {nnz} exceeds remaining payload"),
        });
    }
    let mut triples = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let i = r.len_u64("dm row").map_err(|e| persist_err(what, e))?;
        let j = r.len_u64("dm col").map_err(|e| persist_err(what, e))?;
        let v = r.f64().map_err(|e| persist_err(what, e))?;
        triples.push((i, j, v));
    }
    let dm = DisaggregationMatrix::from_triples(dm_attr, n_source, n_target, triples)
        .map_err(|e| persist_err(what, e))?;
    ReferenceData::new(name, source, dm)
}

// ---------------------------------------------------------------------
// Prepared crosswalks
// ---------------------------------------------------------------------

fn solver_byte(solver: SimplexSolver) -> u8 {
    match solver {
        SimplexSolver::ProjectedGradient => 0,
        SimplexSolver::ActiveSet => 1,
    }
}

fn solver_from_byte(b: u8) -> Result<SimplexSolver, CoreError> {
    match b {
        0 => Ok(SimplexSolver::ProjectedGradient),
        1 => Ok(SimplexSolver::ActiveSet),
        other => Err(CoreError::Persist {
            detail: format!("unknown solver byte {other}"),
        }),
    }
}

fn write_dense(w: &mut ByteWriter, m: &DMatrix) {
    w.u64(m.nrows() as u64);
    w.u64(m.ncols() as u64);
    for j in 0..m.ncols() {
        for &v in m.column(j) {
            w.f64(v);
        }
    }
}

fn read_dense(r: &mut ByteReader<'_>, what: &str) -> Result<DMatrix, CoreError> {
    let rows = r.len_u64("nrows").map_err(|e| persist_err(what, e))?;
    let cols = r.len_u64("ncols").map_err(|e| persist_err(what, e))?;
    let cells = rows
        .checked_mul(cols)
        .filter(|&c| c.checked_mul(8).is_some_and(|b| b <= r.remaining()))
        .ok_or_else(|| CoreError::Persist {
            detail: format!("{what}: {rows}x{cols} exceeds remaining payload"),
        })?;
    let _ = cells;
    let mut m = DMatrix::zeros(rows, cols);
    for j in 0..cols {
        for cell in m.column_mut(j) {
            *cell = r.f64().map_err(|e| persist_err(what, e))?;
        }
    }
    Ok(m)
}

/// Encodes a prepared crosswalk, snapshot state and all.
pub fn encode_prepared(p: &PreparedCrosswalk) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(
        256 + p.design.nrows() * p.design.ncols() * 8
            + p.refs.iter().map(|r| r.dm().nnz() * 24).sum::<usize>(),
    );
    w.u8(CODEC_VERSION);
    w.u8(solver_byte(p.config.solver));
    w.u8(u8::from(p.config.normalize));
    w.u64(p.n_source as u64);
    w.u64(p.n_target as u64);
    w.u64(p.prepare_time.as_micros().min(u128::from(u64::MAX)) as u64);
    w.u64(p.refs.len() as u64);
    for r in &p.refs {
        write_reference_data(&mut w, r);
    }
    write_dense(&mut w, &p.design);
    write_dense(&mut w, p.gram.gram());
    w.f64(p.gram.frobenius());
    w.u64(p.row_sums_per_ref.len() as u64);
    for sums in &p.row_sums_per_ref {
        w.f64_slice(sums);
    }
    w.into_vec()
}

/// Decodes a prepared crosswalk. The result is byte-identical in
/// behavior to the encoded instance: same design matrix bits, same Gram
/// state bits, so `apply_values` produces bit-equal estimates.
pub fn decode_prepared(bytes: &[u8]) -> Result<PreparedCrosswalk, CoreError> {
    let what = "prepared crosswalk";
    let mut r = ByteReader::new(bytes);
    let version = r.u8().map_err(|e| persist_err(what, e))?;
    if version != CODEC_VERSION {
        return Err(CoreError::Persist {
            detail: format!("unsupported prepared-crosswalk codec version {version}"),
        });
    }
    let solver = solver_from_byte(r.u8().map_err(|e| persist_err(what, e))?)?;
    let normalize = match r.u8().map_err(|e| persist_err(what, e))? {
        0 => false,
        1 => true,
        other => {
            return Err(CoreError::Persist {
                detail: format!("bad normalize byte {other}"),
            })
        }
    };
    let n_source = r.len_u64("n_source").map_err(|e| persist_err(what, e))?;
    let n_target = r.len_u64("n_target").map_err(|e| persist_err(what, e))?;
    let prepare_micros = r.u64().map_err(|e| persist_err(what, e))?;
    let n_refs = r.len_u64("ref count").map_err(|e| persist_err(what, e))?;
    if n_refs > bytes.len() {
        return Err(CoreError::Persist {
            detail: format!("{what}: ref count {n_refs} exceeds payload"),
        });
    }
    let mut refs = Vec::with_capacity(n_refs);
    for _ in 0..n_refs {
        refs.push(read_reference_data(&mut r)?);
    }
    let design = read_dense(&mut r, "design matrix")?;
    let gram_matrix = read_dense(&mut r, "gram matrix")?;
    let frobenius = r.f64().map_err(|e| persist_err(what, e))?;
    let gram =
        GramSystem::from_parts(gram_matrix, frobenius).map_err(|e| persist_err("gram state", e))?;
    let n_sums = r
        .len_u64("row-sum vector count")
        .map_err(|e| persist_err(what, e))?;
    if n_sums != n_refs {
        return Err(CoreError::Persist {
            detail: format!("{what}: {n_sums} row-sum vectors for {n_refs} references"),
        });
    }
    let mut row_sums_per_ref = Vec::with_capacity(n_sums);
    for _ in 0..n_sums {
        row_sums_per_ref.push(r.f64_vec("row sums").map_err(|e| persist_err(what, e))?);
    }
    r.expect_end().map_err(|e| persist_err(what, e))?;

    // Cross-field consistency: the decoded parts must describe one
    // coherent snapshot, or apply() would index out of bounds.
    if design.nrows() != n_source || design.ncols() != n_refs || gram.n() != n_refs {
        return Err(CoreError::Persist {
            detail: format!(
                "{what}: inconsistent shapes (design {}x{}, gram n={}, n_source={n_source}, refs={n_refs})",
                design.nrows(),
                design.ncols(),
                gram.n()
            ),
        });
    }
    for (k, reference) in refs.iter().enumerate() {
        if reference.n_source() != n_source
            || reference.n_target() != n_target
            || row_sums_per_ref[k].len() != n_source
        {
            return Err(CoreError::Persist {
                detail: format!("{what}: reference {k} shapes inconsistent with snapshot"),
            });
        }
    }
    Ok(PreparedCrosswalk {
        config: GeoAlignConfig { solver, normalize },
        refs,
        design,
        gram,
        row_sums_per_ref,
        n_source,
        n_target,
        prepare_time: Duration::from_micros(prepare_micros),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::GeoAlign;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let n_source = rows.len();
        let n_target = rows[0].len();
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm = DisaggregationMatrix::from_triples(name, n_source, n_target, triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    #[test]
    fn unit_system_roundtrip() {
        let ids = vec!["a".to_owned(), "unité/b".to_owned(), String::new()];
        let bytes = encode_unit_system(&ids);
        assert_eq!(decode_unit_system(&bytes).unwrap(), ids);
        // Truncations error rather than panic.
        for cut in 0..bytes.len() {
            assert!(decode_unit_system(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn reference_roundtrip_is_exact() {
        let r = make_ref("pop", &[&[3.5, 0.0, 1.25], &[0.0, 2.0, 0.0]]);
        let bytes = encode_reference("zip", "county", &r);
        let (source, target, back) = decode_reference(&bytes).unwrap();
        assert_eq!(source, "zip");
        assert_eq!(target, "county");
        assert_eq!(back.name(), "pop");
        assert_eq!(back.n_source(), 2);
        assert_eq!(back.n_target(), 3);
        for (x, y) in back.source().values().iter().zip(r.source().values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let got: Vec<_> = back.dm().matrix().iter().collect();
        let want: Vec<_> = r.dm().matrix().iter().collect();
        assert_eq!(got.len(), want.len());
        for ((i1, j1, v1), (i2, j2, v2)) in got.iter().zip(&want) {
            assert_eq!((i1, j1), (i2, j2));
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }

    #[test]
    fn prepared_roundtrip_applies_bit_identically() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[0.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 0.0], &[1.0, 1.0]]);
        let prepared = GeoAlign::new().prepare(&[&r1, &r2]).unwrap();
        let bytes = encode_prepared(&prepared);
        let revived = decode_prepared(&bytes).unwrap();
        assert_eq!(revived.n_source(), prepared.n_source());
        assert_eq!(revived.n_target(), prepared.n_target());
        assert_eq!(revived.config(), prepared.config());
        let obj = AggregateVector::new("obj", vec![10.0, 20.0, 30.0]).unwrap();
        let cold = prepared.apply_values(&obj).unwrap();
        let warm = revived.apply_values(&obj).unwrap();
        for (x, y) in warm.estimate.iter().zip(&cold.estimate) {
            assert_eq!(x.to_bits(), y.to_bits(), "estimates diverged");
        }
        for (x, y) in warm.weights.iter().zip(&cold.weights) {
            assert_eq!(x.to_bits(), y.to_bits(), "weights diverged");
        }
        // Re-encoding the revived snapshot reproduces the exact bytes.
        assert_eq!(encode_prepared(&revived), bytes);
    }

    #[test]
    fn prepared_decode_rejects_damage() {
        let r = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let prepared = GeoAlign::new().prepare(&[&r]).unwrap();
        let bytes = encode_prepared(&prepared);
        // Every truncation errors cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_prepared(&bytes[..cut]).is_err(), "cut {cut} decoded");
        }
        // Unsupported version byte.
        let mut vbytes = bytes.clone();
        vbytes[0] = 99;
        assert!(decode_prepared(&vbytes).is_err());
        // Bad solver byte.
        let mut sbytes = bytes.clone();
        sbytes[1] = 7;
        assert!(decode_prepared(&sbytes).is_err());
    }

    #[test]
    fn agg_rollup_roundtrip_is_byte_identical() {
        let mut state = geoalign_agg::AggState::new("pop", 3, 2).unwrap();
        state.absorb(0, 1, 2.5).unwrap();
        state.absorb(2, 0, 1e-300).unwrap();
        state.absorb(0, 1, -0.5).unwrap();
        state.record_skipped();
        let bytes = encode_agg_rollup("zip", "county", &state);
        let (source, target, back) = decode_agg_rollup(&bytes).unwrap();
        assert_eq!(source, "zip");
        assert_eq!(target, "county");
        assert_eq!(back, state);
        // Re-encoding reproduces the exact bytes (codec is canonical).
        assert_eq!(encode_agg_rollup(&source, &target, &back), bytes);
    }

    #[test]
    fn agg_rollup_decode_rejects_damage() {
        let mut state = geoalign_agg::AggState::new("pop", 2, 2).unwrap();
        state.absorb(1, 0, 4.0).unwrap();
        let bytes = encode_agg_rollup("a", "b", &state);
        for cut in 0..bytes.len() {
            assert!(decode_agg_rollup(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut vbytes = bytes.clone();
        vbytes[0] = 99;
        assert!(decode_agg_rollup(&vbytes).is_err());
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_agg_rollup(&extended).is_err());
    }

    #[test]
    fn keys_are_stable_and_unambiguous() {
        assert_eq!(system_key("zip"), "sys/zip");
        assert_eq!(system_name_from_key("sys/a/b"), Some("a/b"));
        assert_eq!(system_name_from_key("ref/00000001"), None);
        assert_eq!(reference_key(3), "ref/00000003");
        assert!(reference_key(2) < reference_key(10));
        assert_eq!(agg_key(7), "agg/00000007");
        assert!(agg_key(2) < agg_key(10));
        let a = prepared_key(&CrosswalkKey {
            source: "a".into(),
            target: "b/c".into(),
            fingerprint: 0xabcd,
        });
        let b = prepared_key(&CrosswalkKey {
            source: "a/b".into(),
            target: "c".into(),
            fingerprint: 0xabcd,
        });
        assert_ne!(a, b, "length prefixes must disambiguate '/' in names");
        assert!(a.starts_with(PREPARED_PREFIX));
    }
}
