//! The GeoAlign algorithm (paper §3.4, Algorithm 1).
//!
//! Three steps:
//!
//! 1. **Weight learning** — normalize the objective and every reference at
//!    the source level, then solve the simplex-constrained least-squares
//!    problem of Eq. 15 for the weight vector `β`.
//! 2. **Disaggregation** — form the estimated disaggregation matrix of the
//!    objective per Eq. 14: the `β`-weighted combination of the references'
//!    disaggregation matrices, renormalized per source row and rescaled to
//!    the objective's raw source aggregates (volume preservation, Eq. 16).
//! 3. **Re-aggregation** — column sums of the estimated matrix give the
//!    objective's estimates in target units (Eq. 17).

use crate::error::CoreError;
use crate::reference::{validate_references, ReferenceData};
use geoalign_linalg::simplex_ls::{self, SimplexSolver};
use geoalign_linalg::{CsrMatrix, DMatrix};
use geoalign_obs::span;
use geoalign_partition::AggregateVector;
use std::time::{Duration, Instant};

/// Tunable knobs of the GeoAlign algorithm. The defaults reproduce the
/// paper's method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoAlignConfig {
    /// Which Eq. 15 solver to use.
    pub solver: SimplexSolver,
    /// Max-normalize objective and references at the source level before
    /// weight learning (paper §3.4). Disabling this is an ablation that
    /// demonstrates why scale adjustment matters when references live on
    /// heterogeneous scales.
    pub normalize: bool,
}

impl Default for GeoAlignConfig {
    fn default() -> Self {
        Self {
            solver: SimplexSolver::default(),
            normalize: true,
        }
    }
}

/// Wall-clock time spent in each phase of a GeoAlign run. The paper (§4.3)
/// reports that over 90% of runtime is spent computing the disaggregation
/// matrix; these timers let the benchmarks verify the same holds here.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Time spent snapshotting the objective-independent state (Gram
    /// matrix, reference row sums) in [`GeoAlign::prepare`]. Zero for
    /// one-shot [`GeoAlign::estimate`] runs and for
    /// [`crate::PreparedCrosswalk::apply`], where that cost is amortized.
    pub prepare: Duration,
    /// Time in weight learning (Eq. 15).
    pub weight_learning: Duration,
    /// Time in disaggregation (Eq. 14).
    pub disaggregation: Duration,
    /// Time in re-aggregation (Eq. 17).
    pub reaggregation: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.prepare + self.weight_learning + self.disaggregation + self.reaggregation
    }
}

/// Full output of a GeoAlign run.
#[derive(Debug, Clone)]
pub struct GeoAlignResult {
    /// Estimated aggregates of the objective in target units (`â_o^t`).
    pub estimate: Vec<f64>,
    /// Learned reference weights `β` (non-negative, sum to 1), in the
    /// order the references were supplied.
    pub weights: Vec<f64>,
    /// The estimated disaggregation matrix `D̂M_o`.
    pub dm_estimate: CsrMatrix,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

/// The GeoAlign multi-reference crosswalk interpolator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeoAlign {
    config: GeoAlignConfig,
}

impl GeoAlign {
    /// Interpolator with the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interpolator with an explicit configuration.
    pub fn with_config(config: GeoAlignConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GeoAlignConfig {
        &self.config
    }

    /// Runs Algorithm 1: estimates the objective's aggregates in target
    /// units from its source aggregates and the supplied references.
    pub fn estimate(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<GeoAlignResult, CoreError> {
        let (n_source, n_target) = validate_references(objective_source.len(), refs)?;
        let _estimate_span = span!("estimate", refs = refs.len(), n_source = n_source);
        let mut timings = PhaseTimings::default();

        // --- Step 1: weight learning (Eq. 15) ---
        let t0 = Instant::now();
        let weights = {
            let _span = span!("weight_learning");
            self.learn_weights(objective_source, refs)?
        };
        timings.weight_learning = t0.elapsed();

        // --- Step 2: disaggregation (Eq. 14) ---
        let t1 = Instant::now();
        let dm_estimate = {
            let _span = span!("disaggregation");
            disaggregate(objective_source, refs, &weights, n_source, n_target)?
        };
        timings.disaggregation = t1.elapsed();

        // --- Step 3: re-aggregation (Eq. 17) ---
        let t2 = Instant::now();
        let estimate = {
            let _span = span!("reaggregation");
            dm_estimate.col_sums()
        };
        timings.reaggregation = t2.elapsed();

        Ok(GeoAlignResult {
            estimate,
            weights,
            dm_estimate,
            timings,
        })
    }

    /// Step 1 alone: the learned weight vector `β`.
    pub fn learn_weights(
        &self,
        objective_source: &AggregateVector,
        refs: &[&ReferenceData],
    ) -> Result<Vec<f64>, CoreError> {
        validate_references(objective_source.len(), refs)?;
        let columns: Vec<Vec<f64>> = refs
            .iter()
            .map(|r| {
                if self.config.normalize {
                    r.source().normalized()
                } else {
                    r.source().values().to_vec()
                }
            })
            .collect();
        let a = DMatrix::from_columns(&columns)?;
        let b = if self.config.normalize {
            objective_source.normalized()
        } else {
            objective_source.values().to_vec()
        };
        let solution = {
            let _span = span!("solver", refs = refs.len());
            simplex_ls::solve(&a, &b, self.config.solver)?
        };
        crate::obs::record_solver(solution.iterations, &solution.beta);
        Ok(solution.beta)
    }
}

/// Eq. 14: the estimated weighted disaggregation matrix of the objective.
///
/// For each source unit `i` with `Σ_k a_rk^s[i] != 0`:
///
/// ```text
/// D̂M_o[i, j] = (Σ_k β'_k DM_rk[i, j]) / (Σ_k β'_k a_rk^s[i]) · a_o^s[i]
/// ```
///
/// and 0 otherwise. The effective weights `β'_k = β_k / max_i a_rk^s[i]`
/// realize §3.4's "we adapt it to the scale of reference attributes and
/// insert back the weights": the learned `β` lives on the *normalized*
/// scale, so applying it to the raw matrices would let a reference's
/// measurement unit (people vs thousands of people) distort the mixture.
/// With the scale adaptation the estimate is exactly invariant to
/// rescaling any reference — "the magnitude of the references should not
/// be a contributing factor" (§3.4). Rows whose *weighted* denominator vanishes while the
/// unweighted reference total does not (all mass on references that are
/// zero at `i`) fall back to the unweighted combination for that row, which
/// keeps the estimate volume-preserving wherever any reference has signal.
///
/// The denominator's `a_rk^s` is taken from the disaggregation matrices'
/// **row sums**, to which it is exactly tied by Eq. 6 — not from the
/// separately supplied source vectors. The distinction matters only when
/// the two disagree (e.g. the noisy-reference experiments of §4.4.1, where
/// the aggregates are perturbed but the crosswalk files stay accurate);
/// keeping the denominator consistent with the numerator makes the
/// disaggregation exactly invariant to such noise, which is how the paper's
/// Figure 7 ratios stay near 1 even at 50% noise while the noise still
/// perturbs weight learning.
fn disaggregate(
    objective_source: &AggregateVector,
    refs: &[&ReferenceData],
    weights: &[f64],
    n_source: usize,
    n_target: usize,
) -> Result<CsrMatrix, CoreError> {
    let mats: Vec<&CsrMatrix> = refs.iter().map(|r| r.dm().matrix()).collect();
    let row_sums_per_ref: Vec<Vec<f64>> = refs.iter().map(|r| r.dm().matrix().row_sums()).collect();
    disaggregate_with(
        &mats,
        &row_sums_per_ref,
        objective_source.values(),
        weights,
        n_source,
        n_target,
    )
}

/// [`disaggregate`] on precomputed per-reference row sums. One-shot
/// [`GeoAlign::estimate`] computes the row sums on the fly; the prepared
/// path ([`crate::PreparedCrosswalk`]) snapshots them once and reuses them
/// per query — both funnel through this function, so the two paths are the
/// same arithmetic by construction.
pub(crate) fn disaggregate_with(
    mats: &[&CsrMatrix],
    row_sums_per_ref: &[Vec<f64>],
    obj: &[f64],
    weights: &[f64],
    n_source: usize,
    n_target: usize,
) -> Result<CsrMatrix, CoreError> {
    // Scale-adapted weights: β'_k = β_k / max_i a_rk^s[i] (see above).
    let adapted = scale_adapted_weights(weights, row_sums_per_ref);
    // Numerator: Σ_k β'_k DM_rk, assembled sparsely.
    let numerator = CsrMatrix::weighted_sum(mats, &adapted)?;

    // Weighted and unweighted denominators per source unit, from the DM
    // row sums (see the doc comment above for why not the source vectors).
    let (weighted, unweighted) = row_denominators(row_sums_per_ref, &adapted, n_source);

    // Row scale factors: a_o^s[i] / denominator[i].
    let mut row_factors = vec![0.0; n_source];
    let mut fallback_rows: Vec<usize> = Vec::new();
    for i in 0..n_source {
        if weighted[i] > 0.0 {
            row_factors[i] = obj[i] / weighted[i];
        } else if unweighted[i] > 0.0 {
            // Weighted mass vanished at this unit: fall back to the
            // unweighted reference mixture for the row.
            fallback_rows.push(i);
        }
        // Else: no reference has any mass here; the paper's Eq. 14 assigns
        // zero and volume preservation becomes approximate (Eq. 16's "≈").
    }

    let mut scaled = numerator.scale_rows(&row_factors)?;

    if !fallback_rows.is_empty() {
        // Rebuild the affected rows from the unweighted sum.
        let uniform = vec![1.0 / mats.len() as f64; mats.len()];
        let fallback_num = CsrMatrix::weighted_sum(mats, &uniform)?;
        let mut coo = geoalign_linalg::CooMatrix::new(n_source, n_target);
        for (i, j, v) in scaled.iter() {
            coo.push(i, j, v)?;
        }
        for &i in &fallback_rows {
            let denom = unweighted[i] / mats.len() as f64;
            let (cols, vals) = fallback_num.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(i, j as usize, v / denom * obj[i])?;
            }
        }
        scaled = coo.to_csr();
    }

    Ok(scaled)
}

/// The effective weights `β'_k = β_k / max_i a_rk^s[i]` of Eq. 14.
pub(crate) fn scale_adapted_weights(weights: &[f64], row_sums_per_ref: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::new();
    scale_adapted_weights_into(weights, row_sums_per_ref, &mut out);
    out
}

/// [`scale_adapted_weights`] into a reusable buffer (cleared and
/// overwritten) for the allocation-free apply path.
pub(crate) fn scale_adapted_weights_into(
    weights: &[f64],
    row_sums_per_ref: &[Vec<f64>],
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(weights.iter().zip(row_sums_per_ref).map(|(&w, sums)| {
        let m = sums.iter().copied().fold(0.0f64, f64::max);
        if m > 0.0 {
            w / m
        } else {
            0.0
        }
    }));
}

/// Weighted and unweighted per-source-unit denominators of Eq. 14.
pub(crate) fn row_denominators(
    row_sums_per_ref: &[Vec<f64>],
    adapted: &[f64],
    n_source: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut weighted = Vec::new();
    let mut unweighted = Vec::new();
    row_denominators_into(
        row_sums_per_ref,
        adapted,
        n_source,
        &mut weighted,
        &mut unweighted,
    );
    (weighted, unweighted)
}

/// [`row_denominators`] into reusable buffers (cleared and overwritten)
/// for the allocation-free apply path.
pub(crate) fn row_denominators_into(
    row_sums_per_ref: &[Vec<f64>],
    adapted: &[f64],
    n_source: usize,
    weighted: &mut Vec<f64>,
    unweighted: &mut Vec<f64>,
) {
    weighted.clear();
    weighted.resize(n_source, 0.0);
    unweighted.clear();
    unweighted.resize(n_source, 0.0);
    for (sums, &w) in row_sums_per_ref.iter().zip(adapted) {
        for (i, &v) in sums.iter().enumerate() {
            weighted[i] += w * v;
            unweighted[i] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let n_source = rows.len();
        let n_target = rows[0].len();
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm = DisaggregationMatrix::from_triples(name, n_source, n_target, triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn agg(vals: &[f64]) -> AggregateVector {
        AggregateVector::new("obj", vals.to_vec()).unwrap()
    }

    #[test]
    fn single_reference_reduces_to_dasymetric() {
        // One reference: population split 10/15 for source 0, all-in for 1.
        let r = make_ref("pop", &[&[10.0, 15.0], &[0.0, 8.0]]);
        let obj = agg(&[100.0, 50.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r]).unwrap();
        assert_eq!(out.weights, vec![1.0]);
        // Source 0 splits 40/60 → 40 and 60; source 1 all to target 1.
        assert!((out.estimate[0] - 40.0).abs() < 1e-9);
        assert!((out.estimate[1] - 110.0).abs() < 1e-9);
    }

    #[test]
    fn intro_crime_example() {
        // The introduction's example: a zip with 25,000 people split
        // 10,000 / 15,000 across counties A and B; 100 crimes → 40 / 60.
        let r = make_ref("pop", &[&[10_000.0, 15_000.0]]);
        let obj = agg(&[100.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r]).unwrap();
        assert!((out.estimate[0] - 40.0).abs() < 1e-9);
        assert!((out.estimate[1] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn volume_preservation_eq16() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[0.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 0.0], &[1.0, 1.0]]);
        let obj = agg(&[10.0, 20.0, 30.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r1, &r2]).unwrap();
        // Row sums of the estimated DM reproduce the source aggregates.
        let sums = out.dm_estimate.row_sums();
        for (s, o) in sums.iter().zip(obj.values()) {
            assert!((s - o).abs() < 1e-9, "row sum {s} vs source {o}");
        }
        // Total mass is conserved through re-aggregation.
        let total: f64 = out.estimate.iter().sum();
        assert!((total - obj.total()).abs() < 1e-9);
        // All entries non-negative.
        for (_, _, v) in out.dm_estimate.iter() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn weights_prefer_the_matching_reference() {
        // Objective distributed exactly like reference "good"; reference
        // "bad" is wildly different. Weight must concentrate on "good".
        let good = make_ref(
            "good",
            &[
                &[9.0, 1.0],
                &[1.0, 9.0],
                &[5.0, 5.0],
                &[8.0, 0.0],
                &[0.0, 2.0],
            ],
        );
        let bad = make_ref(
            "bad",
            &[
                &[0.0, 1.0],
                &[9.0, 0.0],
                &[1.0, 0.0],
                &[0.0, 7.0],
                &[9.0, 9.0],
            ],
        );
        // Objective at source level proportional to good's row sums.
        let gs: Vec<f64> = good.source().values().iter().map(|v| 3.0 * v).collect();
        let obj = agg(&gs);
        let ga = GeoAlign::new();
        let w = ga.learn_weights(&obj, &[&good, &bad]).unwrap();
        assert!(w[0] > 0.95, "weights {w:?}");
        let out = ga.estimate(&obj, &[&good, &bad]).unwrap();
        // Estimate follows good's target distribution scaled by 3.
        let expect = good.dm().matrix().col_sums();
        for (e, x) in out.estimate.iter().zip(&expect) {
            assert!((e - 3.0 * x).abs() < 0.3, "estimate {e} vs {x}");
        }
    }

    #[test]
    fn zero_signal_unit_gets_zero_row() {
        // Source unit 1 has zero mass in every reference: Eq. 14's
        // "otherwise 0" branch.
        let r = make_ref("r", &[&[1.0, 1.0], &[0.0, 0.0]]);
        let obj = agg(&[10.0, 7.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r]).unwrap();
        let sums = out.dm_estimate.row_sums();
        assert!((sums[0] - 10.0).abs() < 1e-12);
        assert_eq!(sums[1], 0.0); // mass at unit 1 is unavoidably dropped
        let total: f64 = out.estimate.iter().sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_denominator_fallback() {
        // Reference "a" is zero at source unit 1, reference "b" is not.
        // Construct an objective perfectly matching "a" so that β ≈ (1, 0);
        // unit 1 then has zero *weighted* denominator but nonzero
        // unweighted total, exercising the fallback path that keeps its
        // mass instead of dropping it.
        let a = make_ref("a", &[&[8.0, 2.0], &[0.0, 0.0], &[3.0, 3.0]]);
        let b = make_ref("b", &[&[1.0, 0.0], &[2.0, 6.0], &[0.0, 1.0]]);
        // Objective proportional to a's sources except unit 1 has mass.
        let obj = agg(&[10.0, 4.0, 6.0]);
        let out = GeoAlign::new().estimate(&obj, &[&a, &b]).unwrap();
        let sums = out.dm_estimate.row_sums();
        // Unit 1's mass must be preserved through the fallback.
        assert!(
            (sums[1] - 4.0).abs() < 1e-9,
            "fallback row must preserve volume, got {sums:?} with weights {:?}",
            out.weights
        );
        let total: f64 = out.estimate.iter().sum();
        assert!((total - obj.total()).abs() < 1e-9);
    }

    #[test]
    fn weights_form_a_distribution() {
        let r1 = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let r2 = make_ref("b", &[&[5.0, 1.0], &[2.0, 2.0]]);
        let r3 = make_ref("c", &[&[2.0, 2.0], &[2.0, 2.0]]);
        let obj = agg(&[4.0, 9.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r1, &r2, &r3]).unwrap();
        assert_eq!(out.weights.len(), 3);
        assert!(out.weights.iter().all(|&w| w >= 0.0));
        let s: f64 = out.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_references_error() {
        let r1 = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let obj_short = agg(&[1.0]);
        assert!(matches!(
            GeoAlign::new().estimate(&obj_short, &[&r1]),
            Err(CoreError::SourceMismatch { .. })
        ));
        let obj = agg(&[1.0, 2.0]);
        assert!(matches!(
            GeoAlign::new().estimate(&obj, &[]),
            Err(CoreError::NoReferences)
        ));
    }

    #[test]
    fn normalization_ablation_changes_weights_under_scale_skew() {
        // The objective's *distribution* matches the large-scale reference
        // "big", while "small" is distribution-mismatched but lives on the
        // objective's scale. With normalization the solver correctly puts
        // its weight on "big"; without it, any weight on "big" explodes the
        // residual against the small-magnitude objective, so scale — not
        // distribution similarity — dictates the weights. This is exactly
        // why §3.4 normalizes.
        let small = make_ref("small", &[&[2.0, 0.0], &[0.0, 0.5], &[0.1, 0.4]]);
        let big = make_ref("big", &[&[400.0, 500.0], &[1800.0, 200.0], &[500.0, 700.0]]);
        // obj ∝ big's source sums [900, 2000, 1200], scaled down 1000×.
        let obj = agg(&[0.9, 2.0, 1.2]);
        let with = GeoAlign::with_config(GeoAlignConfig {
            normalize: true,
            ..GeoAlignConfig::default()
        });
        let without = GeoAlign::with_config(GeoAlignConfig {
            normalize: false,
            ..GeoAlignConfig::default()
        });
        let w_norm = with.learn_weights(&obj, &[&small, &big]).unwrap();
        let w_raw = without.learn_weights(&obj, &[&small, &big]).unwrap();
        assert!(w_norm[1] > 0.95, "normalized should pick big: {w_norm:?}");
        assert!(w_raw[1] < 0.05, "raw should be scale-dominated: {w_raw:?}");
    }

    #[test]
    fn both_solvers_give_matching_estimates() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[1.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 1.0], &[2.0, 1.0]]);
        let obj = agg(&[12.0, 18.0, 9.0]);
        let pg = GeoAlign::with_config(GeoAlignConfig {
            solver: SimplexSolver::ProjectedGradient,
            normalize: true,
        })
        .estimate(&obj, &[&r1, &r2])
        .unwrap();
        let act = GeoAlign::with_config(GeoAlignConfig {
            solver: SimplexSolver::ActiveSet,
            normalize: true,
        })
        .estimate(&obj, &[&r1, &r2])
        .unwrap();
        for (p, a) in pg.estimate.iter().zip(&act.estimate) {
            assert!((p - a).abs() < 1e-4, "{p} vs {a}");
        }
    }

    #[test]
    fn timings_are_recorded() {
        let r = make_ref("a", &[&[1.0, 1.0], &[2.0, 2.0]]);
        let obj = agg(&[3.0, 4.0]);
        let out = GeoAlign::new().estimate(&obj, &[&r]).unwrap();
        // Total is the sum of the phases (sanity of the accounting).
        let total = out.timings.total();
        assert_eq!(
            total,
            out.timings.prepare
                + out.timings.weight_learning
                + out.timings.disaggregation
                + out.timings.reaggregation
        );
        // One-shot estimates have no prepare phase.
        assert_eq!(out.timings.prepare, Duration::ZERO);
    }
}
