//! The prepare/apply split: snapshot everything about a crosswalk that
//! does not depend on the objective's values, then answer many queries
//! against the snapshot.
//!
//! A GeoAlign run factors cleanly into an objective-independent half and a
//! per-query half:
//!
//! * **prepare** — the references' disaggregation matrices and their row
//!   sums (the denominators of Eq. 14), the stacked source-level design
//!   matrix of Eq. 15, and its Gram matrix `AᵀA` (the normal-equations
//!   state both simplex solvers run on);
//! * **apply** — per objective vector `b`, only the right-hand-side
//!   products `Aᵀb` and `bᵀb`, the simplex solve, and the sparse mixture.
//!
//! Because [`GeoAlign::estimate`] itself routes through the same
//! Gram-state solver ([`geoalign_linalg::simplex_ls::solve_gram`]) and the
//! same mixture kernel, `prepare(refs).apply(v)` is numerically identical
//! to `estimate(v, refs)` — not merely close.

use crate::align::{
    disaggregate_with, row_denominators_into, scale_adapted_weights_into, GeoAlign, GeoAlignConfig,
    GeoAlignResult, PhaseTimings,
};
use crate::error::CoreError;
use crate::reference::{validate_references, ReferenceData};
use geoalign_linalg::dense::dot;
use geoalign_linalg::simplex_ls::{self, GramSystem};
use geoalign_linalg::{CsrMatrix, DMatrix, SolverScratch};
use geoalign_obs::span;
use geoalign_partition::AggregateVector;
use std::time::{Duration, Instant};

/// Reusable working memory for [`PreparedCrosswalk::apply_values`]: the
/// normalized objective, right-hand-side products, Eq. 14 denominators
/// and per-row factors, plus the solver arena. One arena per thread
/// (never shared — [`PreparedCrosswalk::apply_batch_with`] creates one
/// per worker); buffers carry capacity between queries, never values.
/// See DESIGN.md §15 for the ownership and bit-identity rules.
#[derive(Debug, Default)]
pub struct ApplyScratch {
    /// Normalized (or copied) objective vector `b`.
    b: Vec<f64>,
    /// Right-hand side `Aᵀb`.
    atb: Vec<f64>,
    /// Scale-adapted weights `β'`.
    adapted: Vec<f64>,
    /// Weighted denominators of Eq. 14.
    weighted: Vec<f64>,
    /// Unweighted denominators (fallback mass).
    unweighted: Vec<f64>,
    /// Per-row weighted-mixture factors.
    rf_weighted: Vec<f64>,
    /// Per-row uniform-fallback factors.
    rf_fallback: Vec<f64>,
    /// Simplex-solver arena threaded into `solve_gram_scratch`.
    solver: SolverScratch,
}

impl ApplyScratch {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The value-independent snapshot of a crosswalk: everything
/// [`GeoAlign::estimate`] computes that depends only on the references,
/// ready to be applied to any number of objective vectors.
#[derive(Debug, Clone)]
pub struct PreparedCrosswalk {
    // Fields are crate-visible so `persist` can take a snapshot apart and
    // reassemble a byte-identical one from disk.
    pub(crate) config: GeoAlignConfig,
    pub(crate) refs: Vec<ReferenceData>,
    /// Stacked source-level reference matrix of Eq. 15 (normalized
    /// per-column when the config says so).
    pub(crate) design: DMatrix,
    /// Normal-equations state `AᵀA` of the design matrix.
    pub(crate) gram: GramSystem,
    /// Per-reference disaggregation-matrix row sums (Eq. 14 denominators).
    pub(crate) row_sums_per_ref: Vec<Vec<f64>>,
    pub(crate) n_source: usize,
    pub(crate) n_target: usize,
    pub(crate) prepare_time: Duration,
}

/// Lightweight output of [`PreparedCrosswalk::apply_values`]: the estimate
/// without the materialized disaggregation matrix.
#[derive(Debug, Clone)]
pub struct CrosswalkEstimate {
    /// Estimated aggregates in target units.
    pub estimate: Vec<f64>,
    /// Learned reference weights `β`.
    pub weights: Vec<f64>,
    /// Per-phase wall-clock timings of this apply.
    pub timings: PhaseTimings,
}

impl GeoAlign {
    /// Snapshots the objective-independent half of Algorithm 1 for the
    /// given references. The returned [`PreparedCrosswalk`] owns copies of
    /// the references and can be applied to any number of objective
    /// vectors — including concurrently, since applying is `&self`.
    pub fn prepare(&self, refs: &[&ReferenceData]) -> Result<PreparedCrosswalk, CoreError> {
        let t0 = Instant::now();
        let _span = span!("prepare", refs = refs.len());
        let (n_source, n_target) = validate_references_nonempty(refs)?;
        let columns: Vec<Vec<f64>> = refs
            .iter()
            .map(|r| {
                if self.config().normalize {
                    r.source().normalized()
                } else {
                    r.source().values().to_vec()
                }
            })
            .collect();
        let design = DMatrix::from_columns(&columns)?;
        let gram = {
            let _span = span!("gram", refs = refs.len(), n_source = n_source);
            GramSystem::new(&design)?
        };
        let row_sums_per_ref: Vec<Vec<f64>> =
            refs.iter().map(|r| r.dm().matrix().row_sums()).collect();
        geoalign_obs::cost::add_rows(n_source as u64);
        geoalign_obs::cost::add_cells(
            refs.iter()
                .map(|r| r.dm().matrix().nnz() as u64)
                .sum::<u64>()
                + (n_source * refs.len()) as u64,
        );
        let prepared = PreparedCrosswalk {
            config: *self.config(),
            refs: refs.iter().map(|&r| r.clone()).collect(),
            design,
            gram,
            row_sums_per_ref,
            n_source,
            n_target,
            prepare_time: t0.elapsed(),
        };
        crate::obs::prepare_micros().record(prepared.prepare_time);
        Ok(prepared)
    }
}

/// [`validate_references`] against the references' own source dimension
/// (prepare has no objective vector yet to validate against).
fn validate_references_nonempty(refs: &[&ReferenceData]) -> Result<(usize, usize), CoreError> {
    let Some(first) = refs.first() else {
        return Err(CoreError::NoReferences);
    };
    validate_references(first.n_source(), refs)
}

impl PreparedCrosswalk {
    /// Number of source units the snapshot expects.
    pub fn n_source(&self) -> usize {
        self.n_source
    }

    /// Number of target units estimates are produced over.
    pub fn n_target(&self) -> usize {
        self.n_target
    }

    /// The snapshotted references, in supply order.
    pub fn references(&self) -> &[ReferenceData] {
        &self.refs
    }

    /// The configuration the snapshot was prepared under.
    pub fn config(&self) -> &GeoAlignConfig {
        &self.config
    }

    /// Wall-clock cost of building this snapshot — the amortized half of
    /// the prepare/apply split.
    pub fn prepare_duration(&self) -> Duration {
        self.prepare_time
    }

    /// The incremental-maintenance delta path: rebuilds the snapshot after
    /// exactly one reference changed — or one was appended, at
    /// `index == references().len()` — re-deriving only that reference's
    /// design column, Gram row/column and disaggregation row sums instead
    /// of re-running the full `O(n²m)` prepare.
    ///
    /// The result is **bit-identical** to [`GeoAlign::prepare`] over the
    /// same final reference set: unchanged columns keep their exact bits,
    /// the touched Gram entries are the same independent dot products a
    /// from-scratch build evaluates, and the Frobenius norm is recomputed
    /// whole. This is what lets a streaming server fold `/ingest` batches
    /// in and still answer exactly like a cold batch run.
    ///
    /// Returns the new snapshot plus the number of *touched rows*: source
    /// units whose design-column value actually changed (all nonzero rows,
    /// for an append).
    pub fn with_reference_updated(
        &self,
        index: usize,
        reference: ReferenceData,
    ) -> Result<(PreparedCrosswalk, usize), CoreError> {
        let t0 = Instant::now();
        let _span = span!("incremental_prepare", index = index);
        if index > self.refs.len() {
            return Err(CoreError::UnknownReference {
                name: format!("reference #{index}"),
            });
        }
        if reference.n_source() != self.n_source {
            return Err(CoreError::SourceMismatch {
                objective: self.n_source,
                reference: reference.n_source(),
                name: reference.name().to_owned(),
            });
        }
        if reference.n_target() != self.n_target {
            return Err(CoreError::TargetMismatch {
                left: self.n_target,
                right: reference.n_target(),
                name: reference.name().to_owned(),
            });
        }
        let column = if self.config.normalize {
            reference.source().normalized()
        } else {
            reference.source().values().to_vec()
        };
        let touched = if index < self.refs.len() {
            let old = self.design.column(index);
            column
                .iter()
                .zip(old)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count()
        } else {
            column.iter().filter(|&&v| v != 0.0).count()
        };
        // Unchanged columns are copied bit-for-bit out of the existing
        // design; only the updated column is rebuilt from the reference.
        let mut columns: Vec<Vec<f64>> = (0..self.design.ncols())
            .map(|j| self.design.column(j).to_vec())
            .collect();
        if index < columns.len() {
            columns[index] = column;
        } else {
            columns.push(column);
        }
        let design = DMatrix::from_columns(&columns)?;
        let gram = self.gram.with_updated_column(&design, index)?;
        let row_sums = reference.dm().matrix().row_sums();
        let mut refs = self.refs.clone();
        let mut row_sums_per_ref = self.row_sums_per_ref.clone();
        if index < refs.len() {
            refs[index] = reference;
            row_sums_per_ref[index] = row_sums;
        } else {
            refs.push(reference);
            row_sums_per_ref.push(row_sums);
        }
        crate::obs::incremental_rows().add(touched as u64);
        let prepared = PreparedCrosswalk {
            config: self.config,
            refs,
            design,
            gram,
            row_sums_per_ref,
            n_source: self.n_source,
            n_target: self.n_target,
            prepare_time: t0.elapsed(),
        };
        crate::obs::incremental_prepare_micros().record(prepared.prepare_time);
        Ok((prepared, touched))
    }

    /// Runs the per-query half of Algorithm 1 against the snapshot.
    /// Numerically identical to [`GeoAlign::estimate`] with the same
    /// references: both run the simplex solver on the same Gram state and
    /// the same mixture kernel.
    pub fn apply(&self, objective_source: &AggregateVector) -> Result<GeoAlignResult, CoreError> {
        self.check_objective(objective_source)?;
        let _apply_span = span!("apply", refs = self.refs.len(), n_source = self.n_source);
        self.attribute_apply_cost();
        let t_apply = Instant::now();
        let mut timings = PhaseTimings::default();

        let t0 = Instant::now();
        let weights = {
            let _span = span!("weight_learning");
            self.learn_weights(objective_source)?
        };
        timings.weight_learning = t0.elapsed();

        let t1 = Instant::now();
        let dm_estimate = {
            let _span = span!("disaggregation");
            let mats: Vec<&CsrMatrix> = self.refs.iter().map(|r| r.dm().matrix()).collect();
            disaggregate_with(
                &mats,
                &self.row_sums_per_ref,
                objective_source.values(),
                &weights,
                self.n_source,
                self.n_target,
            )?
        };
        timings.disaggregation = t1.elapsed();

        let t2 = Instant::now();
        let estimate = {
            let _span = span!("reaggregation");
            dm_estimate.col_sums()
        };
        timings.reaggregation = t2.elapsed();

        crate::obs::apply_micros().record(t_apply.elapsed());
        Ok(GeoAlignResult {
            estimate,
            weights,
            dm_estimate,
            timings,
        })
    }

    /// The serving fast path: like [`PreparedCrosswalk::apply`] but never
    /// materializes the estimated disaggregation matrix. The estimate is
    /// accumulated directly as
    /// `est[j] += f_k(i) · DM_k[i, j]` with per-row factors
    /// `f_k(i) = β'_k · a_o[i] / den(i)` (and the uniform fallback factor
    /// on rows whose weighted denominator vanishes) — the distributive
    /// reordering of Eq. 14 + Eq. 17. Same arithmetic as `apply` up to
    /// floating-point summation order; agreement is covered by tests at
    /// 1e-9 relative.
    pub fn apply_values(
        &self,
        objective_source: &AggregateVector,
    ) -> Result<CrosswalkEstimate, CoreError> {
        self.apply_values_scratch(objective_source, &mut ApplyScratch::new())
    }

    /// [`PreparedCrosswalk::apply_values`] through a reusable
    /// [`ApplyScratch`]: identical arithmetic in the identical order —
    /// the result is bit-for-bit the same — but a repeated query only
    /// allocates its two outputs (the estimate and the weights).
    pub fn apply_values_scratch(
        &self,
        objective_source: &AggregateVector,
        scratch: &mut ApplyScratch,
    ) -> Result<CrosswalkEstimate, CoreError> {
        self.check_objective(objective_source)?;
        let _apply_span = span!("apply", refs = self.refs.len(), n_source = self.n_source);
        self.attribute_apply_cost();
        let t_apply = Instant::now();
        // Output allocation: the estimate the caller keeps.
        let mut estimate = vec![0.0; self.n_target];
        let (weights, timings) =
            self.apply_values_into(objective_source, &mut estimate, scratch)?;
        crate::obs::apply_micros().record(t_apply.elapsed());
        Ok(CrosswalkEstimate {
            estimate,
            weights,
            timings,
        })
    }

    /// The allocation-free apply core: accumulates the estimate into the
    /// caller's `estimate` slice (length `n_target`, fully overwritten)
    /// through the scratch arena. Zero heap allocations here once the
    /// arena has grown to the problem size (enforced by check.sh's
    /// hot-loop gate — keep `.clone()`/`to_vec()`/`vec![` out); the
    /// returned weights are the solver wrapper's output allocation.
    fn apply_values_into(
        &self,
        objective_source: &AggregateVector,
        estimate: &mut [f64],
        s: &mut ApplyScratch,
    ) -> Result<(Vec<f64>, PhaseTimings), CoreError> {
        let mut timings = PhaseTimings::default();

        let t0 = Instant::now();
        let weights = {
            let _span = span!("weight_learning");
            self.learn_weights_scratch(objective_source, s)?
        };
        timings.weight_learning = t0.elapsed();

        let t1 = Instant::now();
        let _disagg_span = span!("disaggregation");
        scale_adapted_weights_into(&weights, &self.row_sums_per_ref, &mut s.adapted);
        row_denominators_into(
            &self.row_sums_per_ref,
            &s.adapted,
            self.n_source,
            &mut s.weighted,
            &mut s.unweighted,
        );
        let obj = objective_source.values();
        // Per-row factors: the weighted-mixture factor and the uniform
        // fallback factor; exactly one of the two is nonzero per live row.
        s.rf_weighted.clear();
        s.rf_weighted.resize(self.n_source, 0.0);
        s.rf_fallback.clear();
        s.rf_fallback.resize(self.n_source, 0.0);
        #[allow(clippy::needless_range_loop)] // lockstep over four row slices
        for i in 0..self.n_source {
            if s.weighted[i] > 0.0 {
                s.rf_weighted[i] = obj[i] / s.weighted[i];
            } else if s.unweighted[i] > 0.0 {
                s.rf_fallback[i] = obj[i] / s.unweighted[i];
            }
        }
        estimate.fill(0.0);
        for (k, r) in self.refs.iter().enumerate() {
            let bk = s.adapted[k];
            for (i, j, v) in r.dm().matrix().iter() {
                let f = bk * s.rf_weighted[i] + s.rf_fallback[i];
                if f != 0.0 {
                    estimate[j] += f * v;
                }
            }
        }
        drop(_disagg_span);
        timings.disaggregation = t1.elapsed();
        Ok((weights, timings))
    }

    /// Applies the snapshot to many objective vectors concurrently (one
    /// task per vector) on the process-global executor. See
    /// [`PreparedCrosswalk::apply_batch_with`].
    pub fn apply_batch(
        &self,
        objectives: &[AggregateVector],
    ) -> Result<Vec<CrosswalkEstimate>, CoreError> {
        self.apply_batch_with(objectives, geoalign_exec::Executor::global())
    }

    /// [`PreparedCrosswalk::apply_batch`] on an explicit executor. Each
    /// vector runs [`PreparedCrosswalk::apply_values`] independently
    /// through one [`ApplyScratch`] per worker thread (so a warm batch
    /// stops re-allocating the apply working set); results come back in
    /// input order, and the first failing vector (in input order) decides
    /// the error — exactly like a sequential loop.
    pub fn apply_batch_with(
        &self,
        objectives: &[AggregateVector],
        exec: geoalign_exec::Executor,
    ) -> Result<Vec<CrosswalkEstimate>, CoreError> {
        let per_vector =
            exec.run_tasks_with(objectives.len(), ApplyScratch::new, |scratch, i| {
                self.apply_values_scratch(&objectives[i], scratch)
            })?;
        per_vector.into_iter().collect()
    }

    /// The per-query weight learning (Eq. 15) on the prepared Gram state.
    pub fn learn_weights(&self, objective_source: &AggregateVector) -> Result<Vec<f64>, CoreError> {
        self.learn_weights_scratch(objective_source, &mut ApplyScratch::new())
    }

    /// [`PreparedCrosswalk::learn_weights`] through a reusable
    /// [`ApplyScratch`] — the allocation-free form `apply_values_into`
    /// calls per query. The returned `β` is the only output allocation.
    pub fn learn_weights_scratch(
        &self,
        objective_source: &AggregateVector,
        s: &mut ApplyScratch,
    ) -> Result<Vec<f64>, CoreError> {
        self.check_objective(objective_source)?;
        if self.config.normalize {
            objective_source.normalized_into(&mut s.b);
        } else {
            s.b.clear();
            s.b.extend_from_slice(objective_source.values());
        }
        s.atb.clear();
        s.atb.resize(self.design.ncols(), 0.0);
        self.design.tr_matvec_into(&s.b, &mut s.atb)?;
        let btb = dot(&s.b, &s.b);
        let solution = {
            let _span = span!("solver", refs = self.refs.len());
            simplex_ls::solve_gram_scratch(
                &self.gram,
                &s.atb,
                btb,
                self.config.solver,
                &mut s.solver,
            )?
        };
        crate::obs::record_solver(solution.iterations, &solution.beta);
        Ok(solution.beta)
    }

    /// Charges this apply's workload — rows the mixture kernel walks and
    /// disaggregation cells it visits — to the caller's cost scope (a
    /// no-op when none is open).
    fn attribute_apply_cost(&self) {
        geoalign_obs::cost::add_rows(self.n_source as u64);
        geoalign_obs::cost::add_cells(
            self.refs
                .iter()
                .map(|r| r.dm().matrix().nnz() as u64)
                .sum::<u64>(),
        );
    }

    fn check_objective(&self, objective_source: &AggregateVector) -> Result<(), CoreError> {
        if objective_source.len() != self.n_source {
            return Err(CoreError::SourceMismatch {
                objective: objective_source.len(),
                reference: self.n_source,
                name: self
                    .refs
                    .first()
                    .map(|r| r.name().to_owned())
                    .unwrap_or_default(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoalign_partition::DisaggregationMatrix;

    fn make_ref(name: &str, rows: &[&[f64]]) -> ReferenceData {
        let n_source = rows.len();
        let n_target = rows[0].len();
        let mut triples = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triples.push((i, j, v));
                }
            }
        }
        let dm = DisaggregationMatrix::from_triples(name, n_source, n_target, triples).unwrap();
        ReferenceData::from_dm(name, dm).unwrap()
    }

    fn agg(vals: &[f64]) -> AggregateVector {
        AggregateVector::new("obj", vals.to_vec()).unwrap()
    }

    #[test]
    fn apply_matches_estimate_exactly() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[0.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 0.0], &[1.0, 1.0]]);
        let ga = GeoAlign::new();
        let prepared = ga.prepare(&[&r1, &r2]).unwrap();
        for vals in [
            vec![10.0, 20.0, 30.0],
            vec![1.0, 0.0, 2.0],
            vec![5.5, 5.5, 5.5],
        ] {
            let obj = agg(&vals);
            let one_shot = ga.estimate(&obj, &[&r1, &r2]).unwrap();
            let applied = prepared.apply(&obj).unwrap();
            for (p, q) in applied.estimate.iter().zip(&one_shot.estimate) {
                assert!((p - q).abs() <= 1e-12, "estimate {p} vs {q}");
            }
            for (p, q) in applied.weights.iter().zip(&one_shot.weights) {
                assert!((p - q).abs() <= 1e-12, "weights {p} vs {q}");
            }
        }
    }

    #[test]
    fn apply_values_matches_apply() {
        // Includes a fallback row: reference "a" is zero at unit 1.
        let a = make_ref("a", &[&[8.0, 2.0], &[0.0, 0.0], &[3.0, 3.0]]);
        let b = make_ref("b", &[&[1.0, 0.0], &[2.0, 6.0], &[0.0, 1.0]]);
        let prepared = GeoAlign::new().prepare(&[&a, &b]).unwrap();
        let obj = agg(&[10.0, 4.0, 6.0]);
        let full = prepared.apply(&obj).unwrap();
        let fast = prepared.apply_values(&obj).unwrap();
        let scale: f64 = obj.total().max(1.0);
        for (p, q) in fast.estimate.iter().zip(&full.estimate) {
            assert!((p - q).abs() <= 1e-9 * scale, "{p} vs {q}");
        }
        let total: f64 = fast.estimate.iter().sum();
        assert!((total - obj.total()).abs() < 1e-9);
    }

    #[test]
    fn prepared_learn_weights_matches_one_shot() {
        let r1 = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let r2 = make_ref("b", &[&[5.0, 1.0], &[2.0, 2.0]]);
        let ga = GeoAlign::new();
        let prepared = ga.prepare(&[&r1, &r2]).unwrap();
        let obj = agg(&[4.0, 9.0]);
        let w_prep = prepared.learn_weights(&obj).unwrap();
        let w_once = ga.learn_weights(&obj, &[&r1, &r2]).unwrap();
        for (p, q) in w_prep.iter().zip(&w_once) {
            assert!((p - q).abs() <= 1e-12);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let r = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let prepared = GeoAlign::new().prepare(&[&r]).unwrap();
        assert!(matches!(
            prepared.apply(&agg(&[1.0])),
            Err(CoreError::SourceMismatch { .. })
        ));
        assert!(GeoAlign::new().prepare(&[]).is_err());
    }

    /// Asserts two snapshots are bitwise identical in every field that
    /// feeds the numerics (prepare_time is wall clock and excluded).
    fn assert_prepared_identical(a: &PreparedCrosswalk, b: &PreparedCrosswalk) {
        assert_eq!(a.n_source, b.n_source);
        assert_eq!(a.n_target, b.n_target);
        assert_eq!(a.refs.len(), b.refs.len());
        for j in 0..a.design.ncols() {
            for (x, y) in a.design.column(j).iter().zip(b.design.column(j)) {
                assert_eq!(x.to_bits(), y.to_bits(), "design col {j}");
            }
        }
        assert_eq!(a.gram.frobenius().to_bits(), b.gram.frobenius().to_bits());
        for j in 0..a.gram.n() {
            for (x, y) in a.gram.gram().column(j).iter().zip(b.gram.gram().column(j)) {
                assert_eq!(x.to_bits(), y.to_bits(), "gram col {j}");
            }
        }
        for (ra, rb) in a.row_sums_per_ref.iter().zip(&b.row_sums_per_ref) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "row sums");
            }
        }
    }

    #[test]
    fn incremental_update_is_bitwise_exact() {
        let r1 = make_ref("a", &[&[3.0, 1.0], &[2.0, 2.0], &[0.0, 5.0]]);
        let r2 = make_ref("b", &[&[1.0, 1.0], &[4.0, 0.0], &[1.0, 1.0]]);
        let ga = GeoAlign::new();
        let prepared = ga.prepare(&[&r1, &r2]).unwrap();

        // Replacing a reference matches a from-scratch prepare bit for bit.
        let r2v2 = make_ref("b", &[&[1.5, 1.0], &[4.0, 0.25], &[2.0, 1.0]]);
        let (delta, touched) = prepared.with_reference_updated(1, r2v2.clone()).unwrap();
        let scratch = ga.prepare(&[&r1, &r2v2]).unwrap();
        assert_prepared_identical(&delta, &scratch);
        assert!(touched > 0 && touched <= 3);

        // Appending a reference matches too.
        let r3 = make_ref("c", &[&[0.5, 0.5], &[1.0, 1.0], &[2.0, 0.0]]);
        let (grown, appended_rows) = delta.with_reference_updated(2, r3.clone()).unwrap();
        let scratch3 = ga.prepare(&[&r1, &r2v2, &r3]).unwrap();
        assert_prepared_identical(&grown, &scratch3);
        assert_eq!(appended_rows, 3);

        // Applies through the delta snapshot are bit-identical as well.
        let obj = agg(&[10.0, 20.0, 30.0]);
        let via_delta = grown.apply_values(&obj).unwrap();
        let via_scratch = scratch3.apply_values(&obj).unwrap();
        for (p, q) in via_delta.estimate.iter().zip(&via_scratch.estimate) {
            assert_eq!(p.to_bits(), q.to_bits());
        }

        // A sequence of replacements stays exact (no drift accumulation).
        let mut rolling = grown;
        let mut latest = r3;
        for round in 1..=4 {
            let v = round as f64;
            latest = make_ref("c", &[&[0.5 * v, 0.5], &[1.0, v], &[2.0, 0.125 * v]]);
            rolling = rolling.with_reference_updated(2, latest.clone()).unwrap().0;
        }
        let scratch_final = ga.prepare(&[&r1, &r2v2, &latest]).unwrap();
        assert_prepared_identical(&rolling, &scratch_final);
    }

    #[test]
    fn incremental_update_rejects_bad_shapes() {
        let r = make_ref("a", &[&[1.0, 2.0], &[3.0, 4.0]]);
        let prepared = GeoAlign::new().prepare(&[&r]).unwrap();
        // Index beyond an append.
        assert!(prepared.with_reference_updated(2, r.clone()).is_err());
        // Source-dimension mismatch.
        let bad = make_ref("b", &[&[1.0, 2.0]]);
        assert!(matches!(
            prepared.with_reference_updated(0, bad),
            Err(CoreError::SourceMismatch { .. })
        ));
        // Target-dimension mismatch.
        let bad = make_ref("b", &[&[1.0], &[2.0]]);
        assert!(matches!(
            prepared.with_reference_updated(0, bad),
            Err(CoreError::TargetMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_metadata_is_exposed() {
        let r = make_ref("pop", &[&[1.0, 2.0, 0.0], &[3.0, 0.0, 4.0]]);
        let prepared = GeoAlign::new().prepare(&[&r]).unwrap();
        assert_eq!(prepared.n_source(), 2);
        assert_eq!(prepared.n_target(), 3);
        assert_eq!(prepared.references().len(), 1);
        assert_eq!(prepared.references()[0].name(), "pop");
    }
}
