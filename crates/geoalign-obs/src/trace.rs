//! Span/event tracing: guards that record wall time, thread, parent span,
//! and key/value fields into a lock-free ring buffer and to pluggable
//! subscribers.
//!
//! # Model
//!
//! * [`span!`](crate::span!) opens a span; dropping the guard finishes it
//!   and emits a [`SpanRecord`]. Spans nest per thread: the record carries
//!   the id of the span that was open when it started.
//! * [`event!`](crate::event!) emits a zero-duration record immediately.
//! * [`begin_trace`] opens a *trace scope* on the current thread: every
//!   record finished while the scope is active carries the trace ID, and
//!   [`TraceScope::finish`] returns them all — the serving layer uses this
//!   to build one access-log line per request.
//! * Finished records always land in a global lock-free ring buffer
//!   ([`drain_recent`] empties it) and are offered to every registered
//!   [`Subscriber`].
//!
//! # Cost when idle
//!
//! Tracing is *disabled* unless a trace scope is active on the thread or
//! at least one subscriber is registered; a disabled span is a no-op guard
//! that never allocates, reads the clock, or touches the ring. The
//! [`span!`](crate::span!) macro checks [`enabled`] before even building
//! its field vector, so instrumented hot paths (e.g. the serve bench) pay
//! only one relaxed atomic load per span when nothing is listening.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl FieldValue {
    /// The value as a JSON fragment (numbers and bools bare, strings
    /// quoted and escaped).
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => v.to_string(),
            FieldValue::F64(_) => "null".to_owned(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => format!("\"{}\"", json_escape(v)),
        }
    }
}

/// Whether a record came from a span guard or a one-shot event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A finished [`span!`](crate::span!) guard.
    Span,
    /// A one-shot [`event!`](crate::event!).
    Event,
}

/// One finished span or event.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique id of this span.
    pub id: u64,
    /// Id of the span that was open on this thread when this one started.
    pub parent: Option<u64>,
    /// The trace scope's id, when one was active (see [`begin_trace`]).
    pub trace_id: Option<Arc<str>>,
    /// Static span name (`"weight_learning"`, `"overlay_polygons"`, ...).
    pub name: &'static str,
    /// Label of the recording thread (its name, or a debug id).
    pub thread: Arc<str>,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_micros: u64,
    /// Wall time from open to drop (zero for events).
    pub duration_micros: u64,
    /// Key/value fields supplied at the call site.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Span or event.
    pub kind: RecordKind,
}

impl SpanRecord {
    /// The record as one line of JSON (no trailing newline) — the format
    /// [`JsonLinesSubscriber`] writes and the access log embeds.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"type\":\"");
        out.push_str(match self.kind {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        });
        out.push_str("\",\"name\":\"");
        out.push_str(&json_escape(self.name));
        out.push('"');
        if let Some(t) = &self.trace_id {
            out.push_str(",\"trace_id\":\"");
            out.push_str(&json_escape(t));
            out.push('"');
        }
        out.push_str(&format!(",\"id\":{}", self.id));
        if let Some(p) = self.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        out.push_str(&format!(
            ",\"thread\":\"{}\",\"start_unix_micros\":{},\"duration_micros\":{}",
            json_escape(&self.thread),
            self.start_unix_micros,
            self.duration_micros
        ));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// The record as a human-readable text line.
    pub fn to_text_line(&self) -> String {
        let mut out = String::with_capacity(96);
        if let Some(t) = &self.trace_id {
            out.push_str(&format!("[trace {t}] "));
        }
        out.push_str(self.name);
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        match self.kind {
            RecordKind::Span => out.push_str(&format!(" {}µs", self.duration_micros)),
            RecordKind::Event => out.push_str(" (event)"),
        }
        out.push_str(&format!(
            " (span {}{} thread {})",
            self.id,
            self.parent
                .map(|p| format!(" parent {p}"))
                .unwrap_or_default(),
            self.thread
        ));
        out
    }
}

/// Receives every finished span/event record.
pub trait Subscriber: Send + Sync {
    /// Called once per finished record, on the thread that finished it.
    fn on_record(&self, record: &SpanRecord);
}

/// Writes each record as a text line to stderr.
#[derive(Debug, Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_record(&self, record: &SpanRecord) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{}", record.to_text_line());
    }
}

/// Writes each record as one JSON line to an arbitrary writer (the
/// `geoalign --trace <path>` sink). Lines are flushed as written so a
/// crash loses at most the in-progress line.
pub struct JsonLinesSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSubscriber")
            .finish_non_exhaustive()
    }
}

impl JsonLinesSubscriber {
    /// Wraps any writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSubscriber {
            out: Mutex::new(out),
        }
    }

    /// Appends to (or creates) the file at `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::new(Box::new(file)))
    }
}

impl Subscriber for JsonLinesSubscriber {
    fn on_record(&self, record: &SpanRecord) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", record.to_json_line());
        let _ = out.flush();
    }
}

/// Collects records in memory, for tests.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    records: Mutex<Vec<SpanRecord>>,
}

impl MemorySubscriber {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything collected so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Subscriber for MemorySubscriber {
    fn on_record(&self, record: &SpanRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record.clone());
    }
}

/// A fixed-capacity lock-free ring of finished records. Writers claim a
/// slot with a relaxed `fetch_add` and publish with an atomic pointer
/// swap; the oldest record in a contended slot is dropped by whoever
/// displaced it. Draining swaps every slot to null.
pub struct SpanRing {
    slots: Box<[AtomicPtr<SpanRecord>]>,
    head: AtomicUsize,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl SpanRing {
    /// A ring holding the last `capacity` records; `capacity` is rounded
    /// up to a power of two (minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SpanRing {
            slots: (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Publishes one record, displacing the oldest if the ring is full.
    /// Displacement is counted in `geoalign_obs_trace_dropped_total` —
    /// the record was lost before anyone drained it.
    pub fn push(&self, record: Box<SpanRecord>) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) & (self.slots.len() - 1);
        let old = self.slots[i].swap(Box::into_raw(record), Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: the swap transferred exclusive ownership of `old`
            // (every pointer stored in a slot came from Box::into_raw and
            // is removed from the ring by exactly one swap).
            drop(unsafe { Box::from_raw(old) });
            trace_dropped_counter().inc();
        }
    }

    /// Removes and returns everything currently buffered, oldest first
    /// (by span id; slot order is not chronological after wrap-around).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: as in `push`, the swap grants exclusive ownership.
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out.sort_by_key(|r| r.id);
        out
    }
}

impl Drop for SpanRing {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Capacity of the global ring ([`drain_recent`]).
const RING_CAPACITY: usize = 1024;

/// Counts span records silently displaced from a ring before being
/// drained (process-global, covers every [`SpanRing`]).
fn trace_dropped_counter() -> &'static crate::metrics::Counter {
    static COUNTER: OnceLock<crate::metrics::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        crate::metrics::Registry::global().counter(
            "geoalign_obs_trace_dropped_total",
            "Span records displaced from a trace ring before being drained",
        )
    })
}

/// Total span records lost to ring overflow so far.
pub fn trace_dropped_total() -> u64 {
    trace_dropped_counter().get()
}

struct Tracer {
    ring: SpanRing,
    subscribers: RwLock<Vec<(u64, Arc<dyn Subscriber>)>>,
    n_subscribers: AtomicUsize,
    next_span_id: AtomicU64,
    next_subscriber_id: AtomicU64,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        ring: SpanRing::new(RING_CAPACITY),
        subscribers: RwLock::new(Vec::new()),
        n_subscribers: AtomicUsize::new(0),
        next_span_id: AtomicU64::new(1),
        next_subscriber_id: AtomicU64::new(1),
    })
}

/// Handle for removing a subscriber again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(u64);

/// Registers `subscriber` to receive every finished record, from any
/// thread, until [`unsubscribe`]d.
pub fn subscribe(subscriber: Arc<dyn Subscriber>) -> SubscriberId {
    let t = tracer();
    let id = t.next_subscriber_id.fetch_add(1, Ordering::Relaxed);
    let mut subs = t.subscribers.write().unwrap_or_else(|e| e.into_inner());
    subs.push((id, subscriber));
    t.n_subscribers.store(subs.len(), Ordering::Release);
    SubscriberId(id)
}

/// Removes a subscriber registered with [`subscribe`].
pub fn unsubscribe(id: SubscriberId) {
    let t = tracer();
    let mut subs = t.subscribers.write().unwrap_or_else(|e| e.into_inner());
    subs.retain(|(sid, _)| *sid != id.0);
    t.n_subscribers.store(subs.len(), Ordering::Release);
}

/// Empties the global ring buffer of recent records (oldest first).
pub fn drain_recent() -> Vec<SpanRecord> {
    tracer().ring.drain()
}

struct ThreadState {
    thread_label: Arc<str>,
    stack: Vec<u64>,
    trace_id: Option<Arc<str>>,
    collect: Option<Vec<SpanRecord>>,
}

impl ThreadState {
    fn new() -> Self {
        let t = std::thread::current();
        let label: Arc<str> = match t.name() {
            Some(name) => Arc::from(name),
            None => Arc::from(format!("{:?}", t.id()).as_str()),
        };
        ThreadState {
            thread_label: label,
            stack: Vec::new(),
            trace_id: None,
            collect: None,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Whether span recording would currently do anything on this thread:
/// true when a trace scope is active here or any subscriber is
/// registered. The [`span!`](crate::span!) macro consults this before
/// building fields, so disabled call sites cost one atomic load.
pub fn enabled() -> bool {
    if tracer().n_subscribers.load(Ordering::Acquire) > 0 {
        return true;
    }
    CURRENT.with(|c| c.borrow().collect.is_some())
}

/// Which facets of span handling are live for a new span: `record` emits
/// a [`SpanRecord`] on drop (subscribers / trace scope / ring), `profile`
/// shares the span on this thread's sampling stack
/// ([`crate::profile`]). Cheap to query; see [`span_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMode {
    /// Emit a record when the span finishes.
    pub record: bool,
    /// Publish the span on the shared profiling stack while open.
    pub profile: bool,
}

impl SpanMode {
    /// Whether a real guard is needed at all.
    pub fn any(self) -> bool {
        self.record || self.profile
    }
}

/// The current [`SpanMode`], consulted by [`span!`](crate::span!) before
/// constructing a guard. With no subscriber, no trace scope, and no
/// running profiler this is two atomic loads plus a thread-local read.
pub fn span_mode() -> SpanMode {
    SpanMode {
        record: enabled(),
        profile: crate::profile::profiling_active(),
    }
}

/// A trace scope: while alive, every record finished on this thread
/// carries `trace_id` and is collected for [`TraceScope::finish`].
/// Scopes nest; the previous scope's state is restored on drop.
#[derive(Debug)]
pub struct TraceScope {
    prev_trace_id: Option<Arc<str>>,
    prev_collect: Option<Vec<SpanRecord>>,
    finished: bool,
}

/// Opens a trace scope on the current thread. The serving layer calls
/// this with the request's `X-Trace-Id` before routing.
pub fn begin_trace(trace_id: &str) -> TraceScope {
    CURRENT.with(|c| {
        let mut state = c.borrow_mut();
        let prev_trace_id = state.trace_id.replace(Arc::from(trace_id));
        let prev_collect = state.collect.replace(Vec::new());
        TraceScope {
            prev_trace_id,
            prev_collect,
            finished: false,
        }
    })
}

impl TraceScope {
    /// Ends the scope, returning every record finished while it was
    /// active (in finish order).
    pub fn finish(mut self) -> Vec<SpanRecord> {
        self.finished = true;
        CURRENT.with(|c| {
            let mut state = c.borrow_mut();
            state.trace_id = self.prev_trace_id.take();
            let collected = state.collect.take();
            state.collect = self.prev_collect.take();
            collected.unwrap_or_default()
        })
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        CURRENT.with(|c| {
            let mut state = c.borrow_mut();
            state.trace_id = self.prev_trace_id.take();
            state.collect = self.prev_collect.take();
        });
    }
}

/// A process-unique hex trace ID (16 chars), for requests that arrive
/// without an `X-Trace-Id` of their own.
pub fn new_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut h = DefaultHasher::new();
    std::process::id().hash(&mut h);
    SEQ.fetch_add(1, Ordering::Relaxed).hash(&mut h);
    std::thread::current().id().hash(&mut h);
    if let Ok(t) = SystemTime::now().duration_since(UNIX_EPOCH) {
        t.subsec_nanos().hash(&mut h);
        t.as_secs().hash(&mut h);
    }
    format!("{:016x}", h.finish())
}

fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Builds and emits a finished record. Returns it by value so span drops
/// can hand it to the ring last.
fn emit(
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start_unix_micros: u64,
    duration: Duration,
    kind: RecordKind,
) {
    let (trace_id, thread) = CURRENT.with(|c| {
        let state = c.borrow();
        (state.trace_id.clone(), Arc::clone(&state.thread_label))
    });
    let record = SpanRecord {
        id,
        parent,
        trace_id,
        name,
        thread,
        start_unix_micros,
        duration_micros: duration.as_micros().min(u128::from(u64::MAX)) as u64,
        fields,
        kind,
    };
    // Per-request collection first (cheap clone while the record is hot).
    CURRENT.with(|c| {
        if let Some(collect) = &mut c.borrow_mut().collect {
            collect.push(record.clone());
        }
    });
    // Subscribers next.
    {
        let subs = tracer()
            .subscribers
            .read()
            .unwrap_or_else(|e| e.into_inner());
        for (_, sub) in subs.iter() {
            sub.on_record(&record);
        }
    }
    // The ring takes ownership.
    tracer().ring.push(Box::new(record));
}

/// An open span; finishing (dropping) it records wall time, thread,
/// parent, and fields. Construct through the [`span!`](crate::span!)
/// macro, which skips all cost when tracing is [`enabled()`]-off.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
    /// Whether this guard pushed a frame on the profiling stack (and so
    /// must pop it on drop).
    profiled: bool,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start: Instant,
    start_unix_micros: u64,
}

impl Span {
    /// Opens a guard for the given [`SpanMode`]: a full recording span,
    /// a lightweight profile-only frame, or both. `fields` should be
    /// empty when `mode.record` is false (they would be discarded).
    pub fn open(
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
        mode: SpanMode,
    ) -> Span {
        let profiled = mode.profile && crate::profile::push_frame(name);
        if !mode.record {
            return Span {
                inner: None,
                profiled,
            };
        }
        let id = tracer().next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| {
            let mut state = c.borrow_mut();
            let parent = state.stack.last().copied();
            state.stack.push(id);
            parent
        });
        Span {
            inner: Some(SpanInner {
                id,
                parent,
                name,
                fields,
                start: Instant::now(),
                start_unix_micros: unix_micros_now(),
            }),
            profiled,
        }
    }

    /// Opens a live recording span (assumes the caller checked
    /// [`enabled`]); joins the profiling stack too when a profiler runs.
    pub fn new(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        Span::open(
            name,
            fields,
            SpanMode {
                record: true,
                profile: crate::profile::profiling_active(),
            },
        )
    }

    /// An inert guard for call sites where tracing is off.
    pub fn disabled() -> Span {
        Span {
            inner: None,
            profiled: false,
        }
    }

    /// Attaches another field to a live span (no-op when disabled).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::pop_frame();
        }
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT.with(|c| {
            let mut state = c.borrow_mut();
            // Remove our id; search from the top for robustness if guards
            // are dropped out of order.
            if let Some(pos) = state.stack.iter().rposition(|&id| id == inner.id) {
                state.stack.remove(pos);
            }
        });
        emit(
            inner.id,
            inner.parent,
            inner.name,
            inner.fields,
            inner.start_unix_micros,
            inner.start.elapsed(),
            RecordKind::Span,
        );
    }
}

/// Emits a one-shot event record (assumes the caller checked [`enabled`]).
pub fn event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    let id = tracer().next_span_id.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.borrow().stack.last().copied());
    emit(
        id,
        parent,
        name,
        fields,
        unix_micros_now(),
        Duration::ZERO,
        RecordKind::Event,
    );
}

/// Opens a span guard recording wall time, thread, parent span, and
/// key/value fields on drop:
///
/// ```
/// # use geoalign_obs::span;
/// let _span = span!("solve", refs = 4usize, cached = false);
/// ```
///
/// When tracing is disabled (no subscriber, no trace scope) the guard is
/// inert and the field expressions are not evaluated. While a sampling
/// profiler runs ([`crate::profile::Profiler`]) the guard additionally
/// publishes the span on this thread's shared profiling stack — without
/// building fields or a record unless recording is also on.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let __geoalign_span_mode = $crate::trace::span_mode();
        if __geoalign_span_mode.record {
            $crate::trace::Span::open(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
                __geoalign_span_mode,
            )
        } else if __geoalign_span_mode.profile {
            $crate::trace::Span::open($name, ::std::vec::Vec::new(), __geoalign_span_mode)
        } else {
            $crate::trace::Span::disabled()
        }
    }};
}

/// Emits a one-shot event with key/value fields:
///
/// ```
/// # use geoalign_obs::event;
/// event!("cache_miss", key = "zip->county");
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::event(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_and_drain_with_wraparound() {
        let ring = SpanRing::new(4);
        let rec = |id: u64| {
            Box::new(SpanRecord {
                id,
                parent: None,
                trace_id: None,
                name: "r",
                thread: Arc::from("t"),
                start_unix_micros: 0,
                duration_micros: id,
                fields: Vec::new(),
                kind: RecordKind::Span,
            })
        };
        for id in 1..=6 {
            ring.push(rec(id));
        }
        let drained = ring.drain();
        // Capacity 4: ids 1 and 2 were displaced.
        let ids: Vec<u64> = drained.iter().map(|r| r.id).collect();
        assert_eq!(ids, [3, 4, 5, 6]);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn ring_overflow_bumps_the_dropped_counter() {
        let ring = SpanRing::new(4);
        let before = trace_dropped_total();
        for id in 1..=10 {
            ring.push(Box::new(SpanRecord {
                id,
                parent: None,
                trace_id: None,
                name: "overflow",
                thread: Arc::from("t"),
                start_unix_micros: 0,
                duration_micros: 0,
                fields: Vec::new(),
                kind: RecordKind::Span,
            }));
        }
        drop(ring);
        // Capacity 4, 10 pushes: ids 1..=6 were displaced unseen. Other
        // tests share the process-global counter, so assert the floor.
        assert!(
            trace_dropped_total() >= before + 6,
            "dropped counter did not advance: before={before} after={}",
            trace_dropped_total()
        );
    }

    #[test]
    fn ring_is_safe_under_concurrent_writers() {
        let ring = SpanRing::new(8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..500u64 {
                        ring.push(Box::new(SpanRecord {
                            id: t * 1000 + i,
                            parent: None,
                            trace_id: None,
                            name: "w",
                            thread: Arc::from("t"),
                            start_unix_micros: 0,
                            duration_micros: 0,
                            fields: Vec::new(),
                            kind: RecordKind::Span,
                        }));
                    }
                });
            }
        });
        assert!(ring.drain().len() <= 8);
    }

    #[test]
    fn trace_scope_collects_nested_spans() {
        let scope = begin_trace("trace-nest-test");
        {
            let _outer = span!("obs_test_outer", layer = "core");
            let _inner = span!("obs_test_inner", k = 3usize);
        }
        let records = scope.finish();
        assert_eq!(records.len(), 2);
        // Inner finishes first and points at the outer span.
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(inner.name, "obs_test_inner");
        assert_eq!(outer.name, "obs_test_outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        for r in &records {
            assert_eq!(r.trace_id.as_deref(), Some("trace-nest-test"));
        }
        assert_eq!(inner.fields, vec![("k", FieldValue::U64(3))]);
    }

    #[test]
    fn disabled_spans_are_inert() {
        // No scope on this thread; a subscriber may exist transiently from
        // a parallel test, so only check the scope-free path's guard type.
        let span = Span::disabled();
        drop(span); // must not emit or panic
    }

    #[test]
    fn memory_subscriber_receives_records() {
        let sub = Arc::new(MemorySubscriber::new());
        let id = subscribe(Arc::clone(&sub) as Arc<dyn Subscriber>);
        {
            let _s = span!("obs_test_subscribed", hit = true);
        }
        event!("obs_test_event", n = 1u64);
        unsubscribe(id);
        let names: Vec<&str> = sub.records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"obs_test_subscribed"), "{names:?}");
        assert!(names.contains(&"obs_test_event"), "{names:?}");
        let records = sub.take();
        let ev = records.iter().find(|r| r.name == "obs_test_event").unwrap();
        assert_eq!(ev.kind, RecordKind::Event);
        assert_eq!(ev.duration_micros, 0);
        assert!(sub.records().is_empty());
    }

    #[test]
    fn json_lines_subscriber_writes_parseable_lines() {
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let sub = JsonLinesSubscriber::new(Box::new(buf.clone()));
        let record = SpanRecord {
            id: 7,
            parent: Some(3),
            trace_id: Some(Arc::from("abc")),
            name: "weight_learning",
            thread: Arc::from("worker-1"),
            start_unix_micros: 1000,
            duration_micros: 250,
            fields: vec![
                ("refs", FieldValue::U64(2)),
                ("tag", FieldValue::from("x\"y")),
            ],
            kind: RecordKind::Span,
        };
        sub.on_record(&record);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"type\":\"span\",\"name\":\"weight_learning\",\"trace_id\":\"abc\",\
             \"id\":7,\"parent\":3,\"thread\":\"worker-1\",\"start_unix_micros\":1000,\
             \"duration_micros\":250,\"fields\":{\"refs\":2,\"tag\":\"x\\\"y\"}}\n"
        );
    }

    #[test]
    fn text_line_is_readable() {
        let record = SpanRecord {
            id: 9,
            parent: None,
            trace_id: Some(Arc::from("deadbeef")),
            name: "prepare",
            thread: Arc::from("main"),
            start_unix_micros: 0,
            duration_micros: 1234,
            fields: vec![("refs", FieldValue::U64(5))],
            kind: RecordKind::Span,
        };
        let line = record.to_text_line();
        assert_eq!(
            line,
            "[trace deadbeef] prepare refs=5 1234µs (span 9 thread main)"
        );
    }

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = begin_trace("outer-scope");
        {
            let inner = begin_trace("inner-scope");
            {
                let _s = span!("obs_test_inner_scope");
            }
            let inner_records = inner.finish();
            assert_eq!(inner_records.len(), 1);
            assert_eq!(inner_records[0].trace_id.as_deref(), Some("inner-scope"));
        }
        {
            let _s = span!("obs_test_outer_scope");
        }
        let outer_records = outer.finish();
        // Only the span finished while the outer scope was directly active.
        let names: Vec<&str> = outer_records.iter().map(|r| r.name).collect();
        assert_eq!(names, ["obs_test_outer_scope"]);
        assert_eq!(outer_records[0].trace_id.as_deref(), Some("outer-scope"));
    }
}
