//! Named counters, gauges, and log₂-bucketed histograms in a [`Registry`].
//!
//! Handles ([`Counter`], [`Gauge`], `Arc<`[`Histogram`]`>`) are cheap
//! clones of shared atomics: recording never takes a lock, and a handle
//! stays valid for the life of the process regardless of what happens to
//! the registry it came from. Registration is get-or-create by name, so
//! library code can fetch its handles through `OnceLock` statics without
//! coordinating initialization order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Number of histogram buckets. Bucket `0` covers values in `[0, 1)`
/// (sub-unit recordings, e.g. sub-microsecond durations); bucket `i >= 1`
/// covers `[2^(i-1), 2^i)`; the last bucket is open-ended.
pub const BUCKETS: usize = 26;

/// Index of the bucket holding `value` under the scheme documented on
/// [`BUCKETS`]: `0` for sub-unit values, else `floor(log2(value)) + 1`,
/// saturating at the last (open-ended) bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (`0` for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper bound of bucket `i`, or `None` for the open-ended last
/// bucket. Bucket 0's upper bound is `1` (it holds sub-unit values).
#[inline]
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// A log₂-bucketed histogram with lock-free recording.
///
/// Generic over the recorded unit: [`Histogram::record`] takes a
/// [`Duration`] and records microseconds, [`Histogram::record_value`]
/// takes any `u64` (iteration counts, fan-out sizes, ...).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration, in microseconds.
    pub fn record(&self, d: Duration) {
        self.record_value(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw value.
    pub fn record_value(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A point-in-time copy of all counters. Buckets are read relaxed, so
    /// a snapshot taken under concurrent recording may be internally off
    /// by in-flight increments — fine for exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(&self.buckets) {
            *b = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket sample counts (see [`BUCKETS`] for the bounds).
    pub buckets: [u64; BUCKETS],
}

/// A monotonically increasing counter handle. Clones share the value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle. Clones share the value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric's current value, for the exposition encoders.
// The histogram variant dominates the size, but snapshots are built once
// per scrape and iterated immediately — indirection would cost more than
// the transient stack space saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's counters.
    Histogram(HistogramSnapshot),
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    handle: Handle,
}

/// A collection of named metrics.
///
/// Names must match `[a-zA-Z_][a-zA-Z0-9_]*`; the workspace convention is
/// `geoalign_<crate>_<name>_<unit>` (DESIGN.md §8). Registration is
/// get-or-create: asking twice for the same name returns handles to the
/// same underlying metric. Asking for an existing name with a *different
/// metric type* panics — that is a programming error, not runtime input.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.read().unwrap_or_else(|e| e.into_inner()).len();
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry library code records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Handle) -> Handle {
        assert!(valid_name(name), "invalid metric name '{name}'");
        {
            let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = metrics.get(name) {
                return entry.handle.clone();
            }
        }
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        metrics
            .entry(name.to_owned())
            .or_insert_with(|| Entry {
                help: help.to_owned(),
                handle: make(),
            })
            .handle
            .clone()
    }

    /// The counter named `name`, created with `help` on first use.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.get_or_insert(name, help, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// The gauge named `name`, created with `help` on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.get_or_insert(name, help, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// The histogram named `name`, created with `help` on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Handle::Histogram(Arc::new(Histogram::new()))) {
            Handle::Histogram(h) => h,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(name, help, value)` for every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, String, MetricSnapshot)> {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        metrics
            .iter()
            .map(|(name, entry)| {
                let value = match &entry.handle {
                    Handle::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Handle::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Handle::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), entry.help.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_separates_sub_unit_from_unit() {
        // The old scheme lumped 0µs and 1µs into one bucket; the fix puts
        // sub-unit values in bucket 0 and 1 in bucket 1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_power_of_two_boundaries() {
        // 2^i lands in bucket i+1 and 2^i − 1 in bucket i, for every i the
        // table can distinguish — the exact-boundary regression test for
        // the bucket-math fix.
        for i in 1..(BUCKETS - 2) {
            let pow = 1u64 << i;
            assert_eq!(bucket_index(pow), i + 1, "2^{i} must open bucket {}", i + 1);
            assert_eq!(bucket_index(pow - 1), i, "2^{i}-1 must close bucket {i}");
            assert_eq!(bucket_lower_bound(i + 1), pow);
            assert_eq!(bucket_upper_bound(i), Some(pow));
        }
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_durations_and_values() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(250)); // sub-microsecond → bucket 0
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(1000)); // bucket 10: [512, 1024)
        h.record_value(7); // bucket 3: [4, 8)
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1 + 1000 + 7);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1);
        assert!((h.mean() - 252.0).abs() < 1e-12);
    }

    #[test]
    fn counters_and_gauges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the value");

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("geoalign_test_ops_total", "ops");
        let b = r.counter("geoalign_test_ops_total", "ignored on re-register");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);

        let h = r.histogram("geoalign_test_latency_micros", "latency");
        h.record_value(3);
        r.gauge("geoalign_test_entries", "entries").set(9);
        assert_eq!(r.len(), 3);

        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _, _)| n.as_str()).collect();
        // Sorted by name.
        assert_eq!(
            names,
            [
                "geoalign_test_entries",
                "geoalign_test_latency_micros",
                "geoalign_test_ops_total"
            ]
        );
        match &snap[2].2 {
            MetricSnapshot::Counter(v) => assert_eq!(*v, 2),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("geoalign_test_thing", "a counter");
        r.gauge("geoalign_test_thing", "now a gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("not a metric name", "spaces are invalid");
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global().counter("geoalign_obs_test_global_total", "test");
        let b = Registry::global().counter("geoalign_obs_test_global_total", "test");
        let before = a.get();
        b.inc();
        assert_eq!(a.get(), before + 1);
    }
}
