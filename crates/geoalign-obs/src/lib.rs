//! **geoalign-obs** — workspace-wide observability on `std` only.
//!
//! The GeoAlign pipeline (disaggregation, simplex least squares,
//! re-aggregation) computes plenty of structure worth watching — overlay
//! fan-out, solver iteration counts, cache hit rates, per-phase wall
//! time — and before this crate every layer threw it away or printed it
//! ad hoc. This crate gives the workspace one coherent layer:
//!
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//!   [`Histogram`]s collected in a [`Registry`]. Recording is lock-free
//!   (relaxed atomics); registration is get-or-create by name. A process
//!   [`Registry::global`] holds library-level metrics; embedders (the
//!   serve layer) can also keep per-instance registries.
//! * [`trace`] — a lightweight span/event facade: [`span!`] returns a
//!   guard that records wall time, thread, parent span, and key/value
//!   fields on drop. Finished records go to a lock-free ring buffer
//!   ([`trace::drain_recent`]) and to pluggable [`trace::Subscriber`]s
//!   (stderr text, JSON-lines writer, in-memory for tests). A
//!   [`trace::begin_trace`] scope tags every span finished on the thread
//!   with a request trace ID and collects them for access logging.
//! * [`expo`] — exposition encoders: Prometheus text format
//!   (`_bucket`/`_sum`/`_count` series for histograms) and a hand-rolled
//!   JSON shape, both over registry snapshots.
//! * [`profile`] — a sampling wall-clock profiler over the span facade: a
//!   sampler thread sweeps every thread's shared span stack and
//!   aggregates collapsed stacks (`flamegraph.pl` format). Start/stoppable
//!   at runtime ([`profile::Profiler`]); off, it costs one atomic load
//!   per span.
//! * [`cost`] — per-request resource accounting: a [`cost::CostScope`]
//!   collects rows/cells processed, executor tasks spawned, and (with the
//!   opt-in [`install_counting_allocator!`] shim) bytes allocated, into a
//!   [`RequestCost`] the serve layer logs and echoes as `X-Cost`.
//!
//! Metric names follow `geoalign_<crate>_<name>_<unit>` (see DESIGN.md
//! §8). Everything is `std`-only and adds no dependencies anywhere.
//!
//! # Quick taste
//!
//! ```
//! use geoalign_obs::{span, Registry};
//!
//! let registry = Registry::new();
//! let solves = registry.counter("geoalign_demo_solves_total", "solves run");
//! let latency = registry.histogram("geoalign_demo_solve_micros", "solve wall time");
//!
//! {
//!     let _span = span!("solve", refs = 3usize);
//!     solves.inc();
//!     latency.record(std::time::Duration::from_micros(42));
//! } // span finishes here
//!
//! let text = geoalign_obs::expo::prometheus_text([&registry]);
//! assert!(text.contains("geoalign_demo_solves_total 1"));
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod expo;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use cost::{CostScope, RequestCost};
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricSnapshot, Registry, BUCKETS,
};
pub use profile::{PhaseStat, ProfileReport, Profiler};
pub use trace::{
    begin_trace, new_trace_id, FieldValue, JsonLinesSubscriber, MemorySubscriber, SpanRecord,
    StderrSubscriber, Subscriber, TraceScope,
};
