//! Std-only sampling wall-clock profiler.
//!
//! The `span!` facade ([`crate::trace`]) already knows, at every instant,
//! which phase each instrumented thread is inside. This module turns that
//! into a profiler: each thread shares its span stack through a lock-free
//! seqlock snapshot ([`ProfStack`]), and a sampler thread periodically
//! sweeps every registered stack, aggregating identical stacks into
//! counts. The output is the collapsed-stack format `flamegraph.pl`
//! consumes directly: one line per distinct stack, `frame;frame;... count`.
//!
//! # Sampling protocol
//!
//! - Span names are interned to `u32` ids once per distinct `&'static str`
//!   so the per-span cost while profiling is an array store, not a string
//!   copy.
//! - Each thread owns an `Arc<ProfStack>`: a fixed array of atomic frame
//!   ids plus an atomic depth, guarded by a sequence counter that is odd
//!   while the owning thread is mid-push/pop. Writers never block; the
//!   sampler retries a bounded number of times and skips the thread if it
//!   keeps losing the race (counted in [`ProfileReport::skipped_samples`]).
//! - Registration happens lazily on first span push per thread; dead
//!   threads drop out automatically (the registry holds `Weak`).
//! - Profiling is process-global: [`Profiler::start`] bumps an active
//!   counter that the `span!` macro consults, so spans opened while no
//!   profiler (and no trace subscriber) is running cost one relaxed atomic
//!   load. Spans already open when the profiler starts are not retroactively
//!   pushed — a profile window only sees spans entered during it.
//!
//! Stacks deeper than [`MAX_DEPTH`] keep correct depth accounting but only
//! the first `MAX_DEPTH` frames are sampled (counted in
//! [`ProfileReport::truncated_samples`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::{Duration, Instant};

/// Maximum stack depth captured per sample. Deeper frames are dropped
/// (the workspace's span nesting is ≤ 6 today).
pub const MAX_DEPTH: usize = 64;

/// Sentinel for "no frame" in a `ProfStack` slot.
const EMPTY_FRAME: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Span-name interning
// ---------------------------------------------------------------------------

struct Interner {
    // id -> name; index is the id.
    names: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: HashMap::new(),
        })
    })
}

/// Interns a span name, returning its stable id.
pub fn intern(name: &'static str) -> u32 {
    {
        let g = interner().read().expect("interner poisoned");
        if let Some(&id) = g.index.get(name) {
            return id;
        }
    }
    let mut g = interner().write().expect("interner poisoned");
    if let Some(&id) = g.index.get(name) {
        return id;
    }
    let id = g.names.len() as u32;
    g.names.push(name);
    g.index.insert(name, id);
    id
}

/// The name behind an interned id; `"?"` for ids never interned (torn
/// reads the seqlock retry did not catch are tolerated, not fatal).
pub fn name_of(id: u32) -> &'static str {
    let g = interner().read().expect("interner poisoned");
    g.names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// Per-thread shared span stack (seqlock)
// ---------------------------------------------------------------------------

/// One thread's span stack, shared with the sampler. The owning thread is
/// the only writer; the sampler reads via the seqlock protocol.
pub struct ProfStack {
    label: Arc<str>,
    /// Odd while the owner is mutating.
    seq: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ProfStack {
    fn new(label: Arc<str>) -> Self {
        ProfStack {
            label,
            seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(EMPTY_FRAME)),
        }
    }

    fn push(&self, id: u32) {
        self.seq.fetch_add(1, Ordering::AcqRel);
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_DEPTH {
            self.frames[d].store(id, Ordering::Release);
        }
        self.depth.store(d + 1, Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    fn pop(&self) {
        self.seq.fetch_add(1, Ordering::AcqRel);
        let d = self.depth.load(Ordering::Relaxed);
        if d > 0 {
            self.depth.store(d - 1, Ordering::Release);
            if d - 1 < MAX_DEPTH {
                self.frames[d - 1].store(EMPTY_FRAME, Ordering::Release);
            }
        }
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    /// Seqlock read: `Some((depth, frames))` on a consistent snapshot,
    /// `None` if the owner kept mutating through every retry.
    fn snapshot(&self) -> Option<(usize, Vec<u32>)> {
        for _ in 0..8 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::Acquire);
            let captured = depth.min(MAX_DEPTH);
            let mut frames = Vec::with_capacity(captured);
            for f in self.frames.iter().take(captured) {
                frames.push(f.load(Ordering::Acquire));
            }
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 {
                frames.retain(|&f| f != EMPTY_FRAME);
                return Some((depth, frames));
            }
        }
        None
    }
}

fn registry() -> &'static Mutex<Vec<Weak<ProfStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<ProfStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_STACK: Arc<ProfStack> = register_current_thread();
}

fn register_current_thread() -> Arc<ProfStack> {
    let label: Arc<str> = std::thread::current()
        .name()
        .map(Arc::from)
        .unwrap_or_else(|| {
            static ANON: AtomicU64 = AtomicU64::new(0);
            Arc::from(format!("thread-{}", ANON.fetch_add(1, Ordering::Relaxed)).as_str())
        });
    let stack = Arc::new(ProfStack::new(label));
    let mut reg = registry().lock().expect("profile registry poisoned");
    // Opportunistically drop stacks of exited threads.
    reg.retain(|w| w.strong_count() > 0);
    reg.push(Arc::downgrade(&stack));
    stack
}

// ---------------------------------------------------------------------------
// Global profiling mode
// ---------------------------------------------------------------------------

static PROFILERS_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether at least one [`Profiler`] is running. One relaxed load; this is
/// the only cost `span!` pays for the profiler while it is off.
#[inline]
pub fn profiling_active() -> bool {
    PROFILERS_ACTIVE.load(Ordering::Relaxed) > 0
}

/// Pushes a frame onto the current thread's shared stack. Returns whether
/// the push happened (false during thread teardown); the caller must pop
/// iff it pushed.
pub fn push_frame(name: &'static str) -> bool {
    let id = intern(name);
    THREAD_STACK.try_with(|s| s.push(id)).is_ok()
}

/// Pops the frame pushed by the matching [`push_frame`].
pub fn pop_frame() {
    let _ = THREAD_STACK.try_with(|s| s.pop());
}

// ---------------------------------------------------------------------------
// The sampler
// ---------------------------------------------------------------------------

struct SamplerOutput {
    collapsed: HashMap<(Arc<str>, Vec<u32>), u64>,
    sweeps: u64,
    stack_samples: u64,
    idle_samples: u64,
    truncated_samples: u64,
    skipped_samples: u64,
    busy: Duration,
}

/// A running sampling session. Create with [`Profiler::start`]; collect
/// the aggregate with [`Profiler::stop`]. Multiple profilers may run
/// concurrently (each aggregates independently).
pub struct Profiler {
    stop: Arc<AtomicBool>,
    started: Instant,
    interval: Duration,
    handle: Option<std::thread::JoinHandle<SamplerOutput>>,
}

impl Profiler {
    /// Starts a sampler at roughly `hz` sweeps per second (clamped to
    /// 1..=10_000). Spans entered anywhere in the process from this call
    /// until [`Profiler::stop`] are eligible for sampling.
    pub fn start(hz: u64) -> Profiler {
        let hz = hz.clamp(1, 10_000);
        let interval = Duration::from_nanos(1_000_000_000 / hz);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        PROFILERS_ACTIVE.fetch_add(1, Ordering::SeqCst);
        // The workspace routes compute parallelism through geoalign-exec;
        // the sampler is observer infrastructure with its own lifecycle
        // (it must keep sweeping while every executor thread is busy), so
        // it owns one named thread, exempted in scripts/check.sh.
        let handle = std::thread::Builder::new()
            .name("geoalign-prof-sampler".into())
            .spawn(move || sampler_loop(interval, &stop2))
            .expect("spawn profiler sampler thread");
        Profiler {
            stop,
            started: Instant::now(),
            interval,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the aggregated profile.
    pub fn stop(mut self) -> ProfileReport {
        self.finish()
    }

    fn finish(&mut self) -> ProfileReport {
        self.stop.store(true, Ordering::SeqCst);
        let out = match self.handle.take() {
            Some(h) => h.join().unwrap_or_else(|_| SamplerOutput {
                collapsed: HashMap::new(),
                sweeps: 0,
                stack_samples: 0,
                idle_samples: 0,
                truncated_samples: 0,
                skipped_samples: 0,
                busy: Duration::ZERO,
            }),
            None => {
                return ProfileReport::empty(self.interval);
            }
        };
        PROFILERS_ACTIVE.fetch_sub(1, Ordering::SeqCst);
        ProfileReport {
            duration: self.started.elapsed(),
            interval: self.interval,
            sweeps: out.sweeps,
            stack_samples: out.stack_samples,
            idle_samples: out.idle_samples,
            truncated_samples: out.truncated_samples,
            skipped_samples: out.skipped_samples,
            sampler_busy: out.busy,
            collapsed: out.collapsed,
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        if self.handle.is_some() {
            let _ = self.finish();
        }
    }
}

fn sampler_loop(interval: Duration, stop: &AtomicBool) -> SamplerOutput {
    let mut out = SamplerOutput {
        collapsed: HashMap::new(),
        sweeps: 0,
        stack_samples: 0,
        idle_samples: 0,
        truncated_samples: 0,
        skipped_samples: 0,
        busy: Duration::ZERO,
    };
    while !stop.load(Ordering::SeqCst) {
        let t0 = Instant::now();
        sweep(&mut out);
        out.sweeps += 1;
        let spent = t0.elapsed();
        out.busy += spent;
        std::thread::sleep(interval.saturating_sub(spent));
    }
    out
}

fn sweep(out: &mut SamplerOutput) {
    let reg = registry().lock().expect("profile registry poisoned");
    for weak in reg.iter() {
        let Some(stack) = weak.upgrade() else {
            continue;
        };
        match stack.snapshot() {
            Some((_, frames)) if frames.is_empty() => out.idle_samples += 1,
            Some((depth, frames)) => {
                if depth > MAX_DEPTH {
                    out.truncated_samples += 1;
                }
                out.stack_samples += 1;
                *out.collapsed
                    .entry((Arc::clone(&stack.label), frames))
                    .or_insert(0) += 1;
            }
            None => out.skipped_samples += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// The report
// ---------------------------------------------------------------------------

/// Aggregate of one profiling session.
pub struct ProfileReport {
    /// Wall-clock span of the session.
    pub duration: Duration,
    /// Requested sampling interval.
    pub interval: Duration,
    /// Sampler sweeps performed (each sweep samples every live thread).
    pub sweeps: u64,
    /// Per-thread samples that captured a non-empty span stack.
    pub stack_samples: u64,
    /// Per-thread samples taken while the thread was outside any span.
    pub idle_samples: u64,
    /// Samples whose stack exceeded [`MAX_DEPTH`] (frames beyond it dropped).
    pub truncated_samples: u64,
    /// Samples abandoned because the owner kept mutating the stack.
    pub skipped_samples: u64,
    /// Total time the sampler spent sweeping (its own overhead).
    pub sampler_busy: Duration,
    collapsed: HashMap<(Arc<str>, Vec<u32>), u64>,
}

/// One row of [`ProfileReport::top_phases`].
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name.
    pub name: &'static str,
    /// Samples with this span on top of the stack (exclusive time).
    pub self_samples: u64,
    /// Samples with this span anywhere on the stack (inclusive time).
    pub total_samples: u64,
}

impl ProfileReport {
    fn empty(interval: Duration) -> ProfileReport {
        ProfileReport {
            duration: Duration::ZERO,
            interval,
            sweeps: 0,
            stack_samples: 0,
            idle_samples: 0,
            truncated_samples: 0,
            skipped_samples: 0,
            sampler_busy: Duration::ZERO,
            collapsed: HashMap::new(),
        }
    }

    /// True when no non-empty stack was ever captured.
    pub fn is_empty(&self) -> bool {
        self.collapsed.is_empty()
    }

    /// The profile in collapsed-stack format, one line per distinct
    /// stack: `thread;span;span;... count`. Feed directly to
    /// `flamegraph.pl`. Lines are sorted for determinism.
    pub fn collapsed_text(&self) -> String {
        let mut lines: Vec<String> = self
            .collapsed
            .iter()
            .map(|((label, frames), count)| {
                let mut line = String::with_capacity(32 + frames.len() * 12);
                line.push_str(label);
                for &f in frames {
                    line.push(';');
                    line.push_str(name_of(f));
                }
                line.push(' ');
                line.push_str(&count.to_string());
                line
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Per-span sample totals, sorted by inclusive samples descending,
    /// truncated to `n` rows.
    pub fn top_phases(&self, n: usize) -> Vec<PhaseStat> {
        let mut totals: HashMap<u32, (u64, u64)> = HashMap::new();
        for ((_, frames), count) in &self.collapsed {
            for (i, &f) in frames.iter().enumerate() {
                let e = totals.entry(f).or_insert((0, 0));
                e.1 += count;
                if i + 1 == frames.len() {
                    e.0 += count;
                }
            }
        }
        let mut stats: Vec<PhaseStat> = totals
            .into_iter()
            .map(|(id, (self_samples, total_samples))| PhaseStat {
                name: name_of(id),
                self_samples,
                total_samples,
            })
            .collect();
        stats.sort_by(|a, b| {
            b.total_samples
                .cmp(&a.total_samples)
                .then_with(|| a.name.cmp(b.name))
        });
        stats.truncate(n);
        stats
    }

    /// A plain-text top-phases table for terminals.
    pub fn phase_table(&self, n: usize) -> String {
        let stats = self.top_phases(n);
        let denom = self.stack_samples.max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>7} {:>8} {:>7}\n",
            "phase", "total", "tot%", "self", "self%"
        ));
        for s in &stats {
            out.push_str(&format!(
                "{:<24} {:>8} {:>6.1}% {:>8} {:>6.1}%\n",
                s.name,
                s.total_samples,
                100.0 * s.total_samples as f64 / denom,
                s.self_samples,
                100.0 * s.self_samples as f64 / denom,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reversible() {
        let a = intern("profile_test_phase_a");
        let b = intern("profile_test_phase_b");
        assert_ne!(a, b);
        assert_eq!(a, intern("profile_test_phase_a"));
        assert_eq!(name_of(a), "profile_test_phase_a");
        assert_eq!(name_of(b), "profile_test_phase_b");
        assert_eq!(name_of(u32::MAX - 1), "?");
    }

    #[test]
    fn prof_stack_push_pop_snapshot() {
        let stack = ProfStack::new(Arc::from("t"));
        let a = intern("snap_a");
        let b = intern("snap_b");
        stack.push(a);
        stack.push(b);
        let (depth, frames) = stack.snapshot().expect("uncontended snapshot");
        assert_eq!(depth, 2);
        assert_eq!(frames, vec![a, b]);
        stack.pop();
        let (depth, frames) = stack.snapshot().unwrap();
        assert_eq!(depth, 1);
        assert_eq!(frames, vec![a]);
        stack.pop();
        assert_eq!(stack.snapshot().unwrap().0, 0);
        // Underflow-safe.
        stack.pop();
        assert_eq!(stack.snapshot().unwrap().0, 0);
    }

    #[test]
    fn deep_stacks_truncate_but_balance() {
        let stack = ProfStack::new(Arc::from("t"));
        let id = intern("deep_frame");
        for _ in 0..(MAX_DEPTH + 8) {
            stack.push(id);
        }
        let (depth, frames) = stack.snapshot().unwrap();
        assert_eq!(depth, MAX_DEPTH + 8);
        assert_eq!(frames.len(), MAX_DEPTH);
        for _ in 0..(MAX_DEPTH + 8) {
            stack.pop();
        }
        let (depth, frames) = stack.snapshot().unwrap();
        assert_eq!(depth, 0);
        assert!(frames.is_empty());
    }

    #[test]
    fn profiler_captures_a_busy_span() {
        let profiler = Profiler::start(4000);
        assert!(profiling_active());
        // Keep a distinctive span busy long enough for several sweeps.
        let deadline = Instant::now() + Duration::from_millis(250);
        while Instant::now() < deadline {
            let pushed = push_frame("profiler_busy_phase");
            std::thread::sleep(Duration::from_millis(2));
            if pushed {
                pop_frame();
            }
        }
        let report = profiler.stop();
        assert!(report.sweeps > 0, "sampler never swept");
        assert!(
            report.collapsed_text().contains("profiler_busy_phase"),
            "missing phase in:\n{}",
            report.collapsed_text()
        );
        let top = report.top_phases(5);
        assert!(top.iter().any(|s| s.name == "profiler_busy_phase"));
        // Collapsed lines end in a count.
        for line in report.collapsed_text().lines() {
            let (_, count) = line.rsplit_once(' ').expect("count field");
            count.parse::<u64>().expect("numeric count");
        }
    }

    #[test]
    fn profiling_flag_clears_after_stop() {
        let before = profiling_active();
        let p = Profiler::start(100);
        assert!(profiling_active());
        drop(p); // Drop without stop() must also unwind the active count.
                 // Another profiler may be running in a parallel test; only assert
                 // we returned to the prior state when none was active before.
        if !before {
            assert!(!profiling_active());
        }
    }
}
