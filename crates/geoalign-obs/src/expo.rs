//! Exposition encoders over [`Registry`](crate::Registry) snapshots.
//!
//! Two formats, both hand-rolled on `std`:
//!
//! * [`prometheus_text`] — Prometheus text exposition format 0.0.4:
//!   `# HELP`/`# TYPE` comments, bare samples for counters and gauges,
//!   cumulative `_bucket{le="..."}`/`_sum`/`_count` series for
//!   histograms.
//! * [`json_text`] — a compact JSON object keyed by metric name, in the
//!   same shape the serve layer's `/metrics` endpoint has always used for
//!   histograms (`count`, `sum`, `mean`, `buckets: [[lower, count], ...]`).
//!
//! Both take any number of registries and merge them; when two registries
//! define the same metric name, the first registry passed wins and later
//! duplicates are skipped (the serve layer scrapes its per-instance
//! registry ahead of the process-global one).

use crate::metrics::{bucket_lower_bound, bucket_upper_bound, MetricSnapshot, Registry, BUCKETS};
use std::collections::BTreeSet;

/// Merged `(name, help, value)` snapshots, first-registry-wins on
/// duplicate names, sorted by name within each registry's block.
fn merged_snapshots<'a>(
    registries: impl IntoIterator<Item = &'a Registry>,
) -> Vec<(String, String, MetricSnapshot)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for registry in registries {
        for (name, help, value) in registry.snapshot() {
            if seen.insert(name.clone()) {
                out.push((name, help, value));
            }
        }
    }
    out
}

/// Escapes a HELP string per the Prometheus text format (backslash and
/// newline only).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Encodes the registries' current state in Prometheus text exposition
/// format 0.0.4. Serve with `Content-Type: text/plain; version=0.0.4`.
pub fn prometheus_text<'a>(registries: impl IntoIterator<Item = &'a Registry>) -> String {
    let mut out = String::new();
    for (name, help, value) in merged_snapshots(registries) {
        match value {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{name} {v}\n"));
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {v}\n"));
            }
            MetricSnapshot::Histogram(h) => {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, &count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    match bucket_upper_bound(i) {
                        // `le` is inclusive: bucket i's exclusive upper
                        // bound 2^i means every sample in it is <= 2^i − 1.
                        Some(ub) => out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            ub - 1
                        )),
                        None => {
                            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"))
                        }
                    }
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Encodes the registries' current state as a JSON object keyed by metric
/// name. Counters and gauges are bare numbers; histograms are objects
/// with `count`, `sum`, `mean`, and `buckets` (pairs of inclusive lower
/// bound and sample count, empty buckets omitted).
pub fn json_text<'a>(registries: impl IntoIterator<Item = &'a Registry>) -> String {
    let mut out = String::from("{");
    for (i, (name, _, value)) in merged_snapshots(registries).into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":"));
        match value {
            MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
            MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
            MetricSnapshot::Histogram(h) => {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                out.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"buckets\":[",
                    h.count, h.sum, mean
                ));
                let mut first = true;
                for (b, &count) in h.buckets.iter().enumerate().take(BUCKETS) {
                    if count == 0 {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{},{}]", bucket_lower_bound(b), count));
                }
                out.push_str("]}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("geoalign_expo_requests_total", "requests served")
            .add(3);
        r.gauge("geoalign_expo_entries", "cache entries").set(12);
        let h = r.histogram("geoalign_expo_latency_micros", "request latency");
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        r
    }

    #[test]
    fn prometheus_counters_and_gauges() {
        let text = prometheus_text([&sample_registry()]);
        assert!(text.contains("# HELP geoalign_expo_requests_total requests served\n"));
        assert!(text.contains("# TYPE geoalign_expo_requests_total counter\n"));
        assert!(text.contains("\ngeoalign_expo_requests_total 3\n"));
        assert!(text.contains("# TYPE geoalign_expo_entries gauge\n"));
        assert!(text.contains("\ngeoalign_expo_entries 12\n"));
    }

    #[test]
    fn prometheus_histogram_series_are_cumulative() {
        let text = prometheus_text([&sample_registry()]);
        assert!(text.contains("# TYPE geoalign_expo_latency_micros histogram\n"));
        // 1µs is in bucket 1 (le=1); both 3µs samples in bucket 2 (le=3).
        assert!(text.contains("geoalign_expo_latency_micros_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("geoalign_expo_latency_micros_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("geoalign_expo_latency_micros_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("geoalign_expo_latency_micros_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("geoalign_expo_latency_micros_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("geoalign_expo_latency_micros_sum 7\n"));
        assert!(text.contains("geoalign_expo_latency_micros_count 3\n"));
        // Exactly BUCKETS bucket lines.
        assert_eq!(
            text.matches("geoalign_expo_latency_micros_bucket{").count(),
            BUCKETS
        );
    }

    #[test]
    fn json_shape_matches_serve_conventions() {
        let text = json_text([&sample_registry()]);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"geoalign_expo_requests_total\":3"));
        assert!(text.contains("\"geoalign_expo_entries\":12"));
        assert!(text.contains(
            "\"geoalign_expo_latency_micros\":{\"count\":3,\"sum\":7,\"mean\":2.333,\"buckets\":[[1,1],[2,2]]}"
        ));
    }

    #[test]
    fn duplicate_names_first_registry_wins() {
        let a = Registry::new();
        a.counter("geoalign_expo_dup_total", "from a").add(1);
        let b = Registry::new();
        b.counter("geoalign_expo_dup_total", "from b").add(99);
        b.counter("geoalign_expo_only_b_total", "only in b").add(5);
        let text = prometheus_text([&a, &b]);
        assert!(text.contains("\ngeoalign_expo_dup_total 1\n"));
        assert!(!text.contains("geoalign_expo_dup_total 99"));
        assert!(text.contains("\ngeoalign_expo_only_b_total 5\n"));
        assert_eq!(text.matches("# TYPE geoalign_expo_dup_total").count(), 1);
    }

    #[test]
    fn empty_registry_encodes_to_empty_documents() {
        let r = Registry::new();
        assert_eq!(prometheus_text([&r]), "");
        assert_eq!(json_text([&r]), "{}");
    }
}
