//! Per-request resource accounting.
//!
//! A [`CostScope`] opened at the edge (one per HTTP request, or one per
//! CLI pipeline run) collects everything the layers below attribute to it:
//! rows and cells processed ([`add_rows`] / [`add_cells`], called from
//! geoalign-core's prepare/apply kernels), executor tasks spawned
//! ([`add_tasks`], called from `Executor::run_tasks`), and bytes allocated
//! on the scope's thread via the [`CountingAllocator`] shim. The scope is
//! thread-local and nestable, mirroring `trace::begin_trace`; attribution
//! hooks are no-ops costing one relaxed atomic load while no scope is
//! open anywhere in the process.
//!
//! # Allocation accounting
//!
//! A library cannot impose a `#[global_allocator]` on the binaries that
//! link it, so byte counting is opt-in: a binary (or integration test)
//! invokes [`install_counting_allocator!`] once at top level, after which
//! every allocation increments a per-thread byte counter and
//! [`RequestCost::alloc_bytes`] reports the scope's delta. Without the
//! shim the field is zero. Work handed to pool threads allocates on those
//! threads and is *not* attributed to the requesting scope — the counter
//! is per-thread by design (no cross-thread synchronization on the
//! allocation hot path); on the default single-thread budget everything
//! runs inline and the attribution is complete.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// What one scope consumed. Wall time per phase rides separately in the
/// span records collected by the trace layer; this struct carries the
/// resource counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCost {
    /// Source/target rows the core kernels touched for this scope.
    pub rows: u64,
    /// Sparse cells (disaggregation-matrix entries, design cells) visited.
    pub cells: u64,
    /// Tasks handed to the execution layer on this thread.
    pub exec_tasks: u64,
    /// Bytes allocated on this thread inside the scope; zero unless the
    /// binary installed [`install_counting_allocator!`].
    pub alloc_bytes: u64,
}

#[derive(Clone, Copy, Default)]
struct CostState {
    rows: u64,
    cells: u64,
    tasks: u64,
    bytes_start: u64,
}

static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STATE: RefCell<Option<CostState>> = const { RefCell::new(None) };
}

/// Opens a cost scope on this thread. Drop (or [`CostScope::finish`])
/// closes it; an enclosing scope, if any, is restored and keeps its own
/// counts (nested scopes do not roll up).
pub fn begin() -> CostScope {
    ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
    let fresh = CostState {
        bytes_start: thread_allocated_bytes(),
        ..CostState::default()
    };
    let prev = STATE.with(|s| s.borrow_mut().replace(fresh));
    CostScope {
        prev,
        finished: false,
    }
}

/// An open accounting scope; see [`begin`].
pub struct CostScope {
    prev: Option<CostState>,
    finished: bool,
}

impl CostScope {
    /// Closes the scope and returns what it consumed.
    pub fn finish(mut self) -> RequestCost {
        self.close()
    }

    fn close(&mut self) -> RequestCost {
        if self.finished {
            return RequestCost::default();
        }
        self.finished = true;
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        let state = STATE
            .try_with(|s| s.borrow_mut().take())
            .ok()
            .flatten()
            .unwrap_or_default();
        let _ = STATE.try_with(|s| *s.borrow_mut() = self.prev.take());
        RequestCost {
            rows: state.rows,
            cells: state.cells,
            exec_tasks: state.tasks,
            alloc_bytes: thread_allocated_bytes().saturating_sub(state.bytes_start),
        }
    }
}

impl Drop for CostScope {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[inline]
fn with_state(f: impl FnOnce(&mut CostState)) {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return;
    }
    let _ = STATE.try_with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            f(state);
        }
    });
}

/// Attributes `n` processed rows to the current scope, if any.
#[inline]
pub fn add_rows(n: u64) {
    with_state(|s| s.rows = s.rows.saturating_add(n));
}

/// Attributes `n` visited sparse cells to the current scope, if any.
#[inline]
pub fn add_cells(n: u64) {
    with_state(|s| s.cells = s.cells.saturating_add(n));
}

/// Attributes `n` executor tasks to the current scope, if any.
#[inline]
pub fn add_tasks(n: u64) {
    with_state(|s| s.tasks = s.tasks.saturating_add(n));
}

// ---------------------------------------------------------------------------
// Counting allocator shim
// ---------------------------------------------------------------------------

static ALLOCATOR_INSTALLED: AtomicBool = AtomicBool::new(false);
/// Allocations made while the thread-local counter is unavailable
/// (thread teardown) land here so nothing panics inside the allocator.
static TEARDOWN_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic count of bytes allocated on this thread since it started.
/// Always zero unless the binary installed the counting allocator.
pub fn thread_allocated_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Whether a [`CountingAllocator`] has served at least one allocation in
/// this process (i.e. `alloc_bytes` figures are meaningful).
pub fn allocator_installed() -> bool {
    ALLOCATOR_INSTALLED.load(Ordering::Relaxed)
}

/// A `GlobalAlloc` that delegates to the system allocator and charges
/// each allocation's size to a per-thread counter. Install it with
/// [`install_counting_allocator!`] in a binary or integration test.
pub struct CountingAllocator;

impl CountingAllocator {
    /// `const` constructor for `static` allocator declarations.
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }

    #[inline]
    fn charge(size: usize) {
        ALLOCATOR_INSTALLED.store(true, Ordering::Relaxed);
        if THREAD_BYTES
            .try_with(|b| b.set(b.get().wrapping_add(size as u64)))
            .is_err()
        {
            TEARDOWN_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates every operation to `std::alloc::System` with the
// caller's layout unchanged; the counter update allocates nothing.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        Self::charge(layout.size());
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        Self::charge(layout.size());
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        Self::charge(new_size.saturating_sub(layout.size()));
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

/// Installs [`CountingAllocator`] as the process allocator. Invoke once
/// at the top level of a binary or integration-test crate:
///
/// ```ignore
/// geoalign_obs::install_counting_allocator!();
/// ```
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static GEOALIGN_COUNTING_ALLOCATOR: $crate::cost::CountingAllocator =
            $crate::cost::CountingAllocator::new();
    };
}

impl RequestCost {
    /// The compact `key=value;...` form carried in the `X-Cost` response
    /// header, e.g. `rows=3;cells=4;tasks=1;alloc_bytes=2048`.
    pub fn header_value(&self) -> String {
        format!(
            "rows={};cells={};tasks={};alloc_bytes={}",
            self.rows, self.cells, self.exec_tasks, self.alloc_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_collects_and_restores() {
        let outer = begin();
        add_rows(5);
        add_cells(7);
        {
            let inner = begin();
            add_rows(2);
            add_tasks(3);
            let cost = inner.finish();
            assert_eq!(cost.rows, 2);
            assert_eq!(cost.cells, 0);
            assert_eq!(cost.exec_tasks, 3);
        }
        // The outer scope's counts survived the nested scope.
        add_rows(1);
        let cost = outer.finish();
        assert_eq!(cost.rows, 6);
        assert_eq!(cost.cells, 7);
        assert_eq!(cost.exec_tasks, 0);
    }

    #[test]
    fn hooks_without_scope_are_noops() {
        add_rows(100);
        add_cells(100);
        add_tasks(100);
        let scope = begin();
        let cost = scope.finish();
        assert_eq!(cost.rows, 0);
        assert_eq!(cost.cells, 0);
        assert_eq!(cost.exec_tasks, 0);
    }

    #[test]
    fn drop_without_finish_restores_previous_scope() {
        let outer = begin();
        add_rows(4);
        {
            let _inner = begin();
            add_rows(9);
            // Dropped without finish().
        }
        add_rows(1);
        let cost = outer.finish();
        assert_eq!(cost.rows, 5);
    }

    #[test]
    fn header_value_format() {
        let cost = RequestCost {
            rows: 3,
            cells: 12,
            exec_tasks: 2,
            alloc_bytes: 4096,
        };
        assert_eq!(
            cost.header_value(),
            "rows=3;cells=12;tasks=2;alloc_bytes=4096"
        );
    }

    #[test]
    fn alloc_bytes_zero_without_shim() {
        // The unit-test binary does not install the allocator; the delta
        // must read as zero rather than garbage.
        let scope = begin();
        let _v: Vec<u8> = Vec::with_capacity(1 << 16);
        let cost = scope.finish();
        if !allocator_installed() {
            assert_eq!(cost.alloc_bytes, 0);
        }
    }
}
