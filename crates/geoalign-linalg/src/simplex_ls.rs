//! Least squares on the probability simplex — the weight-learning problem
//! of GeoAlign (paper Eq. 15):
//!
//! ```text
//! min_β  ½ ||A β − b||²   subject to   Σ_k β_k = 1,  β_k >= 0
//! ```
//!
//! Two independent solvers are provided:
//!
//! * [`solve_projected_gradient`] — accelerated projected gradient (FISTA)
//!   with exact Euclidean projection onto the simplex (Duchi et al. 2008);
//!   the default used by the algorithm.
//! * [`solve_active_set`] — an exact active-set method that eliminates the
//!   equality constraint and enumerates KKT-consistent supports via the
//!   Lawson–Hanson machinery.
//!
//! Tests assert the two agree, giving mutual validation without an external
//! reference implementation.

use crate::dense::{axpy, dot, norm2, DMatrix, HouseholderQr};

use crate::error::LinalgError;

/// Result of a simplex-constrained least-squares solve.
#[derive(Debug, Clone)]
pub struct SimplexLsSolution {
    /// The weight vector; non-negative, sums to 1.
    pub beta: Vec<f64>,
    /// Objective value `½||Aβ − b||²`.
    pub objective: f64,
    /// Iterations used by the solver.
    pub iterations: usize,
}

/// Which simplex least-squares solver to use.
///
/// The active-set method is the default: reference counts are small (the
/// paper uses at most ten), the method is exact, and its cost is a handful
/// of length-`|U^s|` dot products — keeping weight learning negligible
/// next to disaggregation, as the paper reports (§4.3). The projected
/// gradient solver scales to many references and serves as an independent
/// cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplexSolver {
    /// Accelerated projected gradient (FISTA with simplex projection).
    ProjectedGradient,
    /// Exact active-set method (default).
    #[default]
    ActiveSet,
}

/// The objective's value-independent normal-equations state: the Gram
/// matrix `G = AᵀA` plus the norms the solvers use for scaling. Building
/// it costs `O(n²m)`; afterwards each solve over the same design matrix
/// only needs the `O(nm)` right-hand-side products `Aᵀb` and `bᵀb` — the
/// *prepare* half of the prepare/apply split used by
/// `geoalign_core`'s `PreparedCrosswalk`.
#[derive(Debug, Clone)]
pub struct GramSystem {
    gram: DMatrix,
    frobenius: f64,
}

impl GramSystem {
    /// Precomputes the Gram state of the design matrix `a`.
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        if a.nrows() == 0 || a.ncols() == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(GramSystem {
            gram: a.gram(),
            frobenius: a.frobenius_norm(),
        })
    }

    /// Reassembles a Gram state from its serialized parts — the exact
    /// `gram` matrix and `frobenius` norm previously read out of an
    /// instance built by [`GramSystem::new`]. Persisting the parts (as
    /// bit patterns) and rebuilding through here yields a state that is
    /// byte-identical to the original, which is what makes a
    /// warm-started solve reproduce the cold one's results exactly.
    pub fn from_parts(gram: DMatrix, frobenius: f64) -> Result<Self, LinalgError> {
        if gram.nrows() == 0 || gram.ncols() == 0 {
            return Err(LinalgError::Empty);
        }
        if gram.nrows() != gram.ncols() {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_from_parts",
                left: (gram.nrows(), gram.ncols()),
                right: (gram.ncols(), gram.ncols()),
            });
        }
        if !frobenius.is_finite() || frobenius < 0.0 {
            return Err(LinalgError::NonFinite);
        }
        Ok(GramSystem { gram, frobenius })
    }

    /// The incremental-prepare delta path: rebuilds the Gram state after
    /// exactly one column of the design matrix changed (or one column was
    /// appended), touching only that column's row/column of `G` instead of
    /// recomputing all `O(n²)` dot products.
    ///
    /// `a` is the *full updated* design matrix and `index` the changed
    /// column; `index == self.n()` grows the system by one column. Every
    /// Gram entry is a single independent dot product with the lower
    /// column index as the left operand — the same evaluation
    /// [`GramSystem::new`] performs — and the Frobenius norm is recomputed
    /// whole, so the result is bit-identical to a from-scratch build over
    /// `a`.
    pub fn with_updated_column(
        &self,
        a: &DMatrix,
        index: usize,
    ) -> Result<GramSystem, LinalgError> {
        let old_n = self.n();
        let n = a.ncols();
        let grows = n == old_n + 1 && index == old_n;
        if a.nrows() == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if index >= n || (n != old_n && !grows) {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_update_column",
                left: (old_n, old_n),
                right: (n, index),
            });
        }
        let mut gram = DMatrix::zeros(n, n);
        for i in 0..old_n {
            for j in 0..old_n {
                gram[(i, j)] = self.gram[(i, j)];
            }
        }
        for j in 0..n {
            let (lo, hi) = (index.min(j), index.max(j));
            let v = dot(a.column(lo), a.column(hi));
            gram[(lo, hi)] = v;
            gram[(hi, lo)] = v;
        }
        GramSystem::from_parts(gram, a.frobenius_norm())
    }

    /// Number of columns of the underlying design matrix.
    pub fn n(&self) -> usize {
        self.gram.ncols()
    }

    /// The Gram matrix `AᵀA`.
    pub fn gram(&self) -> &DMatrix {
        &self.gram
    }

    /// The Frobenius norm `||A||_F` of the underlying design matrix.
    pub fn frobenius(&self) -> f64 {
        self.frobenius
    }

    /// `½ ||Aβ − b||²` expressed through the Gram state:
    /// `½ βᵀGβ − βᵀ(Aᵀb) + ½ bᵀb`.
    fn objective(&self, beta: &[f64], atb: &[f64], btb: f64) -> Result<f64, LinalgError> {
        let gb = self.gram.matvec(beta)?;
        let quad = dot(beta, &gb);
        let lin = dot(beta, atb);
        Ok(0.5 * quad - lin + 0.5 * btb)
    }

    /// Gradient `Aᵀ(Aβ − b) = Gβ − Aᵀb`.
    fn gradient(&self, beta: &[f64], atb: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut g = self.gram.matvec(beta)?;
        for (gi, ci) in g.iter_mut().zip(atb) {
            *gi -= ci;
        }
        Ok(g)
    }
}

/// Validates the per-query right-hand-side pair for a Gram-state solve.
fn validate_rhs(gs: &GramSystem, atb: &[f64], btb: f64) -> Result<(), LinalgError> {
    if atb.len() != gs.n() {
        return Err(LinalgError::ShapeMismatch {
            op: "simplex_ls_gram",
            left: (gs.n(), 1),
            right: (atb.len(), 1),
        });
    }
    if !btb.is_finite() || atb.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    Ok(())
}

/// Euclidean projection of `v` onto the probability simplex
/// `{ x : x >= 0, Σx = 1 }` (Duchi, Shalev-Shwartz, Singer, Chandra 2008).
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    assert!(n > 0, "cannot project an empty vector");
    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.total_cmp(a)); // descending
    let mut css = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    debug_assert!(rho > 0);
    v.iter().map(|&vi| (vi - theta).max(0.0)).collect()
}

/// Solves Eq. 15 by FISTA with simplex projection.
///
/// Converges at rate O(1/k²) for this convex quadratic; iterations stop
/// when the projected-gradient step stalls below a scaled tolerance or the
/// iteration cap is hit (the best iterate found is still returned —
/// the cap is generous and the result is then still feasible, just
/// possibly short of full stationarity).
pub fn solve_projected_gradient(
    a: &DMatrix,
    b: &[f64],
    max_iter: usize,
    tol: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls")?;
    solve_projected_gradient_gram(&gs, &atb, btb, max_iter, tol)
}

/// Builds the Gram state and right-hand-side products of one problem,
/// validating shapes and finiteness on the way.
fn split_problem(
    a: &DMatrix,
    b: &[f64],
    op: &'static str,
) -> Result<(GramSystem, Vec<f64>, f64), LinalgError> {
    let (m, n) = (a.nrows(), a.ncols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op,
            left: (m, n),
            right: (b.len(), 1),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    let gs = GramSystem::new(a)?;
    let atb = a.tr_matvec(b)?;
    let btb = dot(b, b);
    Ok((gs, atb, btb))
}

/// [`solve_projected_gradient`] on a precomputed Gram state: `atb = Aᵀb`,
/// `btb = bᵀb`.
pub fn solve_projected_gradient_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    max_iter: usize,
    tol: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    validate_rhs(gs, atb, btb)?;
    let n = gs.n();

    // Lipschitz constant of the gradient: λ_max(AᵀA). Power iteration only
    // gives a *lower* bound, and an understated constant makes FISTA
    // oscillate; the Gershgorin row-sum norm of the Gram matrix is a cheap
    // guaranteed upper bound (λ_max ≤ max_i Σ_j |G_ij| for symmetric G).
    let g = gs.gram();
    let mut lmax = 0.0f64;
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            row_sum += g[(i, j)].abs();
        }
        lmax = lmax.max(row_sum);
    }
    let step = 1.0 / lmax.max(f64::MIN_POSITIVE);

    let objective = |beta: &[f64]| -> Result<f64, LinalgError> { gs.objective(beta, atb, btb) };

    let mut x = vec![1.0 / n as f64; n];
    let mut y = x.clone();
    let mut t = 1.0f64;
    let mut iterations = 0;
    let scale = btb.sqrt().max(1.0);
    // FISTA is not monotone: track the best feasible iterate seen, and
    // restart the momentum when the objective rises (O'Donoghue–Candès
    // adaptive restart), which restores monotone-ish behavior without
    // giving up acceleration.
    let mut best = x.clone();
    let mut best_obj = objective(&x)?;
    let mut prev_obj = best_obj;
    for _ in 0..max_iter {
        iterations += 1;
        // Gradient at y: Aᵀ(Ay − b) = Gy − Aᵀb.
        let grad = gs.gradient(&y, atb)?;
        let mut z: Vec<f64> = y.clone();
        axpy(-step, &grad, &mut z);
        let x_next = project_to_simplex(&z);
        let obj = objective(&x_next)?;
        if obj < best_obj {
            best_obj = obj;
            best.clone_from(&x_next);
        }
        let restart = obj > prev_obj;
        prev_obj = obj;
        let t_next = if restart {
            1.0
        } else {
            0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt())
        };
        let momentum = if restart { 0.0 } else { (t - 1.0) / t_next };
        let diff: Vec<f64> = x_next.iter().zip(&x).map(|(p, q)| p - q).collect();
        let delta = norm2(&diff);
        y = x_next.clone();
        axpy(momentum, &diff, &mut y);
        x = x_next;
        t = t_next;
        if delta <= tol * scale {
            break;
        }
    }
    let beta = project_to_simplex(&best);
    let objective = objective(&beta)?;
    Ok(SimplexLsSolution {
        beta,
        objective,
        iterations,
    })
}

/// Solves Eq. 15 exactly with an active-set method.
///
/// The equality constraint is eliminated by substituting
/// `β_n = 1 − Σ_{k<n} β_k` *for a chosen pivot column*, transforming the
/// problem into a bound-constrained LS over the remaining coordinates plus
/// the implicit constraint `Σ β_k <= 1`. Rather than handling that general
/// polytope, the method enumerates supports in Lawson–Hanson style directly
/// on the simplex: starting from the best single vertex, it repeatedly
/// solves the equality-constrained LS restricted to the current support via
/// a KKT system, adds the most violated coordinate, and steps back to the
/// boundary when a coordinate would leave the support.
pub fn solve_active_set(a: &DMatrix, b: &[f64]) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls_active_set")?;
    solve_active_set_gram(&gs, &atb, btb)
}

/// [`solve_active_set`] on a precomputed Gram state: `atb = Aᵀb`,
/// `btb = bᵀb`.
pub fn solve_active_set_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    validate_rhs(gs, atb, btb)?;
    let n = gs.n();

    let objective = |beta: &[f64]| -> Result<f64, LinalgError> { gs.objective(beta, atb, btb) };

    // Start from the best single vertex e_k; on a vertex the objective
    // reduces to ½G[k,k] − (Aᵀb)[k] + ½bᵀb.
    let mut best_k = 0;
    let mut best_obj = f64::INFINITY;
    for (k, &atb_k) in atb.iter().enumerate() {
        let o = 0.5 * gs.gram()[(k, k)] - atb_k + 0.5 * btb;
        if o < best_obj {
            best_obj = o;
            best_k = k;
        }
    }
    let mut x = vec![0.0; n];
    x[best_k] = 1.0;
    let mut support: Vec<bool> = (0..n).map(|j| j == best_k).collect();

    let scale = btb.sqrt().max(1.0) * gs.frobenius.max(1.0);
    let tol = 1e-12 * scale.max(1.0) * (n as f64);
    let max_outer = 4 * n + 32;
    let mut iterations = 0;

    for _ in 0..max_outer {
        iterations += 1;
        // Solve the equality-constrained LS on the current support:
        //   min ||A_S z − b||²  s.t.  1ᵀz = 1
        // via the KKT system [G 1; 1ᵀ 0][z; λ] = [A_Sᵀ b; 1].
        let idx: Vec<usize> = (0..n).filter(|&j| support[j]).collect();
        let z = eq_constrained_ls(gs, atb, &idx)?;
        let negative = idx.iter().enumerate().any(|(q, _)| z[q] < -tol);
        if !negative {
            // Accept z on the support.
            x.iter_mut().for_each(|v| *v = 0.0);
            for (q, &j) in idx.iter().enumerate() {
                x[j] = z[q].max(0.0);
            }
            renormalize(&mut x);
            // Check outer KKT: gradient g = Aᵀ(Ax − b) = Gx − Aᵀb; with
            // multiplier λ for the equality, optimality needs g_j >= λ for
            // all j with equality on the support. λ = min over support.
            let g = gs.gradient(&x, atb)?;
            let lambda = idx.iter().map(|&j| g[j]).fold(f64::INFINITY, f64::min);
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..n {
                if !support[j] {
                    let viol = lambda - g[j]; // g_j < λ violates optimality
                    if viol > tol * 1e3 {
                        match enter {
                            Some((_, bv)) if viol <= bv => {}
                            _ => enter = Some((j, viol)),
                        }
                    }
                }
            }
            match enter {
                Some((j, _)) => {
                    support[j] = true;
                    continue;
                }
                None => break, // optimal
            }
        }
        // Backtrack toward z until the first support coordinate hits zero.
        let mut alpha = 1.0f64;
        for (q, &j) in idx.iter().enumerate() {
            if z[q] < 0.0 {
                let denom = x[j] - z[q];
                if denom > 0.0 {
                    alpha = alpha.min(x[j] / denom);
                }
            }
        }
        for (q, &j) in idx.iter().enumerate() {
            x[j] += alpha * (z[q] - x[j]);
        }
        for j in 0..n {
            if support[j] && x[j] <= tol {
                x[j] = 0.0;
                support[j] = false;
            }
        }
        if !support.iter().any(|&s| s) {
            // Numerical corner: restart from the best vertex.
            support[best_k] = true;
            x[best_k] = 1.0;
        }
        renormalize(&mut x);
    }

    renormalize(&mut x);
    let objective = objective(&x)?;
    Ok(SimplexLsSolution {
        beta: x,
        objective,
        iterations,
    })
}

/// Solves `min ||A_S z − b||²` s.t. `Σz = 1` on the columns `idx` via the
/// KKT linear system, solved with QR on the bordered matrix. Works purely
/// off the Gram state: `G_S` is a sub-block of `AᵀA` and `c = (Aᵀb)_S`.
fn eq_constrained_ls(gs: &GramSystem, atb: &[f64], idx: &[usize]) -> Result<Vec<f64>, LinalgError> {
    let k = idx.len();
    if k == 0 {
        return Err(LinalgError::Empty);
    }
    if k == 1 {
        return Ok(vec![1.0]);
    }
    // KKT: [G  1][z]   [c]
    //      [1ᵀ 0][λ] = [1]
    // where G = A_Sᵀ A_S and c = A_Sᵀ b.
    let gram = gs.gram();
    let mut kkt = DMatrix::zeros(k + 1, k + 1);
    for (p, &jp) in idx.iter().enumerate() {
        for (q, &jq) in idx.iter().enumerate() {
            kkt[(p, q)] = gram[(jp, jq)];
        }
        kkt[(p, k)] = 1.0;
        kkt[(k, p)] = 1.0;
    }
    let mut rhs = vec![0.0; k + 1];
    for (p, &jp) in idx.iter().enumerate() {
        rhs[p] = atb[jp];
    }
    rhs[k] = 1.0;
    let sol = HouseholderQr::new(&kkt)?.solve(&rhs).or_else(|_| {
        // Singular KKT (duplicate columns in the support): fall back to a
        // ridge-regularized system, which picks the minimum-norm split.
        let mut reg = kkt.clone();
        let scale = (0..k).map(|p| reg[(p, p)].abs()).fold(0.0f64, f64::max);
        for p in 0..k {
            reg[(p, p)] += 1e-10 * scale.max(1.0);
        }
        HouseholderQr::new(&reg)?.solve(&rhs)
    })?;
    Ok(sol[..k].to_vec())
}

/// Clamps tiny negatives to zero and rescales so the vector sums to 1.
fn renormalize(x: &mut [f64]) {
    let mut s = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        s += *v;
    }
    if s > 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    } else if let Some(first) = x.first_mut() {
        *first = 1.0;
    }
}

/// Dispatches to the configured solver with library-default parameters.
pub fn solve(
    a: &DMatrix,
    b: &[f64],
    solver: SimplexSolver,
) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls")?;
    solve_gram(&gs, &atb, btb, solver)
}

/// [`solve`] on a precomputed Gram state — the *apply* half of the
/// prepare/apply split. Because [`solve`] itself routes through this
/// function, a prepared solve is numerically identical to a one-shot
/// solve by construction.
pub fn solve_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    solver: SimplexSolver,
) -> Result<SimplexLsSolution, LinalgError> {
    match solver {
        SimplexSolver::ProjectedGradient => {
            solve_projected_gradient_gram(gs, atb, btb, 2000, 1e-12)
        }
        SimplexSolver::ActiveSet => solve_active_set_gram(gs, atb, btb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_feasible(beta: &[f64]) {
        assert!(
            beta.iter().all(|&v| v >= 0.0),
            "negative weight in {beta:?}"
        );
        let s: f64 = beta.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "weights sum to {s}");
    }

    #[test]
    fn gram_from_parts_is_bit_identical() {
        let a = DMatrix::from_rows(&[&[1.0, 0.25], &[0.5, 3.0], &[2.0, 1.0]]).unwrap();
        let gs = GramSystem::new(&a).unwrap();
        let rebuilt = GramSystem::from_parts(gs.gram().clone(), gs.frobenius()).unwrap();
        assert_eq!(rebuilt.n(), gs.n());
        assert_eq!(rebuilt.frobenius().to_bits(), gs.frobenius().to_bits());
        for j in 0..gs.n() {
            for (x, y) in rebuilt.gram().column(j).iter().zip(gs.gram().column(j)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Solves through the rebuilt state match the original exactly.
        let atb = [0.7, 1.9];
        let sol = solve_gram(&gs, &atb, 4.0, SimplexSolver::ActiveSet).unwrap();
        let sol2 = solve_gram(&rebuilt, &atb, 4.0, SimplexSolver::ActiveSet).unwrap();
        for (x, y) in sol.beta.iter().zip(&sol2.beta) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Defensive rejections.
        assert!(GramSystem::from_parts(gs.gram().clone(), f64::NAN).is_err());
        assert!(GramSystem::from_parts(gs.gram().clone(), -1.0).is_err());
        let rect = DMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(GramSystem::from_parts(rect, 1.0).is_err());
    }

    /// Asserts two Gram states are bitwise identical.
    fn assert_gram_identical(a: &GramSystem, b: &GramSystem) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.frobenius().to_bits(), b.frobenius().to_bits());
        for j in 0..a.n() {
            for (x, y) in a.gram().column(j).iter().zip(b.gram().column(j)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn updated_column_matches_from_scratch_bitwise() {
        let mut columns = vec![
            vec![1.0, 0.5, 2.0, 0.125],
            vec![0.25, 3.0, 1.0, 0.7],
            vec![0.1, 0.2, 0.3, 0.4],
        ];
        let a0 = DMatrix::from_columns(&columns).unwrap();
        let gs0 = GramSystem::new(&a0).unwrap();
        // Replace each column in turn: the delta path must agree with a
        // full rebuild bit for bit.
        for index in 0..columns.len() {
            let mut changed = columns.clone();
            changed[index] = vec![9.0, 0.01, 4.5, 1.25];
            let a1 = DMatrix::from_columns(&changed).unwrap();
            let delta = gs0.with_updated_column(&a1, index).unwrap();
            let scratch = GramSystem::new(&a1).unwrap();
            assert_gram_identical(&delta, &scratch);
        }
        // Appending a column grows the system identically too.
        columns.push(vec![0.9, 0.8, 0.7, 0.6]);
        let a2 = DMatrix::from_columns(&columns).unwrap();
        let grown = gs0.with_updated_column(&a2, 3).unwrap();
        assert_gram_identical(&grown, &GramSystem::new(&a2).unwrap());
    }

    #[test]
    fn updated_column_rejects_shape_mismatch() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let gs = GramSystem::new(&a).unwrap();
        // Index beyond an append.
        assert!(gs.with_updated_column(&a, 2).is_err());
        // Column count that is neither n nor n+1.
        let wide = DMatrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        assert!(gs.with_updated_column(&wide, 0).is_err());
    }

    #[test]
    fn projection_known_cases() {
        // Already on the simplex.
        let p = project_to_simplex(&[0.2, 0.3, 0.5]);
        for (a, b) in p.iter().zip(&[0.2, 0.3, 0.5]) {
            assert!((a - b).abs() < 1e-15);
        }
        // Uniform shift invariance: projecting [c, c] gives [0.5, 0.5].
        let p = project_to_simplex(&[10.0, 10.0]);
        assert!((p[0] - 0.5).abs() < 1e-15);
        // Dominant coordinate saturates.
        let p = project_to_simplex(&[5.0, 0.0, 0.0]);
        assert_eq!(p, vec![1.0, 0.0, 0.0]);
        // Negative entries clamp to zero.
        let p = project_to_simplex(&[0.9, -5.0, 0.3]);
        assert_feasible(&p);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn projection_is_idempotent_and_feasible() {
        let mut state: u64 = 99;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for _ in 0..50 {
            let v: Vec<f64> = (0..7).map(|_| next()).collect();
            let p = project_to_simplex(&v);
            assert_feasible(&p);
            let pp = project_to_simplex(&p);
            for (a, b) in p.iter().zip(&pp) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_convex_combination_is_recovered() {
        // b = 0.3 col0 + 0.7 col1 exactly; both solvers must find it.
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 1.0], &[0.5, 3.0]]).unwrap();
        let beta_true = [0.3, 0.7];
        let b = a.matvec(&beta_true).unwrap();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.objective < 1e-12, "{solver:?}: {}", s.objective);
            for (got, want) in s.beta.iter().zip(&beta_true) {
                assert!((got - want).abs() < 1e-5, "{solver:?}: {:?}", s.beta);
            }
        }
    }

    #[test]
    fn vertex_solution_when_one_reference_dominates() {
        // b equals column 2: optimal beta is the vertex e2.
        let a =
            DMatrix::from_rows(&[&[1.0, 0.2, 0.0], &[0.1, 0.9, 1.0], &[0.3, 0.4, 2.0]]).unwrap();
        let b = a.column(2).to_vec();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.beta[2] > 0.999, "{solver:?}: {:?}", s.beta);
        }
    }

    #[test]
    fn solvers_agree_on_random_problems() {
        let mut state: u64 = 0xABCDEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..25 {
            let m = 12;
            let n = 2 + trial % 5;
            let mut a = DMatrix::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] = next();
                }
            }
            let b: Vec<f64> = (0..m).map(|_| next() * 1.5).collect();
            let pg = solve(&a, &b, SimplexSolver::ProjectedGradient).unwrap();
            let acts = solve(&a, &b, SimplexSolver::ActiveSet).unwrap();
            assert_feasible(&pg.beta);
            assert_feasible(&acts.beta);
            let scale = norm2(&b).max(1.0);
            assert!(
                (pg.objective - acts.objective).abs() <= 1e-6 * scale * scale,
                "trial {trial}: objectives {} vs {}",
                pg.objective,
                acts.objective
            );
        }
    }

    #[test]
    fn single_reference_gets_weight_one() {
        let a = DMatrix::from_columns(&[vec![0.5, 0.1, 0.9]]).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_eq!(s.beta.len(), 1);
            assert!((s.beta[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn highly_correlated_columns_split_weight_stably() {
        // Columns 0 and 1 are nearly identical (the USPS business vs
        // residential situation of §4.4.2); the solver must not blow up and
        // total weight on {0,1} should dominate.
        let a = DMatrix::from_rows(&[
            &[1.00, 0.99, 0.1],
            &[2.00, 2.02, 0.2],
            &[0.50, 0.51, 0.9],
            &[1.50, 1.49, 0.3],
        ])
        .unwrap();
        let b = a.matvec(&[0.5, 0.5, 0.0]).unwrap();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.beta[0] + s.beta[1] > 0.95, "{solver:?}: {:?}", s.beta);
            assert!(s.objective < 1e-8);
        }
    }

    #[test]
    fn errors_on_bad_shapes() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(solve(&a, &[1.0, 2.0], SimplexSolver::ProjectedGradient).is_err());
        assert!(solve(&a, &[1.0, 2.0], SimplexSolver::ActiveSet).is_err());
        assert!(solve(&a, &[f64::INFINITY], SimplexSolver::ProjectedGradient).is_err());
        let empty = DMatrix::zeros(0, 0);
        assert!(solve(&empty, &[], SimplexSolver::ActiveSet).is_err());
    }

    #[test]
    fn identical_columns_do_not_loop_forever() {
        let a = DMatrix::from_columns(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap();
        let b = vec![1.0, 2.0];
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.objective < 1e-10, "{solver:?}");
        }
    }
}
