//! Least squares on the probability simplex — the weight-learning problem
//! of GeoAlign (paper Eq. 15):
//!
//! ```text
//! min_β  ½ ||A β − b||²   subject to   Σ_k β_k = 1,  β_k >= 0
//! ```
//!
//! Two independent solvers are provided:
//!
//! * [`solve_projected_gradient`] — accelerated projected gradient (FISTA)
//!   with exact Euclidean projection onto the simplex (Duchi et al. 2008);
//!   the default used by the algorithm.
//! * [`solve_active_set`] — an exact active-set method that eliminates the
//!   equality constraint and enumerates KKT-consistent supports via the
//!   Lawson–Hanson machinery.
//!
//! Tests assert the two agree, giving mutual validation without an external
//! reference implementation.

use crate::dense::{axpy, dot, householder_factor, householder_solve_into, norm2, DMatrix};

use crate::error::LinalgError;
use crate::scratch::{KktScratch, SolverScratch};

/// Result of a simplex-constrained least-squares solve.
#[derive(Debug, Clone)]
pub struct SimplexLsSolution {
    /// The weight vector; non-negative, sums to 1.
    pub beta: Vec<f64>,
    /// Objective value `½||Aβ − b||²`.
    pub objective: f64,
    /// Iterations used by the solver.
    pub iterations: usize,
}

/// Which simplex least-squares solver to use.
///
/// The active-set method is the default: reference counts are small (the
/// paper uses at most ten), the method is exact, and its cost is a handful
/// of length-`|U^s|` dot products — keeping weight learning negligible
/// next to disaggregation, as the paper reports (§4.3). The projected
/// gradient solver scales to many references and serves as an independent
/// cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplexSolver {
    /// Accelerated projected gradient (FISTA with simplex projection).
    ProjectedGradient,
    /// Exact active-set method (default).
    #[default]
    ActiveSet,
}

/// The objective's value-independent normal-equations state: the Gram
/// matrix `G = AᵀA` plus the norms the solvers use for scaling. Building
/// it costs `O(n²m)`; afterwards each solve over the same design matrix
/// only needs the `O(nm)` right-hand-side products `Aᵀb` and `bᵀb` — the
/// *prepare* half of the prepare/apply split used by
/// `geoalign_core`'s `PreparedCrosswalk`.
#[derive(Debug, Clone)]
pub struct GramSystem {
    gram: DMatrix,
    frobenius: f64,
}

impl GramSystem {
    /// Precomputes the Gram state of the design matrix `a`.
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        if a.nrows() == 0 || a.ncols() == 0 {
            return Err(LinalgError::Empty);
        }
        Ok(GramSystem {
            gram: a.gram(),
            frobenius: a.frobenius_norm(),
        })
    }

    /// Reassembles a Gram state from its serialized parts — the exact
    /// `gram` matrix and `frobenius` norm previously read out of an
    /// instance built by [`GramSystem::new`]. Persisting the parts (as
    /// bit patterns) and rebuilding through here yields a state that is
    /// byte-identical to the original, which is what makes a
    /// warm-started solve reproduce the cold one's results exactly.
    pub fn from_parts(gram: DMatrix, frobenius: f64) -> Result<Self, LinalgError> {
        if gram.nrows() == 0 || gram.ncols() == 0 {
            return Err(LinalgError::Empty);
        }
        if gram.nrows() != gram.ncols() {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_from_parts",
                left: (gram.nrows(), gram.ncols()),
                right: (gram.ncols(), gram.ncols()),
            });
        }
        if !frobenius.is_finite() || frobenius < 0.0 {
            return Err(LinalgError::NonFinite);
        }
        Ok(GramSystem { gram, frobenius })
    }

    /// The incremental-prepare delta path: rebuilds the Gram state after
    /// exactly one column of the design matrix changed (or one column was
    /// appended), touching only that column's row/column of `G` instead of
    /// recomputing all `O(n²)` dot products.
    ///
    /// `a` is the *full updated* design matrix and `index` the changed
    /// column; `index == self.n()` grows the system by one column. Every
    /// Gram entry is a single independent dot product with the lower
    /// column index as the left operand — the same evaluation
    /// [`GramSystem::new`] performs — and the Frobenius norm is recomputed
    /// whole, so the result is bit-identical to a from-scratch build over
    /// `a`.
    pub fn with_updated_column(
        &self,
        a: &DMatrix,
        index: usize,
    ) -> Result<GramSystem, LinalgError> {
        let old_n = self.n();
        let n = a.ncols();
        let grows = n == old_n + 1 && index == old_n;
        if a.nrows() == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if index >= n || (n != old_n && !grows) {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_update_column",
                left: (old_n, old_n),
                right: (n, index),
            });
        }
        let mut gram = DMatrix::zeros(n, n);
        for i in 0..old_n {
            for j in 0..old_n {
                gram[(i, j)] = self.gram[(i, j)];
            }
        }
        for j in 0..n {
            let (lo, hi) = (index.min(j), index.max(j));
            let v = dot(a.column(lo), a.column(hi));
            gram[(lo, hi)] = v;
            gram[(hi, lo)] = v;
        }
        GramSystem::from_parts(gram, a.frobenius_norm())
    }

    /// Number of columns of the underlying design matrix.
    pub fn n(&self) -> usize {
        self.gram.ncols()
    }

    /// The Gram matrix `AᵀA`.
    pub fn gram(&self) -> &DMatrix {
        &self.gram
    }

    /// The Frobenius norm `||A||_F` of the underlying design matrix.
    pub fn frobenius(&self) -> f64 {
        self.frobenius
    }

    /// `½ ||Aβ − b||²` expressed through the Gram state
    /// (`½ βᵀGβ − βᵀ(Aᵀb) + ½ bᵀb`) through a reusable `Gβ` buffer —
    /// the allocation-free form the scratch solvers call every iteration.
    fn objective_scratch(
        &self,
        beta: &[f64],
        atb: &[f64],
        btb: f64,
        gb: &mut Vec<f64>,
    ) -> Result<f64, LinalgError> {
        gb.clear();
        gb.resize(beta.len(), 0.0);
        self.gram.matvec_into(beta, gb)?;
        let quad = dot(beta, gb);
        let lin = dot(beta, atb);
        Ok(0.5 * quad - lin + 0.5 * btb)
    }

    /// Gradient `Aᵀ(Aβ − b) = Gβ − Aᵀb` into a reusable buffer.
    fn gradient_into(
        &self,
        beta: &[f64],
        atb: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        out.clear();
        out.resize(beta.len(), 0.0);
        self.gram.matvec_into(beta, out)?;
        for (gi, ci) in out.iter_mut().zip(atb) {
            *gi -= ci;
        }
        Ok(())
    }
}

/// Validates the per-query right-hand-side pair for a Gram-state solve.
fn validate_rhs(gs: &GramSystem, atb: &[f64], btb: f64) -> Result<(), LinalgError> {
    if atb.len() != gs.n() {
        return Err(LinalgError::ShapeMismatch {
            op: "simplex_ls_gram",
            left: (gs.n(), 1),
            right: (atb.len(), 1),
        });
    }
    if !btb.is_finite() || atb.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    Ok(())
}

/// Euclidean projection of `v` onto the probability simplex
/// `{ x : x >= 0, Σx = 1 }` (Duchi, Shalev-Shwartz, Singer, Chandra 2008).
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    let mut u = Vec::new();
    let mut out = Vec::new();
    project_to_simplex_into(v, &mut u, &mut out);
    out
}

/// [`project_to_simplex`] through reusable buffers: `u` is the sort
/// scratch, `out` receives the projection. The allocation-free form the
/// FISTA loop calls every iteration.
fn project_to_simplex_into(v: &[f64], u: &mut Vec<f64>, out: &mut Vec<f64>) {
    let n = v.len();
    assert!(n > 0, "cannot project an empty vector");
    u.clear();
    u.extend_from_slice(v);
    u.sort_by(|a, b| b.total_cmp(a)); // descending
    let mut css = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i + 1) as f64;
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    debug_assert!(rho > 0);
    out.clear();
    out.extend(v.iter().map(|&vi| (vi - theta).max(0.0)));
}

/// Solves Eq. 15 by FISTA with simplex projection.
///
/// Converges at rate O(1/k²) for this convex quadratic; iterations stop
/// when the projected-gradient step stalls below a scaled tolerance or the
/// iteration cap is hit (the best iterate found is still returned —
/// the cap is generous and the result is then still feasible, just
/// possibly short of full stationarity).
pub fn solve_projected_gradient(
    a: &DMatrix,
    b: &[f64],
    max_iter: usize,
    tol: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls")?;
    solve_projected_gradient_gram(&gs, &atb, btb, max_iter, tol)
}

/// Builds the Gram state and right-hand-side products of one problem,
/// validating shapes and finiteness on the way.
fn split_problem(
    a: &DMatrix,
    b: &[f64],
    op: &'static str,
) -> Result<(GramSystem, Vec<f64>, f64), LinalgError> {
    let (m, n) = (a.nrows(), a.ncols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op,
            left: (m, n),
            right: (b.len(), 1),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    let gs = GramSystem::new(a)?;
    let atb = a.tr_matvec(b)?;
    let btb = dot(b, b);
    Ok((gs, atb, btb))
}

/// [`solve_projected_gradient`] on a precomputed Gram state: `atb = Aᵀb`,
/// `btb = bᵀb`.
pub fn solve_projected_gradient_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    max_iter: usize,
    tol: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    solve_projected_gradient_gram_scratch(gs, atb, btb, max_iter, tol, &mut SolverScratch::new())
}

/// [`solve_projected_gradient_gram`] through a reusable
/// [`SolverScratch`]: identical arithmetic in the identical order — the
/// result is bit-for-bit the same — but a steady-state iteration
/// performs zero heap allocations. The only allocation left is the
/// returned `beta`.
pub fn solve_projected_gradient_gram_scratch(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    max_iter: usize,
    tol: f64,
    scratch: &mut SolverScratch,
) -> Result<SimplexLsSolution, LinalgError> {
    validate_rhs(gs, atb, btb)?;
    let iterations = fista_iterate(gs, atb, btb, max_iter, tol, scratch)?;
    // Output allocation: the best iterate, re-projected exactly as the
    // historical implementation did.
    let beta = project_to_simplex(&scratch.best);
    let objective = gs.objective_scratch(&beta, atb, btb, &mut scratch.gb)?;
    Ok(SimplexLsSolution {
        beta,
        objective,
        iterations,
    })
}

/// The FISTA loop on preallocated buffers; leaves the best iterate in
/// `s.best` and returns the iteration count. Zero heap allocations once
/// the arena has grown to the problem size (enforced by check.sh's
/// hot-loop gate — keep `.clone()`/`to_vec()`/`vec![` out of here).
fn fista_iterate(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    max_iter: usize,
    tol: f64,
    s: &mut SolverScratch,
) -> Result<usize, LinalgError> {
    let n = gs.n();

    // Lipschitz constant of the gradient: λ_max(AᵀA). Power iteration only
    // gives a *lower* bound, and an understated constant makes FISTA
    // oscillate; the Gershgorin row-sum norm of the Gram matrix is a cheap
    // guaranteed upper bound (λ_max ≤ max_i Σ_j |G_ij| for symmetric G).
    let g = gs.gram();
    let mut lmax = 0.0f64;
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            row_sum += g[(i, j)].abs();
        }
        lmax = lmax.max(row_sum);
    }
    let step = 1.0 / lmax.max(f64::MIN_POSITIVE);

    s.x.clear();
    s.x.resize(n, 1.0 / n as f64);
    s.yk.clear();
    s.yk.extend_from_slice(&s.x);
    let mut t = 1.0f64;
    let mut iterations = 0;
    let scale = btb.sqrt().max(1.0);
    // FISTA is not monotone: track the best feasible iterate seen, and
    // restart the momentum when the objective rises (O'Donoghue–Candès
    // adaptive restart), which restores monotone-ish behavior without
    // giving up acceleration.
    s.best.clear();
    s.best.extend_from_slice(&s.x);
    let mut best_obj = gs.objective_scratch(&s.x, atb, btb, &mut s.gb)?;
    let mut prev_obj = best_obj;
    for _ in 0..max_iter {
        iterations += 1;
        // Gradient at y: Aᵀ(Ay − b) = Gy − Aᵀb.
        gs.gradient_into(&s.yk, atb, &mut s.grad)?;
        s.z.clear();
        s.z.extend_from_slice(&s.yk);
        axpy(-step, &s.grad, &mut s.z);
        project_to_simplex_into(&s.z, &mut s.u, &mut s.x_next);
        let obj = gs.objective_scratch(&s.x_next, atb, btb, &mut s.gb)?;
        if obj < best_obj {
            best_obj = obj;
            s.best.clear();
            s.best.extend_from_slice(&s.x_next);
        }
        let restart = obj > prev_obj;
        prev_obj = obj;
        let t_next = if restart {
            1.0
        } else {
            0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt())
        };
        let momentum = if restart { 0.0 } else { (t - 1.0) / t_next };
        s.diff.clear();
        s.diff.extend(s.x_next.iter().zip(&s.x).map(|(p, q)| p - q));
        let delta = norm2(&s.diff);
        s.yk.clear();
        s.yk.extend_from_slice(&s.x_next);
        axpy(momentum, &s.diff, &mut s.yk);
        // The historical loop cloned x_next into x; the double-buffer swap
        // produces the same values with no copy (x_next is fully rebuilt
        // by the projection next iteration).
        std::mem::swap(&mut s.x, &mut s.x_next);
        t = t_next;
        if delta <= tol * scale {
            break;
        }
    }
    Ok(iterations)
}

/// Solves Eq. 15 exactly with an active-set method.
///
/// The equality constraint is eliminated by substituting
/// `β_n = 1 − Σ_{k<n} β_k` *for a chosen pivot column*, transforming the
/// problem into a bound-constrained LS over the remaining coordinates plus
/// the implicit constraint `Σ β_k <= 1`. Rather than handling that general
/// polytope, the method enumerates supports in Lawson–Hanson style directly
/// on the simplex: starting from the best single vertex, it repeatedly
/// solves the equality-constrained LS restricted to the current support via
/// a KKT system, adds the most violated coordinate, and steps back to the
/// boundary when a coordinate would leave the support.
pub fn solve_active_set(a: &DMatrix, b: &[f64]) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls_active_set")?;
    solve_active_set_gram(&gs, &atb, btb)
}

/// [`solve_active_set`] on a precomputed Gram state: `atb = Aᵀb`,
/// `btb = bᵀb`.
pub fn solve_active_set_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
) -> Result<SimplexLsSolution, LinalgError> {
    solve_active_set_gram_scratch(gs, atb, btb, &mut SolverScratch::new())
}

/// [`solve_active_set_gram`] through a reusable [`SolverScratch`]:
/// identical arithmetic in the identical order — the result is
/// bit-for-bit the same — but a steady-state iteration performs zero
/// heap allocations. The only allocation left is the returned `beta`.
pub fn solve_active_set_gram_scratch(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    scratch: &mut SolverScratch,
) -> Result<SimplexLsSolution, LinalgError> {
    validate_rhs(gs, atb, btb)?;
    let iterations = active_set_iterate(gs, atb, btb, scratch)?;
    // Output allocation: the accepted support iterate.
    let mut beta = Vec::with_capacity(scratch.xas.len());
    beta.extend_from_slice(&scratch.xas);
    let objective = gs.objective_scratch(&beta, atb, btb, &mut scratch.gb)?;
    Ok(SimplexLsSolution {
        beta,
        objective,
        iterations,
    })
}

/// The active-set loop on preallocated buffers; leaves the final iterate
/// in `s.xas` and returns the iteration count. Zero heap allocations
/// once the arena has grown to the problem size (enforced by check.sh's
/// hot-loop gate — keep `.clone()`/`to_vec()`/`vec![` out of here).
fn active_set_iterate(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    s: &mut SolverScratch,
) -> Result<usize, LinalgError> {
    let n = gs.n();

    // Start from the best single vertex e_k; on a vertex the objective
    // reduces to ½G[k,k] − (Aᵀb)[k] + ½bᵀb.
    let mut best_k = 0;
    let mut best_obj = f64::INFINITY;
    for (k, &atb_k) in atb.iter().enumerate() {
        let o = 0.5 * gs.gram()[(k, k)] - atb_k + 0.5 * btb;
        if o < best_obj {
            best_obj = o;
            best_k = k;
        }
    }
    s.xas.clear();
    s.xas.resize(n, 0.0);
    s.xas[best_k] = 1.0;
    s.support.clear();
    s.support.extend((0..n).map(|j| j == best_k));

    let scale = btb.sqrt().max(1.0) * gs.frobenius.max(1.0);
    let tol = 1e-12 * scale.max(1.0) * (n as f64);
    let max_outer = 4 * n + 32;
    let mut iterations = 0;

    for _ in 0..max_outer {
        iterations += 1;
        // Solve the equality-constrained LS on the current support:
        //   min ||A_S z − b||²  s.t.  1ᵀz = 1
        // via the KKT system [G 1; 1ᵀ 0][z; λ] = [A_Sᵀ b; 1].
        {
            let (idx, support) = (&mut s.idx, &s.support);
            idx.clear();
            idx.extend((0..n).filter(|&j| support[j]));
        }
        eq_constrained_ls_scratch(gs, atb, &s.idx, &mut s.kkt)?;
        let z = &s.kkt.sol;
        let negative = s.idx.iter().enumerate().any(|(q, _)| z[q] < -tol);
        if !negative {
            // Accept z on the support.
            s.xas.iter_mut().for_each(|v| *v = 0.0);
            for (q, &j) in s.idx.iter().enumerate() {
                s.xas[j] = z[q].max(0.0);
            }
            renormalize(&mut s.xas);
            // Check outer KKT: gradient g = Aᵀ(Ax − b) = Gx − Aᵀb; with
            // multiplier λ for the equality, optimality needs g_j >= λ for
            // all j with equality on the support. λ = min over support.
            gs.gradient_into(&s.xas, atb, &mut s.grad)?;
            let g = &s.grad;
            let lambda = s.idx.iter().map(|&j| g[j]).fold(f64::INFINITY, f64::min);
            let mut enter: Option<(usize, f64)> = None;
            #[allow(clippy::needless_range_loop)] // lockstep over support + g
            for j in 0..n {
                if !s.support[j] {
                    let viol = lambda - g[j]; // g_j < λ violates optimality
                    if viol > tol * 1e3 {
                        match enter {
                            Some((_, bv)) if viol <= bv => {}
                            _ => enter = Some((j, viol)),
                        }
                    }
                }
            }
            match enter {
                Some((j, _)) => {
                    s.support[j] = true;
                    continue;
                }
                None => break, // optimal
            }
        }
        // Backtrack toward z until the first support coordinate hits zero.
        let z = &s.kkt.sol;
        let mut alpha = 1.0f64;
        for (q, &j) in s.idx.iter().enumerate() {
            if z[q] < 0.0 {
                let denom = s.xas[j] - z[q];
                if denom > 0.0 {
                    alpha = alpha.min(s.xas[j] / denom);
                }
            }
        }
        for (q, &j) in s.idx.iter().enumerate() {
            s.xas[j] += alpha * (z[q] - s.xas[j]);
        }
        for j in 0..n {
            if s.support[j] && s.xas[j] <= tol {
                s.xas[j] = 0.0;
                s.support[j] = false;
            }
        }
        if !s.support.iter().any(|&f| f) {
            // Numerical corner: restart from the best vertex.
            s.support[best_k] = true;
            s.xas[best_k] = 1.0;
        }
        renormalize(&mut s.xas);
    }

    renormalize(&mut s.xas);
    Ok(iterations)
}

/// Solves `min ||A_S z − b||²` s.t. `Σz = 1` on the columns `idx` via the
/// KKT linear system, solved with QR on the bordered matrix. Works purely
/// off the Gram state: `G_S` is a sub-block of `AᵀA` and `c = (Aᵀb)_S`.
/// The solution lands in `bufs.sol` (length `idx.len()`); every buffer is
/// reused across calls, so a steady-state call allocates nothing.
fn eq_constrained_ls_scratch(
    gs: &GramSystem,
    atb: &[f64],
    idx: &[usize],
    bufs: &mut KktScratch,
) -> Result<(), LinalgError> {
    let k = idx.len();
    if k == 0 {
        return Err(LinalgError::Empty);
    }
    if k == 1 {
        bufs.sol.clear();
        bufs.sol.push(1.0);
        return Ok(());
    }
    // KKT: [G  1][z]   [c]
    //      [1ᵀ 0][λ] = [1]
    // where G = A_Sᵀ A_S and c = A_Sᵀ b.
    let gram = gs.gram();
    bufs.kkt.reshape_zeroed(k + 1, k + 1);
    for (p, &jp) in idx.iter().enumerate() {
        for (q, &jq) in idx.iter().enumerate() {
            bufs.kkt[(p, q)] = gram[(jp, jq)];
        }
        bufs.kkt[(p, k)] = 1.0;
        bufs.kkt[(k, p)] = 1.0;
    }
    bufs.rhs.clear();
    bufs.rhs.resize(k + 1, 0.0);
    for (p, &jp) in idx.iter().enumerate() {
        bufs.rhs[p] = atb[jp];
    }
    bufs.rhs[k] = 1.0;
    bufs.qr.copy_from(&bufs.kkt);
    householder_factor(&mut bufs.qr, &mut bufs.tau, &mut bufs.v)?;
    bufs.y.clear();
    bufs.y.extend_from_slice(&bufs.rhs);
    bufs.sol.clear();
    bufs.sol.resize(k + 1, 0.0);
    if householder_solve_into(&bufs.qr, &bufs.tau, &mut bufs.y, &mut bufs.sol).is_err() {
        // Singular KKT (duplicate columns in the support): fall back to a
        // ridge-regularized system, which picks the minimum-norm split.
        bufs.qr.copy_from(&bufs.kkt);
        let scale = (0..k).map(|p| bufs.qr[(p, p)].abs()).fold(0.0f64, f64::max);
        for p in 0..k {
            bufs.qr[(p, p)] += 1e-10 * scale.max(1.0);
        }
        householder_factor(&mut bufs.qr, &mut bufs.tau, &mut bufs.v)?;
        bufs.y.clear();
        bufs.y.extend_from_slice(&bufs.rhs);
        householder_solve_into(&bufs.qr, &bufs.tau, &mut bufs.y, &mut bufs.sol)?;
    }
    // Drop the multiplier entry so callers read z as sol[..k].
    bufs.sol.truncate(k);
    Ok(())
}

/// Clamps tiny negatives to zero and rescales so the vector sums to 1.
fn renormalize(x: &mut [f64]) {
    let mut s = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        s += *v;
    }
    if s > 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    } else if let Some(first) = x.first_mut() {
        *first = 1.0;
    }
}

/// Dispatches to the configured solver with library-default parameters.
pub fn solve(
    a: &DMatrix,
    b: &[f64],
    solver: SimplexSolver,
) -> Result<SimplexLsSolution, LinalgError> {
    let (gs, atb, btb) = split_problem(a, b, "simplex_ls")?;
    solve_gram(&gs, &atb, btb, solver)
}

/// [`solve`] on a precomputed Gram state — the *apply* half of the
/// prepare/apply split. Because [`solve`] itself routes through this
/// function, a prepared solve is numerically identical to a one-shot
/// solve by construction.
pub fn solve_gram(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    solver: SimplexSolver,
) -> Result<SimplexLsSolution, LinalgError> {
    solve_gram_scratch(gs, atb, btb, solver, &mut SolverScratch::new())
}

/// [`solve_gram`] through a reusable [`SolverScratch`] — the entry point
/// batch-apply paths call once per objective with a per-worker arena.
/// Results are bit-identical to [`solve_gram`] (which routes through
/// here with a fresh arena).
pub fn solve_gram_scratch(
    gs: &GramSystem,
    atb: &[f64],
    btb: f64,
    solver: SimplexSolver,
    scratch: &mut SolverScratch,
) -> Result<SimplexLsSolution, LinalgError> {
    match solver {
        SimplexSolver::ProjectedGradient => {
            solve_projected_gradient_gram_scratch(gs, atb, btb, 2000, 1e-12, scratch)
        }
        SimplexSolver::ActiveSet => solve_active_set_gram_scratch(gs, atb, btb, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_feasible(beta: &[f64]) {
        assert!(
            beta.iter().all(|&v| v >= 0.0),
            "negative weight in {beta:?}"
        );
        let s: f64 = beta.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "weights sum to {s}");
    }

    #[test]
    fn gram_from_parts_is_bit_identical() {
        let a = DMatrix::from_rows(&[&[1.0, 0.25], &[0.5, 3.0], &[2.0, 1.0]]).unwrap();
        let gs = GramSystem::new(&a).unwrap();
        let rebuilt = GramSystem::from_parts(gs.gram().clone(), gs.frobenius()).unwrap();
        assert_eq!(rebuilt.n(), gs.n());
        assert_eq!(rebuilt.frobenius().to_bits(), gs.frobenius().to_bits());
        for j in 0..gs.n() {
            for (x, y) in rebuilt.gram().column(j).iter().zip(gs.gram().column(j)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Solves through the rebuilt state match the original exactly.
        let atb = [0.7, 1.9];
        let sol = solve_gram(&gs, &atb, 4.0, SimplexSolver::ActiveSet).unwrap();
        let sol2 = solve_gram(&rebuilt, &atb, 4.0, SimplexSolver::ActiveSet).unwrap();
        for (x, y) in sol.beta.iter().zip(&sol2.beta) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Defensive rejections.
        assert!(GramSystem::from_parts(gs.gram().clone(), f64::NAN).is_err());
        assert!(GramSystem::from_parts(gs.gram().clone(), -1.0).is_err());
        let rect = DMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(GramSystem::from_parts(rect, 1.0).is_err());
    }

    /// Asserts two Gram states are bitwise identical.
    fn assert_gram_identical(a: &GramSystem, b: &GramSystem) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.frobenius().to_bits(), b.frobenius().to_bits());
        for j in 0..a.n() {
            for (x, y) in a.gram().column(j).iter().zip(b.gram().column(j)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn updated_column_matches_from_scratch_bitwise() {
        let mut columns = vec![
            vec![1.0, 0.5, 2.0, 0.125],
            vec![0.25, 3.0, 1.0, 0.7],
            vec![0.1, 0.2, 0.3, 0.4],
        ];
        let a0 = DMatrix::from_columns(&columns).unwrap();
        let gs0 = GramSystem::new(&a0).unwrap();
        // Replace each column in turn: the delta path must agree with a
        // full rebuild bit for bit.
        for index in 0..columns.len() {
            let mut changed = columns.clone();
            changed[index] = vec![9.0, 0.01, 4.5, 1.25];
            let a1 = DMatrix::from_columns(&changed).unwrap();
            let delta = gs0.with_updated_column(&a1, index).unwrap();
            let scratch = GramSystem::new(&a1).unwrap();
            assert_gram_identical(&delta, &scratch);
        }
        // Appending a column grows the system identically too.
        columns.push(vec![0.9, 0.8, 0.7, 0.6]);
        let a2 = DMatrix::from_columns(&columns).unwrap();
        let grown = gs0.with_updated_column(&a2, 3).unwrap();
        assert_gram_identical(&grown, &GramSystem::new(&a2).unwrap());
    }

    #[test]
    fn updated_column_rejects_shape_mismatch() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let gs = GramSystem::new(&a).unwrap();
        // Index beyond an append.
        assert!(gs.with_updated_column(&a, 2).is_err());
        // Column count that is neither n nor n+1.
        let wide = DMatrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        assert!(gs.with_updated_column(&wide, 0).is_err());
    }

    #[test]
    fn projection_known_cases() {
        // Already on the simplex.
        let p = project_to_simplex(&[0.2, 0.3, 0.5]);
        for (a, b) in p.iter().zip(&[0.2, 0.3, 0.5]) {
            assert!((a - b).abs() < 1e-15);
        }
        // Uniform shift invariance: projecting [c, c] gives [0.5, 0.5].
        let p = project_to_simplex(&[10.0, 10.0]);
        assert!((p[0] - 0.5).abs() < 1e-15);
        // Dominant coordinate saturates.
        let p = project_to_simplex(&[5.0, 0.0, 0.0]);
        assert_eq!(p, vec![1.0, 0.0, 0.0]);
        // Negative entries clamp to zero.
        let p = project_to_simplex(&[0.9, -5.0, 0.3]);
        assert_feasible(&p);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn projection_is_idempotent_and_feasible() {
        let mut state: u64 = 99;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for _ in 0..50 {
            let v: Vec<f64> = (0..7).map(|_| next()).collect();
            let p = project_to_simplex(&v);
            assert_feasible(&p);
            let pp = project_to_simplex(&p);
            for (a, b) in p.iter().zip(&pp) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_convex_combination_is_recovered() {
        // b = 0.3 col0 + 0.7 col1 exactly; both solvers must find it.
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 1.0], &[0.5, 3.0]]).unwrap();
        let beta_true = [0.3, 0.7];
        let b = a.matvec(&beta_true).unwrap();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.objective < 1e-12, "{solver:?}: {}", s.objective);
            for (got, want) in s.beta.iter().zip(&beta_true) {
                assert!((got - want).abs() < 1e-5, "{solver:?}: {:?}", s.beta);
            }
        }
    }

    #[test]
    fn vertex_solution_when_one_reference_dominates() {
        // b equals column 2: optimal beta is the vertex e2.
        let a =
            DMatrix::from_rows(&[&[1.0, 0.2, 0.0], &[0.1, 0.9, 1.0], &[0.3, 0.4, 2.0]]).unwrap();
        let b = a.column(2).to_vec();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.beta[2] > 0.999, "{solver:?}: {:?}", s.beta);
        }
    }

    #[test]
    fn solvers_agree_on_random_problems() {
        let mut state: u64 = 0xABCDEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..25 {
            let m = 12;
            let n = 2 + trial % 5;
            let mut a = DMatrix::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] = next();
                }
            }
            let b: Vec<f64> = (0..m).map(|_| next() * 1.5).collect();
            let pg = solve(&a, &b, SimplexSolver::ProjectedGradient).unwrap();
            let acts = solve(&a, &b, SimplexSolver::ActiveSet).unwrap();
            assert_feasible(&pg.beta);
            assert_feasible(&acts.beta);
            let scale = norm2(&b).max(1.0);
            assert!(
                (pg.objective - acts.objective).abs() <= 1e-6 * scale * scale,
                "trial {trial}: objectives {} vs {}",
                pg.objective,
                acts.objective
            );
        }
    }

    #[test]
    fn single_reference_gets_weight_one() {
        let a = DMatrix::from_columns(&[vec![0.5, 0.1, 0.9]]).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_eq!(s.beta.len(), 1);
            assert!((s.beta[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn highly_correlated_columns_split_weight_stably() {
        // Columns 0 and 1 are nearly identical (the USPS business vs
        // residential situation of §4.4.2); the solver must not blow up and
        // total weight on {0,1} should dominate.
        let a = DMatrix::from_rows(&[
            &[1.00, 0.99, 0.1],
            &[2.00, 2.02, 0.2],
            &[0.50, 0.51, 0.9],
            &[1.50, 1.49, 0.3],
        ])
        .unwrap();
        let b = a.matvec(&[0.5, 0.5, 0.0]).unwrap();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.beta[0] + s.beta[1] > 0.95, "{solver:?}: {:?}", s.beta);
            assert!(s.objective < 1e-8);
        }
    }

    #[test]
    fn errors_on_bad_shapes() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(solve(&a, &[1.0, 2.0], SimplexSolver::ProjectedGradient).is_err());
        assert!(solve(&a, &[1.0, 2.0], SimplexSolver::ActiveSet).is_err());
        assert!(solve(&a, &[f64::INFINITY], SimplexSolver::ProjectedGradient).is_err());
        let empty = DMatrix::zeros(0, 0);
        assert!(solve(&empty, &[], SimplexSolver::ActiveSet).is_err());
    }

    #[test]
    fn identical_columns_do_not_loop_forever() {
        let a = DMatrix::from_columns(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap();
        let b = vec![1.0, 2.0];
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let s = solve(&a, &b, solver).unwrap();
            assert_feasible(&s.beta);
            assert!(s.objective < 1e-10, "{solver:?}");
        }
    }
}
