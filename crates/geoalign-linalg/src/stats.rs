//! Descriptive statistics used across the evaluation harness: means,
//! variances, Pearson correlation (reference selection, §4.4.2), RMSE /
//! NRMSE (the paper's accuracy criteria, §4.2), and quantiles (the box
//! plots of Figure 7).

use crate::error::LinalgError;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample is constant (the convention the reference
/// selection experiments need: a constant reference carries no signal).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "pearson",
            left: (xs.len(), 1),
            right: (ys.len(), 1),
        });
    }
    if xs.len() < 2 {
        return Ok(0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Root mean square error between an estimate and the truth.
pub fn rmse(estimate: &[f64], truth: &[f64]) -> Result<f64, LinalgError> {
    if estimate.len() != truth.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "rmse",
            left: (estimate.len(), 1),
            right: (truth.len(), 1),
        });
    }
    if estimate.is_empty() {
        return Err(LinalgError::Empty);
    }
    let mse = estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimate.len() as f64;
    Ok(mse.sqrt())
}

/// RMSE normalized by the mean of the measured (true) data — the NRMSE of
/// paper §4.2, which makes errors comparable across datasets of
/// heterogeneous scale. Errors when the truth has zero mean.
pub fn nrmse(estimate: &[f64], truth: &[f64]) -> Result<f64, LinalgError> {
    let r = rmse(estimate, truth)?;
    let m = mean(truth);
    if m == 0.0 {
        return Err(LinalgError::Singular);
    }
    Ok(r / m.abs())
}

/// Mean absolute error.
pub fn mae(estimate: &[f64], truth: &[f64]) -> Result<f64, LinalgError> {
    if estimate.len() != truth.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "mae",
            left: (estimate.len(), 1),
            right: (truth.len(), 1),
        });
    }
    if estimate.is_empty() {
        return Err(LinalgError::Empty);
    }
    Ok(estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimate.len() as f64)
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of a sample.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(s[lo] + frac * (s[hi] - s[lo]))
}

/// Five-number summary used by box plots: min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Sample minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Sample maximum.
    pub max: f64,
}

/// Computes the five-number summary of a sample.
pub fn five_number(xs: &[f64]) -> Result<FiveNumber, LinalgError> {
    Ok(FiveNumber {
        min: quantile(xs, 0.0)?,
        q1: quantile(xs, 0.25)?,
        median: quantile(xs, 0.5)?,
        q3: quantile(xs, 0.75)?,
        max: quantile(xs, 1.0)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[1.0, 3.0]), 1.0);
        assert_eq!(std_dev(&[1.0, 3.0]), 1.0);
    }

    #[test]
    fn pearson_known_values() {
        // Perfect positive and negative correlation.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        // Constant series convention.
        assert_eq!(pearson(&x, &[7.0; 4]).unwrap(), 0.0);
        // Orthogonal pattern.
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[1.0, -1.0, -1.0, 1.0]).unwrap();
        assert!(r.abs() < 1e-12);
        assert!(pearson(&x, &[1.0]).is_err());
        assert_eq!(pearson(&[1.0], &[2.0]).unwrap(), 0.0);
    }

    #[test]
    fn rmse_and_nrmse() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        let e = [2.0, 3.0, 4.0];
        assert!((rmse(&e, &t).unwrap() - 1.0).abs() < 1e-15);
        assert!((nrmse(&e, &t).unwrap() - 0.5).abs() < 1e-15);
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(nrmse(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]).unwrap(), 1.5);
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn quantiles_and_five_number() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 9.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.5);
        let f = five_number(&xs).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 9.0);
        assert_eq!(f.median, 3.5);
        assert!(f.q1 <= f.median && f.median <= f.q3);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.3).unwrap(), 42.0);
        let f = five_number(&[42.0]).unwrap();
        assert_eq!(f.min, 42.0);
        assert_eq!(f.max, 42.0);
    }
}
