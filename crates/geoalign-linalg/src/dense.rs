//! Dense column-major matrices and the factorizations the weight-learning
//! step needs: Cholesky (normal equations) and Householder QR (stable least
//! squares).

use crate::error::LinalgError;

/// A dense matrix stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice (for tests and small
    /// literals). All rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::ShapeMismatch {
                op: "from_rows",
                left: (r, c),
                right: (r, rows.iter().map(|x| x.len()).max().unwrap_or(0)),
            });
        }
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        Ok(m)
    }

    /// Builds a matrix by horizontally concatenating columns — exactly how
    /// Eq. 15's design matrix `A` is assembled from normalized reference
    /// vectors.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let cols = columns.len();
        let rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(LinalgError::ShapeMismatch {
                op: "from_columns",
                left: (rows, cols),
                right: (columns.iter().map(Vec::len).max().unwrap_or(0), cols),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for c in columns {
            data.extend_from_slice(c);
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a slice (column-major storage makes this free).
    pub fn column(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column `j`.
    pub fn column_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// [`DMatrix::matvec`] into a caller-provided output slice of length
    /// `nrows` — the allocation-free form for hot loops.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_into",
                left: (self.rows, self.cols),
                right: (y.len(), 1),
            });
        }
        y.fill(0.0);
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for (yi, &aij) in y.iter_mut().zip(self.column(j)) {
                *yi += aij * xj;
            }
        }
        Ok(())
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    pub fn tr_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut out = vec![0.0; self.cols];
        self.tr_matvec_into(y, &mut out)?;
        Ok(out)
    }

    /// [`DMatrix::tr_matvec`] into a caller-provided output slice of
    /// length `ncols` — the allocation-free form for hot loops.
    pub fn tr_matvec_into(&self, y: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec",
                left: (self.cols, self.rows),
                right: (y.len(), 1),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec_into",
                left: (self.cols, self.rows),
                right: (out.len(), 1),
            });
        }
        for (j, o) in out.iter_mut().enumerate() {
            *o = dot(self.column(j), y);
        }
        Ok(())
    }

    /// Gram matrix `AᵀA` (symmetric positive semidefinite).
    pub fn gram(&self) -> DMatrix {
        // The tasks only run `dot`, which does not panic, so the only
        // possible `ExecError` is an internal bug worth propagating loudly.
        self.gram_with(geoalign_exec::Executor::global())
            .expect("gram assembly task panicked")
    }

    /// [`DMatrix::gram`] on an explicit executor: each task computes one
    /// row of the upper triangle, in 4-column blocks, writing entries (and
    /// their mirrors) straight into the shared output — no per-row `Vec`
    /// and no copy pass.
    ///
    /// Bit-identity: every Gram entry is still exactly
    /// `dot(column(i), column(j))` — the blocked kernel keeps four
    /// *independent* accumulators, one per output entry, each summing in
    /// index order, so entry values match the naive loop to the bit and
    /// are independent of the thread count. The blocking buys instruction
    /// parallelism (four dependent-add chains instead of one) and one
    /// read of column `i` per four columns `j`.
    ///
    /// Disjointness (safety of the shared write): task `i` writes cells
    /// `{(i, j), (j, i) : j ≥ i}`. For `i1 < i2`, a collision would need
    /// either equal rows/cols (impossible: `i1 ≠ i2`) or `(i1, j)` to
    /// equal some `(j', i2)` — forcing `j' = i1 ≥ i2`, a contradiction.
    pub fn gram_with(&self, exec: geoalign_exec::Executor) -> Result<DMatrix, LinalgError> {
        let k = self.cols;
        let mut g = DMatrix::zeros(k, k);
        if k == 0 {
            return Ok(g);
        }
        let out = crate::kernel::DisjointWriter::new(&mut g.data);
        exec.for_each_indexed(k, |i| {
            let ci = self.column(i);
            let mut j = i;
            while j + GRAM_BLOCK <= k {
                let s = dot4(
                    ci,
                    self.column(j),
                    self.column(j + 1),
                    self.column(j + 2),
                    self.column(j + 3),
                );
                for (off, &v) in s.iter().enumerate() {
                    let jj = j + off;
                    // SAFETY: in bounds (i, jj < k); disjoint across tasks
                    // per the proof in the doc comment above.
                    unsafe {
                        out.write(jj * k + i, v); // g[(i, jj)]
                        out.write(i * k + jj, v); // g[(jj, i)]
                    }
                }
                j += GRAM_BLOCK;
            }
            while j < k {
                let v = dot(ci, self.column(j));
                // SAFETY: as above.
                unsafe {
                    out.write(j * k + i, v);
                    out.write(i * k + j, v);
                }
                j += 1;
            }
        })?;
        Ok(g)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Reshapes in place to `rows × cols` with every entry zero, reusing
    /// the existing allocation when capacity allows — the scratch-arena
    /// resize primitive.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes a copy of `src`, reusing this matrix's allocation (unlike
    /// `clone_from`, which would reallocate via `Clone`).
    pub fn copy_from(&mut self, src: &DMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Becomes the horizontal concatenation of `src`'s columns `idx`,
    /// reusing this matrix's allocation — the scratch form of
    /// [`DMatrix::from_columns`] for passive-set submatrix selection.
    pub fn copy_columns_from(&mut self, src: &DMatrix, idx: &[usize]) {
        self.rows = src.rows;
        self.cols = idx.len();
        self.data.clear();
        for &j in idx {
            self.data.extend_from_slice(src.column(j));
        }
    }
}

/// Column-block width of the tiled Gram kernel: entries are produced
/// four at a time from one pass over column `i`.
const GRAM_BLOCK: usize = 4;

/// Four dot products against a common left vector in one pass. Each
/// accumulator sums `a[t] * b?[t]` in index order starting from zero —
/// exactly the fold [`dot`] performs — so each of the four results is
/// bit-identical to the corresponding standalone `dot` call.
#[inline]
fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    // Accumulators start at -0.0, the additive identity `Sum<f64>` folds
    // from, so each lane is bitwise identical to a `dot` call — including
    // the empty-slice and all-(-0.0) cases.
    let (mut s0, mut s1, mut s2, mut s3) = (-0.0f64, -0.0f64, -0.0f64, -0.0f64);
    for ((((&ai, &x0), &x1), &x2), &x3) in a.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
        s0 += ai * x0;
        s1 += ai * x1;
        s2 += ai * x2;
        s3 += ai * x3;
    }
    [s0, s1, s2, s3]
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.rows + i]
    }
}

/// Dot product of equal-length slices (panics on length mismatch in debug).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Cholesky factorization of a symmetric positive-definite matrix,
/// `A = L Lᵀ` with `L` lower-triangular.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factorizes `a` (must be square, symmetric, positive definite).
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                left: (a.nrows(), a.ncols()),
                right: (n, n),
            });
        }
        let mut l = DMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::Singular);
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Self { l })
    }

    /// Solves `A x = b` using the stored factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &DMatrix {
        &self.l
    }
}

/// Householder QR factorization for least squares, `A = QR` with `A`
/// `m × n`, `m >= n`.
#[derive(Debug, Clone)]
pub struct HouseholderQr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    qr: DMatrix,
    /// Householder scalars.
    tau: Vec<f64>,
}

impl HouseholderQr {
    /// Factorizes `a` (requires `nrows >= ncols` and at least one column).
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        let mut qr = a.clone();
        let mut tau = Vec::new();
        let mut v = Vec::new();
        householder_factor(&mut qr, &mut tau, &mut v)?;
        Ok(Self { qr, tau })
    }

    /// Solves the least-squares problem `min ||A x - b||²`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        let mut x = vec![0.0; n];
        householder_solve_into(&self.qr, &self.tau, &mut y, &mut x)?;
        Ok(x)
    }
}

/// In-place Householder factorization: `qr` holds the input matrix on
/// entry and the packed factors (R in the upper triangle, unit-scaled
/// reflectors below) on exit. `tau` receives the Householder scalars and
/// `v` is reflector scratch, both reused across calls — the
/// allocation-free core behind [`HouseholderQr::new`] and the solver
/// scratch paths. Requires `nrows >= ncols >= 1`.
pub(crate) fn householder_factor(
    qr: &mut DMatrix,
    tau: &mut Vec<f64>,
    v: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    let (m, n) = (qr.nrows(), qr.ncols());
    if n == 0 || m == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            op: "qr",
            left: (m, n),
            right: (n, n),
        });
    }
    tau.clear();
    tau.resize(n, 0.0);
    for k in 0..n {
        // Householder vector for column k, rows k..m.
        let col = qr.column(k);
        let alpha = norm2(&col[k..]);
        if alpha == 0.0 {
            tau[k] = 0.0;
            continue;
        }
        let akk = col[k];
        let beta = if akk >= 0.0 { -alpha } else { alpha };
        let ck = qr.column_mut(k);
        ck[k] = akk - beta;
        let vnorm_sq: f64 = ck[k..].iter().map(|q| q * q).sum();
        tau[k] = 2.0 / vnorm_sq;
        // Apply the reflector to the remaining columns.
        // Copy v to avoid aliasing (v lives in column k).
        v.clear();
        v.extend_from_slice(&qr.column(k)[k..]);
        for j in (k + 1)..n {
            let cj = qr.column_mut(j);
            let w = tau[k] * dot(v, &cj[k..]);
            for (c, &vi) in cj[k..].iter_mut().zip(v.iter()) {
                *c -= w * vi;
            }
        }
        // Store beta (the R diagonal) at (k, k); the Householder vector
        // occupies rows k+1..m of column k, with v[0] remembered via
        // tau normalization: we keep v as-is but overwrite position k
        // with beta and stash v0 implicitly by rescaling tau.
        // Simpler: rescale the stored vector so v0 = 1.
        let v0 = v[0];
        if v0 != 0.0 {
            let ck = qr.column_mut(k);
            for c in ck[k + 1..].iter_mut() {
                *c /= v0;
            }
            tau[k] *= v0 * v0;
            ck[k] = beta;
        } else {
            qr.column_mut(k)[k] = beta;
        }
    }
    Ok(())
}

/// Applies `Qᵀ` (from packed factors) to `b` in place.
fn householder_apply_qt(qr: &DMatrix, tau: &[f64], b: &mut [f64]) {
    let (m, n) = (qr.nrows(), qr.ncols());
    debug_assert_eq!(b.len(), m);
    for k in 0..n {
        if tau[k] == 0.0 {
            continue;
        }
        // v = [1, qr[k+1.., k]].
        let col = qr.column(k);
        let mut w = b[k];
        for (bi, &vi) in b[k + 1..m].iter().zip(&col[k + 1..m]) {
            w += bi * vi;
        }
        w *= tau[k];
        b[k] -= w;
        for (bi, &vi) in b[k + 1..m].iter_mut().zip(&col[k + 1..m]) {
            *bi -= w * vi;
        }
    }
}

/// Least-squares solve from packed Householder factors: `y` holds `b` on
/// entry and is clobbered; the solution lands in `x` (length `ncols`).
/// The allocation-free core behind [`HouseholderQr::solve`].
pub(crate) fn householder_solve_into(
    qr: &DMatrix,
    tau: &[f64],
    y: &mut [f64],
    x: &mut [f64],
) -> Result<(), LinalgError> {
    let (m, n) = (qr.nrows(), qr.ncols());
    if y.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "qr_solve",
            left: (m, n),
            right: (y.len(), 1),
        });
    }
    debug_assert_eq!(x.len(), n);
    householder_apply_qt(qr, tau, y);
    // Back substitution on R (upper n×n block). A diagonal entry that is
    // negligibly small relative to the largest one signals (numerical)
    // rank deficiency.
    let rmax = (0..n).map(|i| qr[(i, i)].abs()).fold(0.0f64, f64::max);
    let tol = rmax * (m.max(n) as f64) * 16.0 * f64::EPSILON;
    for i in (0..n).rev() {
        let mut s = y[i];
        #[allow(clippy::needless_range_loop)] // x[j] is being built in place
        for j in (i + 1)..n {
            s -= qr[(i, j)] * x[j];
        }
        let rii = qr[(i, i)];
        if rii.abs() <= tol {
            return Err(LinalgError::Singular);
        }
        x[i] = s / rii;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_columns() {
        let mut m = DMatrix::zeros(2, 3);
        m[(0, 0)] = 1.0;
        m[(1, 2)] = 5.0;
        assert_eq!(m.column(0), &[1.0, 0.0]);
        assert_eq!(m.column(2), &[0.0, 5.0]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = DMatrix::from_columns(&[vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]]).unwrap();
        assert_eq!(a, b);
        assert!(DMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(DMatrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_is_ata() {
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g[(0, 0)], 2.0);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 5.0);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a =
            DMatrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
        // L Lᵀ reproduces A.
        let l = ch.l();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert_eq!(Cholesky::new(&a).unwrap_err(), LinalgError::Singular);
        let ns = DMatrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(Cholesky::new(&ns).is_err());
    }

    #[test]
    fn qr_solves_square_system() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = HouseholderQr::new(&a).unwrap();
        let b = a.matvec(&[0.5, -1.5]).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!((x[1] + 1.5).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        // Overdetermined 5×2 system.
        let a = DMatrix::from_rows(&[
            &[1.0, 1.0],
            &[1.0, 2.0],
            &[1.0, 3.0],
            &[1.0, 4.0],
            &[1.0, 5.0],
        ])
        .unwrap();
        let b = vec![2.1, 3.9, 6.2, 8.1, 9.8]; // roughly 2x
        let qr = HouseholderQr::new(&a).unwrap();
        let x_qr = qr.solve(&b).unwrap();
        // Normal equations via Cholesky.
        let g = a.gram();
        let atb = a.tr_matvec(&b).unwrap();
        let x_ne = Cholesky::new(&g).unwrap().solve(&atb).unwrap();
        for (p, q) in x_qr.iter().zip(&x_ne) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
        // Residual orthogonal to the column space.
        let ax = a.matvec(&x_qr).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = a.tr_matvec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn qr_shape_errors() {
        let wide = DMatrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(HouseholderQr::new(&wide).is_err());
        let a = DMatrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let qr = HouseholderQr::new(&a).unwrap();
        assert!(qr.solve(&[1.0]).is_err()); // b wrong length
    }

    #[test]
    fn qr_rank_deficiency_is_flagged_or_solved_consistently() {
        // Second column is a multiple of the first: the LS solution is not
        // unique. The solver must either flag the deficiency or return one
        // of the valid (finite, small-residual) minimizers — never garbage.
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let qr = HouseholderQr::new(&a).unwrap();
        match qr.solve(&b) {
            Err(LinalgError::Singular) => {}
            Err(e) => panic!("unexpected error {e}"),
            Ok(x) => {
                assert!(x.iter().all(|v| v.is_finite()));
                let ax = a.matvec(&x).unwrap();
                let resid: f64 = ax
                    .iter()
                    .zip(&b)
                    .map(|(p, q)| (p - q) * (p - q))
                    .sum::<f64>()
                    .sqrt();
                assert!(resid < 1e-8, "residual {resid} for {x:?}");
            }
        }
        // A column that is *exactly* zero must be flagged.
        let z = DMatrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]).unwrap();
        let qrz = HouseholderQr::new(&z).unwrap();
        assert_eq!(qrz.solve(&b).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn blas_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn identity_and_frobenius() {
        let i = DMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!((i.frobenius_norm() - 3.0f64.sqrt()).abs() < 1e-15);
    }
}
