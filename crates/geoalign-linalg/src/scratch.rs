//! Reusable buffer arenas for the solver hot paths.
//!
//! Every simplex-LS / NNLS solve needs a dozen working vectors (iterates,
//! gradients, KKT systems, Householder factors). Allocating them per call
//! made the solvers allocation-bound at the paper's reference counts
//! (k ≤ 10, where the linear algebra itself is a handful of tiny dot
//! products). [`SolverScratch`] owns all of them; the `*_scratch` solver
//! entry points thread one arena through, and the arena's buffers grow to
//! their high-water mark once and are then reused — a steady-state solver
//! iteration performs **zero heap allocations**.
//!
//! Ownership rules (also DESIGN.md §15):
//!
//! * An arena belongs to one thread. Parallel batch paths create one per
//!   worker via `Executor::run_tasks_with`, never share one.
//! * Buffers carry **capacity** between calls, never values: every
//!   `*_scratch` core fully overwrites a buffer (clear + resize/extend)
//!   before reading it, so results are bit-identical whatever a previous
//!   solve left behind.
//! * Dropping the arena releases everything; there is no trim API because
//!   the high-water mark is bounded by the largest problem shape seen.

use crate::dense::DMatrix;

/// Packed buffers for one bordered-KKT (or passive-set) factor/solve:
/// the assembled system, its in-place Householder factorization, and the
/// right-hand-side / solution vectors.
#[derive(Debug)]
pub(crate) struct KktScratch {
    /// The assembled KKT (or passive-column) matrix.
    pub(crate) kkt: DMatrix,
    /// In-place Householder factors of `kkt` (or its ridge fallback).
    pub(crate) qr: DMatrix,
    /// Householder scalars.
    pub(crate) tau: Vec<f64>,
    /// Reflector scratch for the factorization.
    pub(crate) v: Vec<f64>,
    /// Right-hand side of the system.
    pub(crate) rhs: Vec<f64>,
    /// Solve clobber buffer (`Qᵀ` is applied to it in place).
    pub(crate) y: Vec<f64>,
    /// Solution vector.
    pub(crate) sol: Vec<f64>,
}

impl KktScratch {
    fn new() -> Self {
        KktScratch {
            kkt: DMatrix::zeros(0, 0),
            qr: DMatrix::zeros(0, 0),
            tau: Vec::new(),
            v: Vec::new(),
            rhs: Vec::new(),
            y: Vec::new(),
            sol: Vec::new(),
        }
    }
}

/// Reusable working memory for the simplex-LS and NNLS solvers.
///
/// Create one (cheap — every buffer starts empty), then pass it to the
/// `*_scratch` solver entry points ([`crate::simplex_ls::solve_gram_scratch`],
/// [`crate::nnls::nnls_scratch`]). See the module docs for the ownership
/// and bit-identity rules.
#[derive(Debug)]
pub struct SolverScratch {
    // Shared across solvers.
    /// Gradient / dual-violation buffer.
    pub(crate) grad: Vec<f64>,
    /// `G·β` product buffer for objective evaluation.
    pub(crate) gb: Vec<f64>,
    /// Active / passive index list.
    pub(crate) idx: Vec<usize>,
    /// KKT / passive-set factor-solve buffers.
    pub(crate) kkt: KktScratch,
    // FISTA (projected gradient).
    /// Current iterate.
    pub(crate) x: Vec<f64>,
    /// Momentum iterate.
    pub(crate) yk: Vec<f64>,
    /// Next iterate (double-buffered against `x`).
    pub(crate) x_next: Vec<f64>,
    /// Pre-projection step target.
    pub(crate) z: Vec<f64>,
    /// Iterate difference for the stall test and momentum.
    pub(crate) diff: Vec<f64>,
    /// Best feasible iterate seen (FISTA is not monotone).
    pub(crate) best: Vec<f64>,
    /// Simplex-projection sort buffer.
    pub(crate) u: Vec<f64>,
    // Active set.
    /// Active-set iterate.
    pub(crate) xas: Vec<f64>,
    /// Support membership flags.
    pub(crate) support: Vec<bool>,
    // NNLS (Lawson–Hanson).
    /// NNLS iterate.
    pub(crate) x_nnls: Vec<f64>,
    /// Residual `b − Ax`.
    pub(crate) resid: Vec<f64>,
    /// Passive-column submatrix.
    pub(crate) sub: DMatrix,
    /// Full-length trial point scattered from the passive solve.
    pub(crate) zfull: Vec<f64>,
    /// `A·x` product buffer.
    pub(crate) ax: Vec<f64>,
}

impl SolverScratch {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        SolverScratch {
            grad: Vec::new(),
            gb: Vec::new(),
            idx: Vec::new(),
            kkt: KktScratch::new(),
            x: Vec::new(),
            yk: Vec::new(),
            x_next: Vec::new(),
            z: Vec::new(),
            diff: Vec::new(),
            best: Vec::new(),
            u: Vec::new(),
            xas: Vec::new(),
            support: Vec::new(),
            x_nnls: Vec::new(),
            resid: Vec::new(),
            sub: DMatrix::zeros(0, 0),
            zfull: Vec::new(),
            ax: Vec::new(),
        }
    }
}

impl Default for SolverScratch {
    fn default() -> Self {
        SolverScratch::new()
    }
}
