//! Sparse matrices in COO (builder) and CSR (compute) formats.
//!
//! Disaggregation matrices are overwhelmingly sparse — a zip code overlaps
//! only the handful of counties it straddles — and the paper stores them as
//! sparse matrices, noting (§4.3) that the number of non-zero entries
//! explains residual runtime variance across datasets. This module supplies
//! the operations the algorithm needs: construction, row iteration, row and
//! column sums, scaling, weighted sums, and transpose.

use crate::error::LinalgError;

/// Coordinate-format builder for sparse matrices. Duplicate entries are
/// summed when converting to CSR.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Empty builder with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Records `a[i, j] += v`. Entries with `v == 0` are skipped.
    pub fn push(&mut self, i: usize, j: usize, v: f64) -> Result<(), LinalgError> {
        if i >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                index: i,
                bound: self.rows,
            });
        }
        if j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: j,
                bound: self.cols,
            });
        }
        if !v.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        if v != 0.0 {
            self.entries.push((i as u32, j as u32, v));
        }
        Ok(())
    }

    /// Number of recorded (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicates and dropping entries that cancel
    /// to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (i, j, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == i && last.1 == j => last.2 += v,
                _ => merged.push((i, j, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0u32; self.rows + 1];
        for &(i, _, _) in &merged {
            row_ptr[i as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let col_idx: Vec<u32> = merged.iter().map(|&(_, j, _)| j).collect();
        let values: Vec<f64> = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `i` as parallel `(columns, values)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let s = self.row_ptr[i] as usize;
        let e = self.row_ptr[i + 1] as usize;
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&j, &v)| (i, j as usize, v))
        })
    }

    /// Value at `(i, j)` (zero when not stored). O(log nnz(row)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Row sums: `out[i] = Σ_j a[i, j]`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                let (_, vals) = self.row(i);
                vals.iter().sum()
            })
            .collect()
    }

    /// Column sums: `out[j] = Σ_i a[i, j]` — the re-aggregation step
    /// (paper Eq. 17) applied to a disaggregation matrix.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (&j, &v) in self.col_idx.iter().zip(&self.values) {
            out[j as usize] += v;
        }
        out
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.matvec_with(x, geoalign_exec::Executor::global())
    }

    /// [`CsrMatrix::matvec`] on an explicit executor.
    pub fn matvec_with(
        &self,
        x: &[f64],
        exec: geoalign_exec::Executor,
    ) -> Result<Vec<f64>, LinalgError> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y, exec)?;
        Ok(y)
    }

    /// [`CsrMatrix::matvec`] into a caller-provided output slice of
    /// length `nrows` — the allocation-free hot path. Rows fan out in the
    /// executor's standard chunks (a pure function of `nrows`); each task
    /// writes its own row range of `y` directly, so there is no range
    /// list, no per-chunk buffer, and no copy pass. Each output entry is
    /// an independent row gather accumulated in stored order, so the
    /// result is bit-identical at any thread count.
    ///
    /// The inner loop is branch-free: `x` is indexed unchecked, which is
    /// sound because every stored column index is `< ncols` by
    /// construction ([`CooMatrix::push`] bounds-checks, and every other
    /// constructor preserves the invariant) and `x.len() == ncols` is
    /// checked on entry.
    pub fn matvec_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: geoalign_exec::Executor,
    ) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "csr_matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "csr_matvec_into",
                left: (self.rows, self.cols),
                right: (y.len(), 1),
            });
        }
        let chunk = geoalign_exec::default_chunk_size(self.rows);
        let tasks = self.rows.div_ceil(chunk);
        let out = crate::kernel::DisjointWriter::new(y);
        exec.for_each_indexed(tasks, |t| {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(self.rows);
            for i in start..end {
                let s = self.row_ptr[i] as usize;
                let e = self.row_ptr[i + 1] as usize;
                let cols = &self.col_idx[s..e];
                let vals = &self.values[s..e];
                // -0.0 is `Sum<f64>`'s fold identity: keeps empty rows
                // bitwise identical to the old per-row `.sum()`.
                let mut acc = -0.0;
                for (&j, &v) in cols.iter().zip(vals) {
                    // SAFETY: j < self.cols == x.len() (CSR construction
                    // invariant, see doc comment).
                    acc += v * unsafe { *x.get_unchecked(j as usize) };
                }
                // SAFETY: i < rows == y.len(); row ranges are disjoint
                // across tasks, so index i is written by task t only.
                unsafe { out.write(i, acc) };
            }
        })?;
        Ok(())
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    pub fn tr_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "csr_tr_matvec",
                left: (self.cols, self.rows),
                right: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            let (cols, vals) = self.row(i);
            if yi == 0.0 {
                continue;
            }
            for (&j, &v) in cols.iter().zip(vals) {
                out[j as usize] += v * yi;
            }
        }
        Ok(out)
    }

    /// Transpose (CSR → CSR of the transposed matrix).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0u32; self.cols + 1];
        for &j in &self.col_idx {
            row_ptr[j as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor: Vec<u32> = row_ptr[..self.cols].to_vec();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let pos = cursor[j as usize] as usize;
                col_idx[pos] = i as u32;
                values[pos] = v;
                cursor[j as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Returns a copy with every stored value multiplied by `s`.
    pub fn scaled(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Returns a copy with row `i` multiplied by `factors[i]` — used to
    /// renormalize disaggregation shares per source unit.
    pub fn scale_rows(&self, factors: &[f64]) -> Result<CsrMatrix, LinalgError> {
        if factors.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "scale_rows",
                left: (self.rows, self.cols),
                right: (factors.len(), 1),
            });
        }
        let mut out = self.clone();
        for (i, &f) in factors.iter().enumerate() {
            let s = self.row_ptr[i] as usize;
            let e = self.row_ptr[i + 1] as usize;
            for v in &mut out.values[s..e] {
                *v *= f;
            }
        }
        Ok(out)
    }

    /// Weighted sum `Σ_k weights[k] · mats[k]` of same-shaped matrices —
    /// the numerator of Eq. 14 assembled over all references at once.
    pub fn weighted_sum(mats: &[&CsrMatrix], weights: &[f64]) -> Result<CsrMatrix, LinalgError> {
        if mats.len() != weights.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "weighted_sum",
                left: (mats.len(), 1),
                right: (weights.len(), 1),
            });
        }
        let Some(first) = mats.first() else {
            return Err(LinalgError::Empty);
        };
        let (rows, cols) = (first.nrows(), first.ncols());
        let mut coo = CooMatrix::new(rows, cols);
        for (m, &w) in mats.iter().zip(weights) {
            if m.nrows() != rows || m.ncols() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "weighted_sum",
                    left: (rows, cols),
                    right: (m.nrows(), m.ncols()),
                });
            }
            if w == 0.0 {
                continue;
            }
            for (i, j, v) in m.iter() {
                coo.push(i, j, w * v)?;
            }
        }
        Ok(coo.to_csr())
    }

    /// Extracts the submatrix of the given rows and columns (in the given
    /// order): `out[a, b] = self[rows[a], cols[b]]`. Out-of-range indices
    /// are rejected.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Result<CsrMatrix, LinalgError> {
        for &r in rows {
            if r >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: r,
                    bound: self.rows,
                });
            }
        }
        // Column remap: old index -> new position.
        let mut remap = vec![usize::MAX; self.cols];
        for (b, &c) in cols.iter().enumerate() {
            if c >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: c,
                    bound: self.cols,
                });
            }
            remap[c] = b;
        }
        let mut coo = CooMatrix::new(rows.len(), cols.len());
        for (a, &r) in rows.iter().enumerate() {
            let (rc, rv) = self.row(r);
            for (&j, &v) in rc.iter().zip(rv) {
                let b = remap[j as usize];
                if b != usize::MAX {
                    coo.push(a, b, v)?;
                }
            }
        }
        Ok(coo.to_csr())
    }

    /// Converts to a dense row-major `Vec<Vec<f64>>` (tests and small
    /// matrices only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for (i, j, v) in self.iter() {
            out[i][j] = v;
        }
        out
    }

    /// Density `nnz / (rows * cols)`; zero for an empty shape.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        coo.push(2, 1, 4.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn coo_bounds_and_validity() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(0, 0, f64::NAN).is_err());
        coo.push(0, 0, 0.0).unwrap(); // silently dropped
        assert!(coo.is_empty());
    }

    #[test]
    fn duplicates_sum_and_cancel() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        coo.push(1, 1, -5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.nnz(), 1); // the cancelled entry is dropped
    }

    #[test]
    fn row_access_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (cols, _) = m.row(1);
        assert!(cols.is_empty());
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn matvec_roundtrip() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![4.0, 4.0, 2.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
        // Transposed matvec agrees.
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(t.matvec(&x).unwrap(), m.tr_matvec(&x).unwrap());
    }

    #[test]
    fn scaling() {
        let m = sample();
        let s = m.scaled(2.0);
        assert_eq!(s.get(0, 2), 4.0);
        let r = m.scale_rows(&[1.0, 0.0, 10.0]).unwrap();
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(2, 1), 40.0);
        assert!(m.scale_rows(&[1.0]).is_err());
    }

    #[test]
    fn weighted_sum_combines() {
        let a = sample();
        let b = sample().scaled(10.0);
        let w = CsrMatrix::weighted_sum(&[&a, &b], &[1.0, 0.5]).unwrap();
        assert_eq!(w.get(0, 0), 6.0); // 1 + 0.5*10
        assert_eq!(w.get(2, 1), 24.0); // 4 + 0.5*40
                                       // Zero weight skips the matrix entirely.
        let z = CsrMatrix::weighted_sum(&[&a, &b], &[1.0, 0.0]).unwrap();
        assert_eq!(z, a);
        // Shape mismatch and empty inputs error.
        let small = CsrMatrix::zeros(2, 2);
        assert!(CsrMatrix::weighted_sum(&[&a, &small], &[1.0, 1.0]).is_err());
        assert!(CsrMatrix::weighted_sum(&[], &[]).is_err());
        assert!(CsrMatrix::weighted_sum(&[&a], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn zeros_and_density() {
        let z = CsrMatrix::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.row_sums(), vec![0.0; 4]);
        assert_eq!(z.density(), 0.0);
        assert!((sample().density() - 4.0 / 9.0).abs() < 1e-15);
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn submatrix_selects_and_reorders() {
        let m = sample();
        // Select rows [2, 0] and columns [1, 0]: values transpose-shuffle.
        let sub = m.submatrix(&[2, 0], &[1, 0]).unwrap();
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(0, 0), 4.0); // m[2,1]
        assert_eq!(sub.get(0, 1), 3.0); // m[2,0]
        assert_eq!(sub.get(1, 1), 1.0); // m[0,0]
        assert_eq!(sub.get(1, 0), 0.0); // m[0,1]
                                        // Empty selections are fine.
        let empty = m.submatrix(&[], &[0]).unwrap();
        assert_eq!(empty.nrows(), 0);
        assert_eq!(empty.nnz(), 0);
        // Bounds are checked.
        assert!(m.submatrix(&[5], &[0]).is_err());
        assert!(m.submatrix(&[0], &[9]).is_err());
    }

    #[test]
    fn to_dense_matches_iter() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[0], vec![1.0, 0.0, 2.0]);
        assert_eq!(d[1], vec![0.0, 0.0, 0.0]);
        assert_eq!(d[2], vec![3.0, 4.0, 0.0]);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(
            collected,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
