//! Shared plumbing for parallel kernels that write disjoint index sets
//! of one preallocated output buffer.
//!
//! The executor's determinism contract makes every task's *value* a pure
//! function of the input, so the only thing standing between a kernel
//! and a zero-copy parallel write is the aliasing rule: `&mut [f64]`
//! cannot be shared across worker closures. [`DisjointWriter`] is the
//! narrow escape hatch — a write-only raw-pointer view whose safety
//! argument is carried by each kernel's disjointness proof (documented
//! at the call sites in `dense.rs` / `sparse.rs`).

use std::marker::PhantomData;

/// Write-only view of an output slice that parallel tasks write
/// *disjoint* index sets into.
///
/// Soundness rests on three facts: the view permits writes only (no task
/// ever reads through it), each kernel proves no element index is
/// written by two different tasks, and the executor joins every worker
/// before the mutable borrow this view was built from ends.
pub(crate) struct DisjointWriter<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: per the type-level contract above, concurrent tasks never
// touch the same element and never read, so sharing the view across
// worker threads cannot produce a data race.
unsafe impl Send for DisjointWriter<'_> {}
unsafe impl Sync for DisjointWriter<'_> {}

impl<'a> DisjointWriter<'a> {
    /// Wraps `out` for the duration of one parallel job.
    pub(crate) fn new(out: &'a mut [f64]) -> Self {
        Self {
            ptr: out.as_mut_ptr(),
            len: out.len(),
            _marker: PhantomData,
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and across the whole parallel job no
    /// element index may be written by more than one task. (One task
    /// writing the same index repeatedly is fine — tasks are
    /// single-threaded.)
    #[inline]
    pub(crate) unsafe fn write(&self, index: usize, value: f64) {
        debug_assert!(index < self.len);
        // SAFETY: in bounds per the caller contract; no concurrent access
        // to this element per the disjointness contract.
        unsafe { *self.ptr.add(index) = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut out = vec![0.0f64; 257];
        let writer = DisjointWriter::new(&mut out);
        geoalign_exec::Executor::new(8)
            .for_each_indexed(257, |i| {
                // SAFETY: task i writes index i only — trivially disjoint.
                unsafe { writer.write(i, i as f64 + 0.5) };
            })
            .unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 + 0.5));
    }
}
