//! Linear-algebra substrate for the GeoAlign reproduction.
//!
//! The paper's weight-learning step (Eq. 15) is a least-squares problem on
//! the probability simplex; the disaggregation step (Eq. 14) is a weighted
//! combination of sparse disaggregation matrices; re-aggregation (Eq. 17)
//! is a sparse column sum. This crate implements everything from scratch:
//!
//! * [`DMatrix`], [`Cholesky`], [`HouseholderQr`] — dense kernels;
//! * [`CooMatrix`], [`CsrMatrix`] — sparse builders and compute format;
//! * [`nnls()`] — Lawson–Hanson non-negative least squares;
//! * [`simplex_ls`] — two independent solvers for Eq. 15;
//! * [`SolverScratch`] — reusable buffer arena that makes repeated
//!   solves allocation-free on the hot path;
//! * [`stats`] — RMSE/NRMSE, Pearson correlation, quantiles.

#![warn(missing_docs)]

pub mod dense;
pub mod error;
mod kernel;
pub mod nnls;
pub mod scratch;
pub mod simplex_ls;
pub mod sparse;
pub mod stats;

pub use dense::{Cholesky, DMatrix, HouseholderQr};
pub use error::LinalgError;
pub use nnls::{nnls, NnlsSolution};
pub use scratch::SolverScratch;
pub use simplex_ls::{SimplexLsSolution, SimplexSolver};
pub use sparse::{CooMatrix, CsrMatrix};
