//! Non-negative least squares (Lawson–Hanson active set method).
//!
//! Solves `min ||A x - b||²  subject to  x >= 0`. This is the workhorse
//! behind the simplex-constrained weight learning of Eq. 15: the equality
//! constraint is handled by the wrapper in [`crate::simplex_ls`].

use crate::dense::{householder_factor, householder_solve_into, DMatrix};
use crate::error::LinalgError;
use crate::scratch::SolverScratch;

/// Result of an NNLS solve.
#[derive(Debug, Clone)]
pub struct NnlsSolution {
    /// The minimizer, component-wise non-negative.
    pub x: Vec<f64>,
    /// Residual norm `||A x - b||`.
    pub residual_norm: f64,
    /// Outer iterations used.
    pub iterations: usize,
}

/// Solves `min ||A x - b||²` with `x >= 0` by the Lawson–Hanson algorithm.
///
/// `A` is `m × n` with `m >= 1`, `n >= 1`. Terminates in finitely many
/// steps for any full-rank passive subproblem sequence; a generous
/// iteration cap guards degenerate inputs.
pub fn nnls(a: &DMatrix, b: &[f64]) -> Result<NnlsSolution, LinalgError> {
    nnls_scratch(a, b, &mut SolverScratch::new())
}

/// [`nnls`] through a reusable [`SolverScratch`]: identical arithmetic
/// in the identical order — the result is bit-for-bit the same — but a
/// steady-state iteration performs zero heap allocations. The only
/// allocation left is the returned `x`.
pub fn nnls_scratch(
    a: &DMatrix,
    b: &[f64],
    scratch: &mut SolverScratch,
) -> Result<NnlsSolution, LinalgError> {
    let (m, n) = (a.nrows(), a.ncols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls",
            left: (m, n),
            right: (b.len(), 1),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    let iterations = nnls_iterate(a, b, scratch)?;
    // Output allocation: the final iterate.
    let mut x = Vec::with_capacity(n);
    x.extend_from_slice(&scratch.x_nnls);
    let residual_norm = crate::dense::norm2(&scratch.resid);
    Ok(NnlsSolution {
        x,
        residual_norm,
        iterations,
    })
}

/// The Lawson–Hanson loop on preallocated buffers; leaves the final
/// iterate in `s.x_nnls` and the residual in `s.resid`, returning the
/// outer iteration count. Zero heap allocations once the arena has grown
/// to the problem size (enforced by check.sh's hot-loop gate — keep
/// `.clone()`/`to_vec()`/`vec![` out of here).
fn nnls_iterate(a: &DMatrix, b: &[f64], s: &mut SolverScratch) -> Result<usize, LinalgError> {
    let (m, n) = (a.nrows(), a.ncols());
    s.x_nnls.clear();
    s.x_nnls.resize(n, 0.0);
    s.support.clear();
    s.support.resize(n, false); // the passive set
                                // Gradient of ½||Ax−b||² is Aᵀ(Ax−b); w = −gradient = Aᵀ(b−Ax).
    s.resid.clear();
    s.resid.extend_from_slice(b); // b - A x (x = 0 initially)
    let max_iter = 3 * n + 30;
    let mut iterations = 0;

    // Tolerance scaled to the problem.
    let bnorm = crate::dense::norm2(b);
    let tol = f64::EPSILON * (m.max(n) as f64) * bnorm.max(1.0) * a.frobenius_norm().max(1.0);

    loop {
        iterations += 1;
        if iterations > max_iter {
            return Err(LinalgError::DidNotConverge { iterations });
        }
        s.grad.clear();
        s.grad.resize(n, 0.0);
        a.tr_matvec_into(&s.resid, &mut s.grad)?;
        let w = &s.grad;
        // Pick the most violated KKT multiplier among active constraints.
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // lockstep over support + w
        for j in 0..n {
            if !s.support[j] && w[j] > tol {
                match best {
                    Some((_, bw)) if w[j] <= bw => {}
                    _ => best = Some((j, w[j])),
                }
            }
        }
        let Some((enter, _)) = best else {
            break; // KKT satisfied
        };
        s.support[enter] = true;

        // Inner loop: solve the unconstrained LS on the passive set and
        // backtrack while any passive coordinate would go negative.
        loop {
            {
                let (idx, passive) = (&mut s.idx, &s.support);
                idx.clear();
                idx.extend((0..n).filter(|&j| passive[j]));
            }
            s.sub.copy_columns_from(a, &s.idx);
            s.kkt.qr.copy_from(&s.sub);
            householder_factor(&mut s.kkt.qr, &mut s.kkt.tau, &mut s.kkt.v)?;
            s.kkt.y.clear();
            s.kkt.y.extend_from_slice(b);
            s.kkt.sol.clear();
            s.kkt.sol.resize(s.idx.len(), 0.0);
            match householder_solve_into(&s.kkt.qr, &s.kkt.tau, &mut s.kkt.y, &mut s.kkt.sol) {
                Ok(()) => {}
                Err(LinalgError::Singular) => {
                    // The entering column is linearly dependent on the
                    // passive set; drop it and accept the current iterate.
                    s.support[enter] = false;
                    break;
                }
                Err(e) => return Err(e),
            }
            s.zfull.clear();
            s.zfull.resize(n, 0.0);
            for (&j, &v) in s.idx.iter().zip(&s.kkt.sol) {
                s.zfull[j] = v;
            }
            let z = &s.zfull;
            if s.idx.iter().all(|&j| z[j] > 0.0) {
                // The historical loop moved z into x; the double-buffer
                // swap produces the same values with no copy (zfull is
                // fully rebuilt each inner iteration).
                std::mem::swap(&mut s.x_nnls, &mut s.zfull);
                break;
            }
            // Step from x toward z, stopping at the first boundary.
            let mut alpha = f64::INFINITY;
            for &j in &s.idx {
                if z[j] <= 0.0 {
                    let denom = s.x_nnls[j] - z[j];
                    if denom > 0.0 {
                        alpha = alpha.min(s.x_nnls[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for j in 0..n {
                if s.support[j] {
                    s.x_nnls[j] += alpha * (s.zfull[j] - s.x_nnls[j]);
                }
            }
            // Move coordinates that hit zero back to the active set.
            for j in 0..n {
                if s.support[j] && s.x_nnls[j] <= tol.max(f64::EPSILON) {
                    s.x_nnls[j] = 0.0;
                    s.support[j] = false;
                }
            }
            if !s.support.iter().any(|&p| p) {
                break;
            }
        }
        // Refresh the residual.
        s.ax.clear();
        s.ax.resize(m, 0.0);
        a.matvec_into(&s.x_nnls, &mut s.ax)?;
        for (r, (&bi, &axi)) in s.resid.iter_mut().zip(b.iter().zip(&s.ax)) {
            *r = bi - axi;
        }
    }
    Ok(iterations)
}

/// Verifies the KKT conditions of an NNLS solution up to `tol`:
/// `x >= 0`, and `Aᵀ(b − Ax) <= tol` with complementary slackness
/// `x_j > 0 ⇒ |(Aᵀ(b − Ax))_j| <= tol`. Returns the maximum violation.
pub fn kkt_violation(a: &DMatrix, b: &[f64], x: &[f64]) -> Result<f64, LinalgError> {
    let ax = a.matvec(x)?;
    let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let w = a.tr_matvec(&resid)?;
    let mut v: f64 = 0.0;
    for j in 0..x.len() {
        v = v.max(-x[j]); // negativity violation
        if x[j] > 0.0 {
            v = v.max(w[j].abs()); // stationarity on the support
        } else {
            v = v.max(w[j]); // dual feasibility off the support
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: &DMatrix, b: &[f64]) -> Vec<f64> {
        let s = nnls(a, b).unwrap();
        let v = kkt_violation(a, b, &s.x).unwrap();
        let scale = crate::dense::norm2(b).max(1.0) * a.frobenius_norm().max(1.0);
        assert!(v <= 1e-8 * scale, "KKT violation {v}");
        s.x
    }

    #[test]
    fn unconstrained_optimum_inside() {
        // x = [1, 2] solves exactly and is positive.
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve(&a, &b);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn constraint_binds() {
        // Unconstrained optimum has a negative component; NNLS clamps it.
        let a = DMatrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
        let b = vec![0.0, 2.0]; // unconstrained solution x = [1, -1]
        let x = solve(&a, &b);
        assert!(x.iter().all(|&v| v >= 0.0));
        // Optimal constrained solution: minimize (x0+x1)² + (x0−x1−2)²
        // on the boundary x1 = 0 → x0 = 1.
        assert!((x[0] - 1.0).abs() < 1e-10, "{x:?}");
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let x = solve(&a, &[0.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn negative_correlated_rhs_gives_zero() {
        // b in the cone opposite to all columns → x = 0 optimal.
        let a = DMatrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]).unwrap();
        let x = solve(&a, &[-1.0, -1.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn recovers_sparse_nonnegative_combination() {
        // b = 3·col0 + 0·col1 + 2·col2 exactly.
        let a = DMatrix::from_rows(&[
            &[1.0, 0.3, 0.0],
            &[0.0, 0.8, 1.0],
            &[2.0, 0.1, 0.5],
            &[0.5, 0.9, 0.2],
        ])
        .unwrap();
        let x_true = [3.0, 0.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{x:?}");
        }
        let s = nnls(&a, &b).unwrap();
        assert!(s.residual_norm < 1e-10);
    }

    #[test]
    fn duplicate_columns_handled() {
        // Two identical columns: any split is optimal; solver must not loop.
        let a = DMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]).unwrap();
        let b = vec![1.0, 2.0];
        let s = nnls(&a, &b).unwrap();
        assert!(s.residual_norm < 1e-10);
        assert!((s.x[0] + s.x[1] - 1.0).abs() < 1e-8);
        assert!(s.x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn shape_and_validity_errors() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(nnls(&a, &[1.0, 2.0]).is_err()); // b wrong length
        assert!(nnls(&a, &[f64::NAN]).is_err());
        let empty = DMatrix::zeros(0, 0);
        assert!(nnls(&empty, &[]).is_err());
    }

    #[test]
    fn random_problems_satisfy_kkt() {
        let mut state: u64 = 0xDEADBEEF;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..30 {
            let m = 8;
            let n = 4;
            let mut a = DMatrix::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] = next() * 2.0 - 0.5;
                }
            }
            let b: Vec<f64> = (0..m).map(|_| next() * 4.0 - 2.0).collect();
            let _ = solve(&a, &b); // assertion lives inside `solve`
        }
    }
}
