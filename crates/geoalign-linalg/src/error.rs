//! Error types for linear-algebra operations.

use std::fmt;

/// Errors raised by matrix construction, factorization and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or not positive definite for Cholesky).
    Singular,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
    /// A value was NaN or infinite where finiteness is required.
    NonFinite,
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The problem is empty (zero rows or zero columns) where data is
    /// required.
    Empty,
    /// A parallel job failed (a task panicked).
    Exec(geoalign_exec::ExecError),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            LinalgError::NonFinite => write!(f, "non-finite value"),
            LinalgError::DidNotConverge { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
            LinalgError::Empty => write!(f, "empty problem"),
            LinalgError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for LinalgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinalgError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geoalign_exec::ExecError> for LinalgError {
    fn from(e: geoalign_exec::ExecError) -> Self {
        LinalgError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("2x3") && s.contains("4x5"));
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::DidNotConverge { iterations: 10 }
            .to_string()
            .contains("10"));
    }
}
