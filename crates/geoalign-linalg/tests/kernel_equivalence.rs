//! Old-vs-new kernel equivalence: the cache-aware rework (blocked gram,
//! branch-free CSR matvec, scratch-arena solvers) must be **bit-identical**
//! to the kernels it replaced, at every thread count, on every shape —
//! including degenerate ones. The pre-rework kernels are transliterated
//! into [`old`] below from this repository's own history, so the contract
//! is checked against real code, not a description of it.

use geoalign_exec::Executor;
use geoalign_linalg::dense::{axpy, dot, norm2};
use geoalign_linalg::nnls::{nnls, nnls_scratch};
use geoalign_linalg::simplex_ls::{
    self, project_to_simplex, solve_gram, solve_gram_scratch, GramSystem, SimplexSolver,
};
use geoalign_linalg::{CooMatrix, CsrMatrix, DMatrix, LinalgError, SolverScratch};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn dense(rows: usize, cols: usize, state: &mut u64) -> DMatrix {
    let mut m = DMatrix::zeros(rows, cols);
    for j in 0..cols {
        for v in m.column_mut(j) {
            *v = lcg(state) * 2.0 - 1.0;
        }
    }
    m
}

fn sparse(rows: usize, cols: usize, density: f64, state: &mut u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if lcg(state) < density {
                coo.push(i, j, lcg(state) * 10.0 - 5.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

/// The pre-rework kernels, transliterated verbatim (same expressions,
/// same evaluation order) from the commit the rework replaced.
mod old {
    use super::*;

    /// Old `DMatrix::gram_with`: per-task upper-triangle `Vec`s gathered
    /// into the output matrix afterwards. Also the "naive" reference the
    /// blocked kernel is compared against: one `dot` per (i, j) pair.
    pub fn gram_with(a: &DMatrix, exec: Executor) -> Result<DMatrix, LinalgError> {
        let k = a.ncols();
        let upper = exec.map_indexed(k, |i| {
            (i..k)
                .map(|j| dot(a.column(i), a.column(j)))
                .collect::<Vec<f64>>()
        })?;
        let mut g = DMatrix::zeros(k, k);
        for (i, row) in upper.into_iter().enumerate() {
            for (off, v) in row.into_iter().enumerate() {
                let j = i + off;
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        Ok(g)
    }

    /// Old `CsrMatrix::matvec_with`: materialized chunk ranges, one
    /// partial-result `Vec` per chunk, gathered by a final copy.
    pub fn matvec_with(m: &CsrMatrix, x: &[f64], exec: Executor) -> Result<Vec<f64>, LinalgError> {
        let ranges: Vec<_> = Executor::chunk_ranges(m.nrows()).collect();
        let per_chunk = exec.run_tasks(ranges.len(), |t| {
            ranges[t]
                .clone()
                .map(|i| {
                    let (cols, vals) = m.row(i);
                    cols.iter()
                        .zip(vals)
                        .map(|(&j, &v)| v * x[j as usize])
                        .sum()
                })
                .collect::<Vec<f64>>()
        })?;
        let mut y = Vec::with_capacity(m.nrows());
        for chunk in per_chunk {
            y.extend(chunk);
        }
        Ok(y)
    }

    fn objective(gs: &GramSystem, beta: &[f64], atb: &[f64], btb: f64) -> Result<f64, LinalgError> {
        let gb = gs.gram().matvec(beta)?;
        Ok(0.5 * dot(beta, &gb) - dot(beta, atb) + 0.5 * btb)
    }

    fn gradient(gs: &GramSystem, beta: &[f64], atb: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut g = gs.gram().matvec(beta)?;
        for (gi, ci) in g.iter_mut().zip(atb) {
            *gi -= ci;
        }
        Ok(g)
    }

    /// Old FISTA loop: fresh `grad`/`z`/`x_next`/`diff` allocations and
    /// two clones per iteration.
    pub fn solve_projected_gradient_gram(
        gs: &GramSystem,
        atb: &[f64],
        btb: f64,
        max_iter: usize,
        tol: f64,
    ) -> Result<(Vec<f64>, f64, usize), LinalgError> {
        let n = gs.n();
        let g = gs.gram();
        let mut lmax = 0.0f64;
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                row_sum += g[(i, j)].abs();
            }
            lmax = lmax.max(row_sum);
        }
        let step = 1.0 / lmax.max(f64::MIN_POSITIVE);

        let mut x = vec![1.0 / n as f64; n];
        let mut y = x.clone();
        let mut t = 1.0f64;
        let mut iterations = 0;
        let scale = btb.sqrt().max(1.0);
        let mut best = x.clone();
        let mut best_obj = objective(gs, &x, atb, btb)?;
        let mut prev_obj = best_obj;
        for _ in 0..max_iter {
            iterations += 1;
            let grad = gradient(gs, &y, atb)?;
            let mut z: Vec<f64> = y.clone();
            axpy(-step, &grad, &mut z);
            let x_next = project_to_simplex(&z);
            let obj = objective(gs, &x_next, atb, btb)?;
            if obj < best_obj {
                best_obj = obj;
                best.clone_from(&x_next);
            }
            let restart = obj > prev_obj;
            prev_obj = obj;
            let t_next = if restart {
                1.0
            } else {
                0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt())
            };
            let momentum = if restart { 0.0 } else { (t - 1.0) / t_next };
            let diff: Vec<f64> = x_next.iter().zip(&x).map(|(p, q)| p - q).collect();
            let delta = norm2(&diff);
            y = x_next.clone();
            axpy(momentum, &diff, &mut y);
            x = x_next;
            t = t_next;
            if delta <= tol * scale {
                break;
            }
        }
        let beta = project_to_simplex(&best);
        let objective = objective(gs, &beta, atb, btb)?;
        Ok((beta, objective, iterations))
    }
}

/// A pseudo-random simplex-LS problem: (design, atb, btb).
fn random_problem(m: usize, k: usize, state: &mut u64) -> (DMatrix, Vec<f64>, f64) {
    let a = dense(m, k, state);
    let b: Vec<f64> = (0..m).map(|_| lcg(state) * 4.0 - 1.0).collect();
    let atb = a.tr_matvec(&b).unwrap();
    let btb = dot(&b, &b);
    (a, atb, btb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked/tiled gram == naive per-pair gram, bitwise, on random
    /// shapes, at 1, 2 and 8 threads.
    #[test]
    fn tiled_gram_matches_naive_gram_bitwise(
        rows in 0usize..80,
        cols in 0usize..13,
        seed in 0u64..u64::MAX,
    ) {
        let mut state = seed;
        let a = dense(rows, cols, &mut state);
        let reference = old::gram_with(&a, Executor::sequential()).unwrap();
        let new_seq = a.gram_with(Executor::sequential()).unwrap();
        prop_assert_eq!(new_seq.nrows(), cols);
        for j in 0..cols {
            prop_assert_eq!(bits(reference.column(j)), bits(new_seq.column(j)));
        }
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            let old_par = old::gram_with(&a, exec).unwrap();
            let new_par = a.gram_with(exec).unwrap();
            for j in 0..cols {
                prop_assert_eq!(bits(old_par.column(j)), bits(reference.column(j)));
                prop_assert_eq!(bits(new_par.column(j)), bits(reference.column(j)));
            }
        }
    }

    /// Branch-free CSR matvec == the chunk-gather reference, bitwise, on
    /// random shapes and sparsities, at 1, 2 and 8 threads.
    #[test]
    fn branch_free_matvec_matches_reference_bitwise(
        rows in 0usize..90,
        cols in 1usize..25,
        density in 0.0f64..0.9,
        seed in 0u64..u64::MAX,
    ) {
        let mut state = seed;
        let m = sparse(rows, cols, density, &mut state);
        let x: Vec<f64> = (0..cols).map(|_| lcg(&mut state) * 2.0 - 1.0).collect();
        let reference = old::matvec_with(&m, &x, Executor::sequential()).unwrap();
        prop_assert_eq!(bits(&reference), bits(&m.matvec_with(&x, Executor::sequential()).unwrap()));
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            prop_assert_eq!(bits(&reference), bits(&old::matvec_with(&m, &x, exec).unwrap()));
            prop_assert_eq!(bits(&reference), bits(&m.matvec_with(&x, exec).unwrap()));
        }
    }
}

/// The scratch-arena FISTA is bit-identical to the historical allocating
/// loop on a spread of random problems — same iterates, same restart
/// decisions, same iteration counts.
#[test]
fn fista_scratch_matches_old_fista_bitwise() {
    let mut state = 0xabcdef;
    let mut scratch = SolverScratch::new();
    for trial in 0..25 {
        let (m, k) = (3 + trial % 17, 1 + trial % 7);
        let (a, atb, btb) = random_problem(m, k, &mut state);
        let gs = GramSystem::new(&a).unwrap();
        let (old_beta, old_obj, old_iters) =
            old::solve_projected_gradient_gram(&gs, &atb, btb, 2000, 1e-12).unwrap();
        // The SAME arena is reused across all trials: results must not
        // depend on what a previous solve left in the buffers.
        let new = simplex_ls::solve_projected_gradient_gram_scratch(
            &gs,
            &atb,
            btb,
            2000,
            1e-12,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(bits(&old_beta), bits(&new.beta), "trial {trial}");
        assert_eq!(old_obj.to_bits(), new.objective.to_bits(), "trial {trial}");
        assert_eq!(old_iters, new.iterations, "trial {trial}");
    }
}

/// Both public solvers give bitwise-identical output through a fresh
/// arena, a dirty reused arena, and the no-scratch entry point.
#[test]
fn solvers_are_scratch_reuse_invariant() {
    let mut state = 0x5eedbead;
    let mut reused = SolverScratch::new();
    for trial in 0..20 {
        let (m, k) = (4 + trial % 13, 1 + (trial * 3) % 6);
        let (a, atb, btb) = random_problem(m, k, &mut state);
        let gs = GramSystem::new(&a).unwrap();
        for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
            let plain = solve_gram(&gs, &atb, btb, solver).unwrap();
            let fresh =
                solve_gram_scratch(&gs, &atb, btb, solver, &mut SolverScratch::new()).unwrap();
            let dirty = solve_gram_scratch(&gs, &atb, btb, solver, &mut reused).unwrap();
            assert_eq!(
                bits(&plain.beta),
                bits(&fresh.beta),
                "{solver:?} trial {trial}"
            );
            assert_eq!(
                bits(&plain.beta),
                bits(&dirty.beta),
                "{solver:?} trial {trial}"
            );
            assert_eq!(plain.objective.to_bits(), dirty.objective.to_bits());
            assert_eq!(plain.iterations, dirty.iterations);
        }
    }
}

/// NNLS through a dirty reused arena matches the no-scratch entry point
/// bitwise, problem after problem.
#[test]
fn nnls_is_scratch_reuse_invariant() {
    let mut state = 0x77aa;
    let mut reused = SolverScratch::new();
    for trial in 0..20 {
        let (m, n) = (3 + trial % 11, 1 + trial % 5);
        let a = dense(m, n, &mut state);
        let b: Vec<f64> = (0..m).map(|_| lcg(&mut state) * 3.0).collect();
        let plain = nnls(&a, &b).unwrap();
        let dirty = nnls_scratch(&a, &b, &mut reused).unwrap();
        assert_eq!(bits(&plain.x), bits(&dirty.x), "trial {trial}");
        assert_eq!(
            plain.residual_norm.to_bits(),
            dirty.residual_norm.to_bits(),
            "trial {trial}"
        );
        assert_eq!(plain.iterations, dirty.iterations, "trial {trial}");
    }
}

// --- Degenerate-shape audit -----------------------------------------------

#[test]
fn degenerate_gram_shapes() {
    // 0×0 and n×0 grams are empty matrices, not panics, at every thread
    // count — and the old kernel agreed.
    for (rows, cols) in [(0usize, 0usize), (5, 0), (0, 3)] {
        let a = DMatrix::zeros(rows, cols);
        let g = a.gram_with(Executor::sequential()).unwrap();
        assert_eq!((g.nrows(), g.ncols()), (cols, cols));
        for threads in THREAD_COUNTS {
            let gp = a.gram_with(Executor::new(threads)).unwrap();
            assert_eq!((gp.nrows(), gp.ncols()), (cols, cols));
            for j in 0..cols {
                assert_eq!(bits(g.column(j)), bits(gp.column(j)));
            }
        }
        let old_g = old::gram_with(&a, Executor::sequential()).unwrap();
        assert_eq!((old_g.nrows(), old_g.ncols()), (cols, cols));
    }
}

#[test]
fn degenerate_csr_matvec_shapes() {
    // A 0-row matrix maps to the empty vector.
    let empty = CooMatrix::new(0, 4).to_csr();
    let x = [1.0, 2.0, 3.0, 4.0];
    for threads in [1usize, 2, 8] {
        let exec = if threads == 1 {
            Executor::sequential()
        } else {
            Executor::new(threads)
        };
        assert!(empty.matvec_with(&x, exec).unwrap().is_empty());
    }
    // Rows with no stored entries produce -0.0 (the empty `.sum()`, the
    // additive identity — numerically zero), interleaved with occupied
    // rows, exactly as the old per-row-sum kernel did.
    let mut coo = CooMatrix::new(5, 3);
    coo.push(1, 2, 2.5).unwrap();
    coo.push(3, 0, -1.0).unwrap();
    let m = coo.to_csr();
    let y = m.matvec(&[2.0, 0.0, 4.0]).unwrap();
    assert_eq!(bits(&y), bits(&[-0.0, 10.0, -0.0, -2.0, -0.0]));
    assert_eq!(
        bits(&y),
        bits(&old::matvec_with(&m, &[2.0, 0.0, 4.0], Executor::sequential()).unwrap())
    );
    // Shape mismatches stay errors (not panics) through the new path.
    assert!(matches!(
        m.matvec(&[1.0]),
        Err(LinalgError::ShapeMismatch { .. })
    ));
}

#[test]
fn degenerate_solver_shapes() {
    // k = 0 problems are rejected at Gram construction — the solvers can
    // never see an empty simplex (whose projection is undefined).
    assert!(matches!(
        GramSystem::new(&DMatrix::zeros(5, 0)),
        Err(LinalgError::Empty)
    ));
    assert!(matches!(
        GramSystem::new(&DMatrix::zeros(0, 0)),
        Err(LinalgError::Empty)
    ));
    assert!(matches!(
        simplex_ls::solve(&DMatrix::zeros(4, 0), &[], SimplexSolver::ActiveSet),
        Err(LinalgError::Empty)
    ));
    // Same for NNLS, through both entry points.
    assert!(matches!(
        nnls(&DMatrix::zeros(0, 3), &[]),
        Err(LinalgError::Empty)
    ));
    assert!(matches!(
        nnls_scratch(&DMatrix::zeros(3, 0), &[1.0; 3], &mut SolverScratch::new()),
        Err(LinalgError::Empty)
    ));
    // k = 1 collapses to β = [1] exactly, through a dirty arena too.
    let mut state = 0x31;
    let a = dense(6, 1, &mut state);
    let b: Vec<f64> = (0..6).map(|_| lcg(&mut state)).collect();
    let gs = GramSystem::new(&a).unwrap();
    let atb = a.tr_matvec(&b).unwrap();
    let mut scratch = SolverScratch::new();
    for solver in [SimplexSolver::ProjectedGradient, SimplexSolver::ActiveSet] {
        let sol = solve_gram_scratch(&gs, &atb, dot(&b, &b), solver, &mut scratch).unwrap();
        assert_eq!(sol.beta.len(), 1);
        assert!((sol.beta[0] - 1.0).abs() < 1e-12, "{solver:?}");
    }
}
