//! Property-based tests of the linear-algebra invariants.

use geoalign_linalg::dense::DMatrix;
use geoalign_linalg::nnls::{kkt_violation, nnls};
use geoalign_linalg::simplex_ls::{project_to_simplex, solve, SimplexSolver};
use geoalign_linalg::sparse::CooMatrix;
use geoalign_linalg::stats;
use proptest::prelude::*;

fn matrix_from(vals: &[f64], m: usize, n: usize) -> DMatrix {
    let cols: Vec<Vec<f64>> = (0..n).map(|j| vals[j * m..(j + 1) * m].to_vec()).collect();
    DMatrix::from_columns(&cols).unwrap()
}

proptest! {
    #[test]
    fn simplex_projection_is_feasible_and_idempotent(
        v in prop::collection::vec(-10.0..10.0f64, 1..12)
    ) {
        let p = project_to_simplex(&v);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        let s: f64 = p.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        let pp = project_to_simplex(&p);
        for (a, b) in p.iter().zip(&pp) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_is_closest_feasible_point(
        pairs in prop::collection::vec((-5.0..5.0f64, 0.0..1.0f64), 2..8)
    ) {
        let (v, trial): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let p = project_to_simplex(&v);
        // Any other feasible point is no closer to v.
        let t = project_to_simplex(&trial);
        let d = |a: &[f64]| -> f64 {
            a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        prop_assert!(d(&p) <= d(&t) + 1e-9);
    }

    #[test]
    fn nnls_satisfies_kkt(
        vals in prop::collection::vec(-2.0..2.0f64, 24),
        b in prop::collection::vec(-3.0..3.0f64, 6)
    ) {
        let a = matrix_from(&vals, 6, 4);
        let sol = nnls(&a, &b).unwrap();
        prop_assert!(sol.x.iter().all(|&x| x >= 0.0));
        let viol = kkt_violation(&a, &b, &sol.x).unwrap();
        let scale = stats::mean(&b).abs().max(1.0) * 100.0;
        prop_assert!(viol < 1e-6 * scale, "KKT violation {viol}");
    }

    #[test]
    fn simplex_solvers_agree(
        vals in prop::collection::vec(0.0..2.0f64, 30),
        b in prop::collection::vec(0.0..3.0f64, 10)
    ) {
        let a = matrix_from(&vals, 10, 3);
        let pg = solve(&a, &b, SimplexSolver::ProjectedGradient).unwrap();
        let act = solve(&a, &b, SimplexSolver::ActiveSet).unwrap();
        for beta in [&pg.beta, &act.beta] {
            prop_assert!(beta.iter().all(|&x| x >= -1e-12));
            let s: f64 = beta.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
        // The active-set solver is exact; FISTA is first-order and may
        // stop within a small relative gap of the optimum on flat valleys.
        // Agreement within a 0.1% relative gap (and the right direction:
        // the exact solver can only be better) validates both.
        prop_assert!(
            pg.objective >= act.objective - 1e-7 * (act.objective.abs() + 1.0),
            "exact solver worse than first-order: {} vs {}", act.objective, pg.objective
        );
        prop_assert!(
            pg.objective - act.objective <= 1e-3 * (act.objective.abs() + 1.0),
            "objectives {} vs {}", pg.objective, act.objective
        );
    }

    #[test]
    fn csr_roundtrip_and_marginals(
        entries in prop::collection::vec((0usize..8, 0usize..6, 0.0..10.0f64), 0..50)
    ) {
        let mut coo = CooMatrix::new(8, 6);
        let mut dense = vec![vec![0.0f64; 6]; 8];
        for &(i, j, v) in &entries {
            coo.push(i, j, v).unwrap();
            dense[i][j] += v;
        }
        let csr = coo.to_csr();
        // Values round-trip.
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                prop_assert!((csr.get(i, j) - v).abs() < 1e-12);
            }
        }
        // Marginals agree with the dense accumulation.
        let rows = csr.row_sums();
        for (i, row) in dense.iter().enumerate() {
            prop_assert!((rows[i] - row.iter().sum::<f64>()).abs() < 1e-9);
        }
        let cols = csr.col_sums();
        for j in 0..6 {
            let expect: f64 = dense.iter().map(|r| r[j]).sum();
            prop_assert!((cols[j] - expect).abs() < 1e-9);
        }
        // Transpose is an involution.
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        vals in prop::collection::vec(-3.0..3.0f64, 21),
        b in prop::collection::vec(-5.0..5.0f64, 7)
    ) {
        let a = matrix_from(&vals, 7, 3);
        let qr = match geoalign_linalg::HouseholderQr::new(&a) {
            Ok(qr) => qr,
            Err(_) => return Ok(()),
        };
        let x = match qr.solve(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()), // numerically rank-deficient sample
        };
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        let atr = a.tr_matvec(&r).unwrap();
        let scale = a.frobenius_norm() * (1.0 + stats::mean(&b).abs()) * 100.0;
        for v in atr {
            prop_assert!(v.abs() < 1e-7 * scale.max(1.0), "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone(xs in prop::collection::vec(-100.0..100.0f64, 1..30)) {
        let f = stats::five_number(&xs).unwrap();
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median);
        prop_assert!(f.median <= f.q3 && f.q3 <= f.max);
        // Pearson of a series with itself is 1 (when non-constant).
        if stats::variance(&xs) > 1e-9 {
            let r = stats::pearson(&xs, &xs).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }
}
