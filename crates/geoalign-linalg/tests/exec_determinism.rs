//! Thread-count invariance of the parallel linear-algebra paths: Gram
//! assembly and CSR mat-vec must be bit-identical at 1, 2 and 8 threads
//! (DESIGN.md §9), including empty and single-row inputs.

use geoalign_exec::Executor;
use geoalign_linalg::{CooMatrix, DMatrix};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn dense(rows: usize, cols: usize, seed: u64) -> DMatrix {
    let mut state = seed;
    let mut m = DMatrix::zeros(rows, cols);
    for j in 0..cols {
        for v in m.column_mut(j) {
            *v = lcg(&mut state) * 2.0 - 1.0;
        }
    }
    m
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn gram_assembly_is_thread_count_invariant() {
    for (rows, cols, seed) in [(40, 9, 0xabc), (7, 3, 0x123), (1, 1, 0x9), (5, 0, 0x77)] {
        let a = dense(rows, cols, seed);
        let reference = a.gram_with(Executor::sequential()).unwrap();
        assert_eq!(reference.nrows(), cols);
        for threads in THREAD_COUNTS {
            let parallel = a.gram_with(Executor::new(threads)).unwrap();
            for j in 0..cols {
                assert_eq!(
                    bits(reference.column(j)),
                    bits(parallel.column(j)),
                    "gram {rows}x{cols} column {j} differs at {threads} threads"
                );
            }
        }
        // The default entry point must agree with the explicit executor.
        let implicit = a.gram();
        for j in 0..cols {
            assert_eq!(bits(reference.column(j)), bits(implicit.column(j)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_matvec_is_thread_count_invariant(
        rows in 0usize..70,
        cols in 1usize..20,
        seed in 0u64..u64::MAX,
        density in 0.05f64..0.9,
    ) {
        let mut state = seed;
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if lcg(&mut state) < density {
                    coo.push(i, j, lcg(&mut state) * 10.0 - 5.0).unwrap();
                }
            }
        }
        let m = coo.to_csr();
        let x: Vec<f64> = (0..cols).map(|_| lcg(&mut state) * 2.0 - 1.0).collect();
        let reference = m.matvec_with(&x, Executor::sequential()).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = m.matvec_with(&x, Executor::new(threads)).unwrap();
            prop_assert_eq!(bits(&reference), bits(&parallel));
        }
        // The default entry point routes through the same chunking.
        prop_assert_eq!(bits(&reference), bits(&m.matvec(&x).unwrap()));
    }
}

#[test]
fn csr_matvec_shape_errors_surface_at_any_thread_count() {
    let mut coo = CooMatrix::new(3, 2);
    coo.push(0, 0, 1.0).unwrap();
    let m = coo.to_csr();
    for threads in THREAD_COUNTS {
        assert!(m.matvec_with(&[1.0], Executor::new(threads)).is_err());
    }
}
