//! End-to-end observability tests over a real TCP socket: trace-ID
//! propagation, the JSON-lines access log, and the Prometheus exposition,
//! exercised the way an operator would see them.

use geoalign_core::{IntegrationPipeline, ReferenceData};
use geoalign_partition::DisaggregationMatrix;
use geoalign_serve::{AppState, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back: the access log goes here
/// instead of a file.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn populated_state() -> Arc<AppState> {
    let mut pipeline = IntegrationPipeline::new();
    pipeline.register_system("zip", ["z1", "z2", "z3"]);
    pipeline.register_system("county", ["A", "B"]);
    let dm = DisaggregationMatrix::from_triples(
        "population",
        3,
        2,
        [(0, 0, 100.0), (1, 0, 60.0), (1, 1, 40.0), (2, 1, 80.0)],
    )
    .unwrap();
    pipeline
        .register_reference(
            "zip",
            "county",
            ReferenceData::from_dm("population", dm).unwrap(),
        )
        .unwrap();
    AppState::with_pipeline(pipeline, 8)
}

fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

const CROSSWALK_BODY: &str =
    r#"{"source":"zip","target":"county","attributes":[{"name":"steam","values":[10,20,30]}]}"#;

fn crosswalk_request(extra_headers: &str) -> String {
    format!(
        "POST /crosswalk HTTP/1.1\r\nHost: x\r\nConnection: close\r\n{extra_headers}Content-Length: {}\r\n\r\n{}",
        CROSSWALK_BODY.len(),
        CROSSWALK_BODY
    )
}

#[test]
fn trace_id_round_trips_and_lands_in_the_access_log() {
    let state = populated_state();
    let log = SharedBuf::default();
    state.set_access_log(Box::new(log.clone()));
    assert!(state.access_log_enabled());
    let server = Server::bind_with_state("127.0.0.1:0", ServerConfig::default(), state).unwrap();
    let addr = server.addr();

    let reply = send(addr, &crosswalk_request("X-Trace-Id: cafe0123deadbeef\r\n"));
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    // The caller's trace ID is echoed, not replaced.
    assert!(
        reply.contains("\r\nX-Trace-Id: cafe0123deadbeef\r\n"),
        "{reply}"
    );

    // A request without the header gets a generated 16-hex ID.
    let reply2 = send(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    let generated = reply2
        .lines()
        .find_map(|l| l.strip_prefix("X-Trace-Id: "))
        .expect("generated trace id header")
        .trim()
        .to_owned();
    assert_eq!(generated.len(), 16, "{generated}");
    assert!(generated.chars().all(|c| c.is_ascii_hexdigit()));

    server.shutdown();

    let text = log.contents();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");

    // The /crosswalk line carries the caller's ID, the request line, and
    // the per-phase spans collected while routing.
    let crosswalk_line = lines[0];
    assert!(
        crosswalk_line.contains(r#""trace_id":"cafe0123deadbeef""#),
        "{crosswalk_line}"
    );
    assert!(crosswalk_line.contains(r#""method":"POST""#));
    assert!(crosswalk_line.contains(r#""path":"/crosswalk""#));
    assert!(crosswalk_line.contains(r#""status":200"#));
    // The serve path fuses disaggregation and re-aggregation into one
    // pass, so those are the four spans a cold /crosswalk finishes.
    for span in ["prepare", "weight_learning", "disaggregation", "apply"] {
        assert!(
            crosswalk_line.contains(&format!(r#""name":"{span}""#)),
            "missing span {span} in {crosswalk_line}"
        );
    }

    // The /healthz line carries the generated ID and no solver spans.
    let healthz_line = lines[1];
    assert!(
        healthz_line.contains(&format!(r#""trace_id":"{generated}""#)),
        "{healthz_line}"
    );
    assert!(healthz_line.contains(r#""path":"/healthz""#));
    assert!(healthz_line.contains(r#""spans":[]"#), "{healthz_line}");
}

#[test]
fn ingest_and_checkpoint_trace_ids_land_in_the_access_log() {
    let dir = std::env::temp_dir().join(format!("geoalign-serve-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state = AppState::open_durable(&dir, 8).unwrap();
    let log = SharedBuf::default();
    state.set_access_log(Box::new(log.clone()));
    let server = Server::bind_with_state("127.0.0.1:0", ServerConfig::default(), state).unwrap();
    let addr = server.addr();

    for body in [
        r#"{"name":"zip","units":["z1","z2","z3"]}"#,
        r#"{"name":"county","units":["A","B"]}"#,
    ] {
        let reply = send(
            addr,
            &format!(
                "POST /systems HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    }

    // /ingest with a caller-supplied trace ID: echoed, not replaced.
    let ingest_body = r#"{"source":"zip","target":"county","attribute":"footfall",
        "points":[["z1","A",2],["z2","B",1.5],["z3","B",4]]}"#;
    let reply = send(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: x\r\nConnection: close\r\nX-Trace-Id: 1234abcd1234abcd\r\nContent-Length: {}\r\n\r\n{ingest_body}",
            ingest_body.len()
        ),
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    assert!(
        reply.contains("\r\nX-Trace-Id: 1234abcd1234abcd\r\n"),
        "{reply}"
    );

    // /checkpoint without the header gets a generated 16-hex ID.
    let reply = send(
        addr,
        "POST /checkpoint HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    let checkpoint_trace = reply
        .lines()
        .find_map(|l| l.strip_prefix("X-Trace-Id: "))
        .expect("generated trace id header")
        .trim()
        .to_owned();
    assert_eq!(checkpoint_trace.len(), 16, "{checkpoint_trace}");
    assert!(checkpoint_trace.chars().all(|c| c.is_ascii_hexdigit()));

    server.shutdown();

    let text = log.contents();
    let ingest_line = text
        .lines()
        .find(|l| l.contains(r#""path":"/ingest""#))
        .expect("ingest access-log line");
    assert!(
        ingest_line.contains(r#""trace_id":"1234abcd1234abcd""#),
        "{ingest_line}"
    );
    assert!(ingest_line.contains(r#""method":"POST""#));
    assert!(ingest_line.contains(r#""status":200"#));
    // Every line now carries the request's resource accounting.
    assert!(ingest_line.contains(r#""cost""#), "{ingest_line}");

    let checkpoint_line = text
        .lines()
        .find(|l| l.contains(r#""path":"/checkpoint""#))
        .expect("checkpoint access-log line");
    assert!(
        checkpoint_line.contains(&format!(r#""trace_id":"{checkpoint_trace}""#)),
        "{checkpoint_line}"
    );
    assert!(checkpoint_line.contains(r#""status":200"#));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prometheus_exposition_is_served_over_tcp() {
    let state = populated_state();
    let server = Server::bind_with_state("127.0.0.1:0", ServerConfig::default(), state).unwrap();
    let addr = server.addr();

    assert!(send(addr, &crosswalk_request("")).starts_with("HTTP/1.1 200 OK"));

    // Two /ingest batches: the first registers the streaming reference,
    // the second folds into it (a state merge).
    for _ in 0..2 {
        let body = r#"{"source":"zip","target":"county","attribute":"footfall",
            "points":[["z1","A",2],["z2","B",1.5],["z3","B",4]]}"#;
        let reply = send(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    }

    let metrics = send(
        addr,
        "GET /metrics?format=prometheus HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE geoalign_serve_requests_total counter"));
    assert!(metrics.contains("geoalign_serve_request_latency_micros_count"));
    assert!(metrics.contains("geoalign_serve_cache_misses_total 1"));
    // The ingest batch-size histogram: two batches of three points each.
    assert!(
        metrics.contains("# TYPE geoalign_serve_ingest_batch_points histogram"),
        "{metrics}"
    );
    assert!(metrics.contains("geoalign_serve_ingest_batch_points_count 2"));
    assert!(metrics.contains("geoalign_serve_ingest_batch_points_sum 6"));
    assert!(metrics.contains("geoalign_serve_ingest_touched_rows_total"));
    // The second batch merged into the first's state; the aggregate
    // crate's merge counter rides in via the process-global registry.
    assert!(metrics.contains("geoalign_agg_merge_total"), "{metrics}");

    server.shutdown();
}
