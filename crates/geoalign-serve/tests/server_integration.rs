//! End-to-end test over a real TCP socket: register two unit systems and
//! two references through the HTTP API, crosswalk a batch of eight
//! attribute vectors in one request, and check the served numbers against
//! an in-process `IntegrationPipeline::join` on the same data.

use geoalign_core::{IntegrationPipeline, ReferenceData};
use geoalign_partition::{AggregateTable, DisaggregationMatrix};
use geoalign_serve::{Json, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const ZIPS: [&str; 4] = ["z1", "z2", "z3", "z4"];
const COUNTIES: [&str; 3] = ["A", "B", "C"];

/// (source, target, value) crosswalk entries for the two references.
const POPULATION: [(&str, &str, f64); 6] = [
    ("z1", "A", 120.0),
    ("z1", "B", 40.0),
    ("z2", "B", 75.0),
    ("z3", "B", 10.0),
    ("z3", "C", 90.0),
    ("z4", "C", 55.0),
];
const HOUSEHOLDS: [(&str, &str, f64); 6] = [
    ("z1", "A", 50.0),
    ("z2", "A", 5.0),
    ("z2", "B", 30.0),
    ("z3", "C", 42.0),
    ("z4", "B", 8.0),
    ("z4", "C", 12.0),
];

/// Eight attribute batches over the four zips.
const ATTRIBUTES: [(&str, [f64; 4]); 8] = [
    ("crimes", [16.0, 7.5, 10.0, 5.5]),
    ("steam", [1.0, 2.0, 3.0, 4.0]),
    ("permits", [0.0, 12.0, 0.0, 9.0]),
    ("outages", [5.0, 5.0, 5.0, 5.0]),
    ("complaints", [100.0, 0.0, 0.0, 1.0]),
    ("inspections", [3.25, 8.5, 0.75, 2.0]),
    ("licenses", [40.0, 41.0, 42.0, 43.0]),
    ("spills", [0.5, 0.25, 0.125, 0.0625]),
];

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw}"));
    let json_body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let doc = geoalign_serve::json::parse(json_body)
        .unwrap_or_else(|e| panic!("bad JSON body ({e}): {json_body}"));
    (status, doc)
}

fn entries_json(entries: &[(&str, &str, f64)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(s, t, v)| format!(r#"["{s}","{t}",{v}]"#))
        .collect();
    format!("[{}]", items.join(","))
}

fn reference_data(name: &str, entries: &[(&str, &str, f64)]) -> ReferenceData {
    let zi = |id: &str| ZIPS.iter().position(|z| *z == id).unwrap();
    let ci = |id: &str| COUNTIES.iter().position(|c| *c == id).unwrap();
    let triples: Vec<(usize, usize, f64)> =
        entries.iter().map(|(s, t, v)| (zi(s), ci(t), *v)).collect();
    let dm = DisaggregationMatrix::from_triples(name, ZIPS.len(), COUNTIES.len(), triples).unwrap();
    ReferenceData::from_dm(name, dm).unwrap()
}

/// The same world built in-process, realigned with the library pipeline.
fn expected_columns() -> Vec<(String, Vec<f64>)> {
    let mut pipeline = IntegrationPipeline::new();
    pipeline.register_system("zip", ZIPS);
    pipeline.register_system("county", COUNTIES);
    pipeline
        .register_reference("zip", "county", reference_data("population", &POPULATION))
        .unwrap();
    pipeline
        .register_reference("zip", "county", reference_data("households", &HOUSEHOLDS))
        .unwrap();

    let tables: Vec<AggregateTable> = ATTRIBUTES
        .iter()
        .map(|(name, values)| {
            let mut csv = format!("zip,{name}\n");
            for (z, v) in ZIPS.iter().zip(values) {
                csv.push_str(&format!("{z},{v}\n"));
            }
            AggregateTable::parse_csv(&csv).unwrap()
        })
        .collect();
    let with_system: Vec<(&str, &AggregateTable)> = tables.iter().map(|t| ("zip", t)).collect();
    let joined = pipeline.join(&with_system, "county").unwrap();
    joined
        .columns
        .into_iter()
        .map(|c| (c.attribute, c.values))
        .collect()
}

#[test]
fn batch_crosswalk_over_tcp_matches_in_process_join() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Register the world over HTTP.
    let (status, _) = http_post(
        addr,
        "/systems",
        r#"{"name":"zip","units":["z1","z2","z3","z4"]}"#,
    );
    assert_eq!(status, 200);
    let (status, _) = http_post(
        addr,
        "/systems",
        r#"{"name":"county","units":["A","B","C"]}"#,
    );
    assert_eq!(status, 200);
    for (name, entries) in [
        ("population", &POPULATION[..]),
        ("households", &HOUSEHOLDS[..]),
    ] {
        let body = format!(
            r#"{{"source":"zip","target":"county","name":"{name}","entries":{}}}"#,
            entries_json(entries)
        );
        let (status, doc) = http_post(addr, "/references", &body);
        assert_eq!(status, 200, "{doc:?}");
    }

    // One batch request carrying all eight attributes.
    let attrs: Vec<String> = ATTRIBUTES
        .iter()
        .map(|(name, values)| {
            let vals: Vec<String> = values.iter().map(f64::to_string).collect();
            format!(r#"{{"name":"{name}","values":[{}]}}"#, vals.join(","))
        })
        .collect();
    let body = format!(
        r#"{{"source":"zip","target":"county","attributes":[{}]}}"#,
        attrs.join(",")
    );
    let (status, doc) = http_post(addr, "/crosswalk", &body);
    assert_eq!(status, 200, "{doc:?}");

    // Served values match the in-process pipeline join to 1e-9.
    let units = doc.get("target_units").unwrap().as_array().unwrap();
    let unit_ids: Vec<&str> = units.iter().map(|u| u.as_str().unwrap()).collect();
    assert_eq!(unit_ids, COUNTIES);
    let columns = doc.get("columns").unwrap().as_array().unwrap();
    let expected = expected_columns();
    assert_eq!(columns.len(), expected.len());
    for (col, (want_name, want_values)) in columns.iter().zip(&expected) {
        assert_eq!(col.get("name").unwrap().as_str(), Some(want_name.as_str()));
        let got = col.get("values").unwrap().as_array().unwrap();
        assert_eq!(got.len(), want_values.len());
        for (g, w) in got.iter().zip(want_values) {
            let g = g.as_f64().unwrap();
            assert!(
                (g - w).abs() <= 1e-9,
                "{want_name}: served {g} vs in-process {w}"
            );
        }
        let weights = col.get("weights").unwrap().as_array().unwrap();
        assert_eq!(weights.len(), 2);
        let wsum: f64 = weights.iter().map(|w| w.as_f64().unwrap()).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }

    // The batch shares one snapshot: a second identical batch is a
    // cache hit and agrees with the first.
    let (_, doc2) = http_post(addr, "/crosswalk", &body);
    assert_eq!(doc2.get("cache_hit"), Some(&Json::Bool(true)));
    assert_eq!(doc2.get("columns"), doc.get("columns"));

    server.shutdown();
}
