//! Streaming-ingest exactness tests: after any sequence of `/ingest`
//! batches, `/crosswalk` must answer **byte-identically** to a cold
//! server fed the concatenated points in one shot — the fold is a
//! split-invariant state merge and the cached prepared crosswalk is
//! refreshed through a bitwise-exact delta path, so the two servers are
//! observationally indistinguishable. The durable variant stops the
//! first server uncleanly (no checkpoint, WAL only — the on-disk state a
//! SIGKILL leaves behind) and requires the warm restart to keep the same
//! guarantee.

use geoalign_serve::{route, AppState, Json, Request};
use std::sync::Arc;

const ZIPS: [&str; 4] = ["z1", "z2", "z3", "z4"];

/// Point batches with duplicates (same point repeated within and across
/// batches) and out-of-region points (`zX`, `q9`) that must be skipped.
const BATCHES: [&[(&str, &str, f64)]; 3] = [
    &[
        ("z1", "A", 2.0),
        ("z1", "A", 2.0),
        ("z2", "B", 1.5),
        ("zX", "A", 9.0),
    ],
    &[
        ("z2", "B", 0.25),
        ("z3", "C", 4.0),
        ("z3", "B", 0.5),
        ("q9", "Q", 1.0),
    ],
    &[("z4", "C", 3.0), ("z1", "B", 1e-3), ("z2", "B", 1.5)],
];

fn request(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: String::new(),
        version: "HTTP/1.1".to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

fn post_ok(state: &AppState, path: &str, body: &str) -> Json {
    let r = route(state, &request("POST", path, body));
    assert_eq!(
        r.status,
        200,
        "POST {path}: {}",
        String::from_utf8_lossy(&r.body)
    );
    geoalign_serve::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap()
}

/// Registers the two systems and one static reference, through the same
/// HTTP handlers a client would use (so a durable state persists them).
fn register_world(state: &AppState) {
    post_ok(
        state,
        "/systems",
        r#"{"name":"zip","units":["z1","z2","z3","z4"]}"#,
    );
    post_ok(
        state,
        "/systems",
        r#"{"name":"county","units":["A","B","C"]}"#,
    );
    post_ok(
        state,
        "/references",
        r#"{"source":"zip","target":"county","name":"population",
           "entries":[["z1","A",120],["z1","B",40],["z2","B",75],
                      ["z3","B",10],["z3","C",90],["z4","C",55]]}"#,
    );
}

fn ingest_body(points: &[(&str, &str, f64)]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|(s, t, w)| format!(r#"["{s}","{t}",{w}]"#))
        .collect();
    format!(
        r#"{{"source":"zip","target":"county","attribute":"footfall","points":[{}]}}"#,
        items.join(",")
    )
}

/// One `/crosswalk` answer, reduced to the part that must be
/// byte-identical across servers (the `cache_hit` flag legitimately
/// differs between a streamed and a one-shot server).
fn crosswalk_columns(state: &AppState) -> String {
    let body = format!(
        r#"{{"source":"zip","target":"county","attributes":[{}]}}"#,
        ZIPS.iter()
            .enumerate()
            .map(|(i, _)| format!(
                r#"{{"name":"a{i}","values":[{},7.25,0.5,{}]}}"#,
                10.0 + i as f64,
                3.0 * (i + 1) as f64
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let doc = post_ok(state, "/crosswalk", &body);
    doc.get("columns").unwrap().to_string()
}

fn one_shot_columns() -> String {
    let state = AppState::new(8);
    register_world(&state);
    let all: Vec<(&str, &str, f64)> = BATCHES.iter().flat_map(|b| b.iter().copied()).collect();
    let doc = post_ok(&state, "/ingest", &ingest_body(&all));
    assert_eq!(doc.get("absorbed").unwrap().as_f64(), Some(9.0));
    assert_eq!(doc.get("skipped").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("incremental"), Some(&Json::Bool(false)));
    crosswalk_columns(&state)
}

#[test]
fn streamed_batches_match_one_shot_bitwise() {
    let streamed = AppState::new(8);
    register_world(&streamed);
    // Warm the cache so every fold exercises the incremental delta path
    // (a cold pair would just fall back to a full prepare later).
    crosswalk_columns(&streamed);
    for (i, batch) in BATCHES.iter().enumerate() {
        let doc = post_ok(&streamed, "/ingest", &ingest_body(batch));
        assert_eq!(
            doc.get("incremental"),
            Some(&Json::Bool(true)),
            "batch {i} must refresh the cached snapshot incrementally"
        );
        assert!(
            doc.get("touched_rows").unwrap().as_f64().unwrap() > 0.0,
            "batch {i} touched no design rows"
        );
        assert_eq!(doc.get("references_for_pair").unwrap().as_f64(), Some(2.0));
    }

    // Answered from the incrementally-maintained snapshot, not a
    // re-prepare: the lookup must hit the cache.
    let hits_before = streamed.cache.stats().hits;
    let streamed_columns = crosswalk_columns(&streamed);
    assert!(streamed.cache.stats().hits > hits_before);

    assert_eq!(
        streamed_columns,
        one_shot_columns(),
        "streamed /ingest answers diverged from the one-shot server"
    );
}

#[test]
fn warm_restart_after_unclean_stop_matches_one_shot() {
    let dir = std::env::temp_dir().join(format!("geoalign-serve-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_columns: String = {
        let state = AppState::open_durable(&dir, 8).unwrap();
        register_world(&state);
        crosswalk_columns(&state);
        for batch in &BATCHES {
            post_ok(&state, "/ingest", &ingest_body(batch));
        }
        let columns = crosswalk_columns(&state);
        state.durable().unwrap().flush();
        columns
        // Dropped without a checkpoint: the WAL alone carries the
        // registrations and rollups, as after a SIGKILL.
    };

    let warm: Arc<AppState> = AppState::open_durable(&dir, 8).unwrap();
    let warm_columns = crosswalk_columns(&warm);
    assert_eq!(
        warm_columns, cold_columns,
        "warm restart diverged from the server that ingested the stream"
    );
    assert_eq!(
        warm_columns,
        one_shot_columns(),
        "warm restart diverged from a cold one-shot server"
    );

    // The stream keeps going after the restart: the replayed slot
    // accepts the next fold in place, without a duplicate reference.
    let doc = post_ok(&warm, "/ingest", &ingest_body(BATCHES[0]));
    assert_eq!(doc.get("references_for_pair").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("total_points").unwrap().as_f64(), Some(12.0));

    std::fs::remove_dir_all(&dir).unwrap();
}
