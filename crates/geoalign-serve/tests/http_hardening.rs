//! Hostile-input and connection-lifecycle tests over real TCP sockets:
//! keep-alive reuse, oversized heads, pathological JSON nesting,
//! slowloris stalls, conflicting framing headers, and load-shedding when
//! the worker pool is saturated. Every scenario must come back as a
//! clean HTTP error — never a panic, a dead worker, or unbounded memory.

use geoalign_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One persistent client connection: writes go to the stream, responses
/// are framed by `Content-Length` so the socket can stay open.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(raw)
    }

    fn send(&mut self, method: &str, path: &str, body: &str, extra_headers: &str) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             {extra_headers}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(raw.as_bytes()).unwrap();
    }

    /// Reads exactly one response; the connection stays usable afterwards.
    fn read_response(&mut self) -> std::io::Result<ResponseView> {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("EOF mid-response head: {head:?}"),
                ));
            }
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {head}"));
        let header = |name: &str| -> Option<String> {
            head.lines().find_map(|l| {
                let (n, v) = l.split_once(':')?;
                n.eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
            })
        };
        let len: usize = header("Content-Length").unwrap().parse().unwrap();
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(ResponseView {
            status,
            connection: header("Connection").unwrap_or_default(),
            retry_after: header("Retry-After"),
            allow: header("Allow"),
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// True once the server has closed its half of the connection.
    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0))
    }
}

struct ResponseView {
    status: u16,
    connection: String,
    retry_after: Option<String>,
    allow: Option<String>,
    body: String,
}

fn serve(config: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", config).unwrap()
}

#[test]
fn one_connection_serves_many_requests_without_advertising_close() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());

    for i in 0..4 {
        client.send("GET", "/healthz", "", "");
        let reply = client.read_response().unwrap();
        assert_eq!(reply.status, 200, "request {i}: {}", reply.body);
        assert_eq!(
            reply.connection, "keep-alive",
            "request {i} must not advertise close"
        );
    }
    // The first request opens the connection; the next three reuse it.
    assert_eq!(server.state().metrics.keepalive_reuse.get(), 3);
    // Close the client first so the pinned worker unblocks on EOF
    // instead of holding shutdown until the idle timeout.
    drop(client);
    server.shutdown();
}

#[test]
fn unsupported_methods_get_405_with_allow() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());

    client.send("GET", "/ingest", "", "");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 405, "{}", reply.body);
    assert_eq!(reply.allow.as_deref(), Some("POST"));
    // The request was fully parsed, so — unlike protocol errors — the
    // connection stays open...
    assert_eq!(reply.connection, "keep-alive");

    // ...and keeps serving: a write-method probe of a read route names
    // the right verb, then a well-formed request succeeds.
    client.send("DELETE", "/metrics", "", "");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 405);
    assert_eq!(reply.allow.as_deref(), Some("GET"));

    client.send("GET", "/healthz", "", "");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.allow.is_none(), "2xx must not carry Allow");

    drop(client);
    server.shutdown();
}

#[test]
fn connection_close_is_honored_after_reuse() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());

    client.send("GET", "/healthz", "", "");
    assert_eq!(client.read_response().unwrap().connection, "keep-alive");

    client.send("GET", "/healthz", "", "Connection: close\r\n");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.connection, "close");
    assert!(client.at_eof(), "server must close after Connection: close");

    assert_eq!(server.state().metrics.keepalive_reuse.get(), 1);
    server.shutdown();
}

#[test]
fn the_request_cap_closes_a_connection_that_overstays() {
    let server = serve(ServerConfig {
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr());

    client.send("GET", "/healthz", "", "");
    assert_eq!(client.read_response().unwrap().connection, "keep-alive");
    client.send("GET", "/healthz", "", "");
    let second = client.read_response().unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.connection, "close", "request cap reached");
    assert!(client.at_eof());
    server.shutdown();
}

#[test]
fn oversized_heads_get_431_and_a_closed_connection() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());

    // One header alone blows the 64 KiB head budget.
    let mut raw = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    raw.resize(raw.len() + (80 << 10), b'a');
    client.send_raw(&raw).unwrap();

    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 431, "{}", reply.body);
    assert_eq!(reply.connection, "close");
    assert!(client.at_eof());
    assert_eq!(server.state().metrics.header_limit_rejections.get(), 1);

    // The worker that rejected the head is still alive for new work.
    let mut next = Client::connect(server.addr());
    next.send("GET", "/healthz", "", "");
    assert_eq!(next.read_response().unwrap().status, 200);
    drop(next);
    server.shutdown();
}

#[test]
fn hostile_json_nesting_is_rejected_and_the_worker_survives() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());

    let bomb = "[".repeat(100_000);
    client.send("POST", "/crosswalk", &bomb, "");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("depth limit"), "{}", reply.body);
    assert!(server.state().metrics.depth_limit_rejections.get() >= 1);

    // The body was framed correctly, so the SAME connection still works.
    client.send("GET", "/healthz", "", "");
    assert_eq!(client.read_response().unwrap().status, 200);
    drop(client);
    server.shutdown();
}

#[test]
fn a_stalled_request_head_times_out_with_408() {
    let server = serve(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr());

    // Slowloris: open a request and then go quiet mid-head.
    client.send_raw(b"GET /healthz HTT").unwrap();
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 408, "{}", reply.body);
    assert_eq!(reply.connection, "close");
    assert!(client.at_eof());
    assert_eq!(server.state().metrics.timeouts.get(), 1);
    server.shutdown();
}

#[test]
fn an_idle_connection_is_reaped_silently() {
    let server = serve(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr());
    client.send("GET", "/healthz", "", "");
    assert_eq!(client.read_response().unwrap().status, 200);

    // No follow-up request: the server closes without writing anything
    // (an idle peer is not an error, so no 408 and no counter bump).
    assert!(client.at_eof());
    assert_eq!(server.state().metrics.timeouts.get(), 0);
    server.shutdown();
}

#[test]
fn conflicting_content_lengths_are_rejected_over_tcp() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());
    client
        .send_raw(
            b"POST /crosswalk HTTP/1.1\r\nHost: t\r\n\
              Content-Length: 4\r\nContent-Length: 7\r\n\r\nabcd",
        )
        .unwrap();
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("Content-Length"), "{}", reply.body);
    assert_eq!(reply.connection, "close");
    server.shutdown();
}

#[test]
fn a_saturated_pool_sheds_new_connections_with_503() {
    // One worker, zero queue slots: a submit succeeds only while the
    // worker is parked waiting for work.
    let server = serve(ServerConfig {
        workers: 1,
        max_connections: 0,
        ..ServerConfig::default()
    });

    // Pin the only worker with a keep-alive connection. Reading the
    // response proves the worker picked it up and is now blocked in the
    // connection loop.
    let mut pin = Client::connect(server.addr());
    pin.send("GET", "/healthz", "", "");
    assert_eq!(pin.read_response().unwrap().status, 200);

    // Every further connection must be shed by the accept thread.
    let mut shed = Client::connect(server.addr());
    let reply = shed.read_response().unwrap();
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert_eq!(reply.connection, "close");
    assert_eq!(reply.retry_after.as_deref(), Some("1"));
    assert!(shed.at_eof());
    assert!(server.state().metrics.shed.get() >= 1);

    // Release the worker; the next connection is admitted again.
    pin.send("GET", "/healthz", "", "Connection: close\r\n");
    assert_eq!(pin.read_response().unwrap().status, 200);
    drop(pin);
    // The worker needs a moment to return to the queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(server.addr());
        retry.send("GET", "/healthz", "", "Connection: close\r\n");
        match retry.read_response() {
            Ok(r) if r.status == 200 => break,
            Ok(_) | Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(r) => panic!("worker never freed: last status {}", r.status),
            Err(e) => panic!("worker never freed: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_a_parked_connection_within_the_idle_timeout() {
    let server = serve(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr());
    client.send("GET", "/healthz", "", "");
    assert_eq!(client.read_response().unwrap().connection, "keep-alive");

    // Shut down while the client still holds its connection open: the
    // pinned worker wakes on the idle timeout and exits, so the join
    // completes in bounded time instead of hanging on the open socket.
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    assert!(client.at_eof());
}

#[test]
fn a_slow_loris_gets_408_without_delaying_a_fast_client() {
    // One compute worker: if the loris cost a thread (or a worker), the
    // fast client would feel it. Under the reactor it costs a slab slot.
    let server = serve(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // The loris: one header byte every 100ms, forever (or until 408).
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let head = b"GET /healthz HTTP/1.1\r\nX-Slow: ";
        let t0 = std::time::Instant::now();
        for byte in head.iter().cycle() {
            if s.write_all(&[*byte]).is_err() {
                break; // server gave up on us — expected
            }
            std::thread::sleep(Duration::from_millis(100));
            if t0.elapsed() > Duration::from_secs(8) {
                panic!("loris was never cut off");
            }
        }
        let mut reply = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match s.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => reply.extend_from_slice(&chunk[..n]),
            }
        }
        (String::from_utf8_lossy(&reply).into_owned(), t0.elapsed())
    });

    // Meanwhile the fast client must see ordinary latencies: the loris
    // holds no worker, so p99 stays a round-trip, not an idle-timeout.
    std::thread::sleep(Duration::from_millis(100)); // let the loris start
    let mut fast = Client::connect(addr);
    let mut worst = Duration::ZERO;
    for _ in 0..50 {
        let t0 = std::time::Instant::now();
        fast.send("GET", "/healthz", "", "");
        assert_eq!(fast.read_response().unwrap().status, 200);
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_millis(250),
        "fast client's worst round-trip {worst:?} suggests the loris held a worker"
    );

    let (reply, cut_after) = loris.join().unwrap();
    assert!(reply.contains("408"), "loris should be told 408: {reply:?}");
    assert!(
        cut_after < Duration::from_secs(5),
        "loris outlived the head-stall budget: {cut_after:?}"
    );
    assert_eq!(server.state().metrics.timeouts.get(), 1);
    drop(fast);
    server.shutdown();
}

#[test]
fn a_thousand_idle_connections_fit_without_a_thousand_threads() {
    fn resident_threads() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    // Default worker count, explicit connection headroom: the acceptance
    // bar is 1000 parked keep-alive connections with no per-connection
    // threads while the server still answers.
    let server = serve(ServerConfig {
        max_connections: 1100,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let before = resident_threads();

    let mut parked = Vec::with_capacity(1000);
    for i in 0..1000 {
        let mut c = Client::connect(addr);
        c.send("GET", "/healthz", "", "");
        assert_eq!(c.read_response().unwrap().status, 200, "conn {i}");
        parked.push(c); // keep-alive: the connection stays open, idle
    }
    assert_eq!(server.state().metrics.open_connections.get(), 1000);

    let after = resident_threads();
    assert!(
        after <= before + 5,
        "1000 idle connections grew the thread count {before} -> {after}"
    );

    // The server still serves promptly through the parked crowd.
    let mut fast = Client::connect(addr);
    for _ in 0..10 {
        let t0 = std::time::Instant::now();
        fast.send("GET", "/healthz", "", "");
        assert_eq!(fast.read_response().unwrap().status, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "foreground request slowed to {:?} behind idle connections",
            t0.elapsed()
        );
    }

    drop(parked);
    drop(fast);
    server.shutdown();
}

#[test]
fn accept_and_sockopt_error_counters_are_exported() {
    let server = serve(ServerConfig::default());
    let mut client = Client::connect(server.addr());
    client.send("GET", "/metrics?format=prometheus", "", "");
    let reply = client.read_response().unwrap();
    assert_eq!(reply.status, 200);
    for metric in [
        "geoalign_serve_accept_errors_total",
        "geoalign_serve_sockopt_errors_total",
        "geoalign_serve_open_connections",
        "geoalign_serve_poll_wakeups_total",
        "geoalign_serve_readiness_events_total",
    ] {
        assert!(
            reply.body.contains(metric),
            "{metric} missing from exposition:\n{}",
            reply.body
        );
    }
    // Nothing errored in this healthy exchange.
    assert!(reply.body.contains("geoalign_serve_accept_errors_total 0"));
    assert!(reply.body.contains("geoalign_serve_sockopt_errors_total 0"));
    drop(client);
    server.shutdown();
}
