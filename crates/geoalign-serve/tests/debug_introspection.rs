//! Real-TCP tests of the `/debug` introspection suite: the
//! `--debug-endpoints` gate, the sampling profiler endpoint capturing
//! the pipeline's hot phases, and the spans/slow/threads views.

use geoalign_core::{GeoAlign, IntegrationPipeline, ReferenceData};
use geoalign_geom::Interval;
use geoalign_partition::{AggregateVector, DisaggregationMatrix, IntervalUnitSystem, Overlay};
use geoalign_serve::{AppState, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn populated_state() -> Arc<AppState> {
    let mut pipeline = IntegrationPipeline::new();
    pipeline.register_system("zip", ["z1", "z2", "z3"]);
    pipeline.register_system("county", ["A", "B"]);
    let dm = DisaggregationMatrix::from_triples(
        "population",
        3,
        2,
        [(0, 0, 100.0), (1, 0, 60.0), (1, 1, 40.0), (2, 1, 80.0)],
    )
    .unwrap();
    pipeline
        .register_reference(
            "zip",
            "county",
            ReferenceData::from_dm("population", dm).unwrap(),
        )
        .unwrap();
    AppState::with_pipeline(pipeline, 8)
}

fn send(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    send(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn crosswalk_request() -> String {
    let body =
        r#"{"source":"zip","target":"county","attributes":[{"name":"steam","values":[10,20,30]}]}"#;
    format!(
        "POST /crosswalk HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn debug_config() -> ServerConfig {
    ServerConfig {
        debug_endpoints: true,
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn debug_endpoints_are_gated_off_by_default() {
    let server =
        Server::bind_with_state("127.0.0.1:0", ServerConfig::default(), populated_state()).unwrap();
    let addr = server.addr();
    // Indistinguishable from an unknown route: same 404, no hint that
    // the introspection suite exists.
    for path in [
        "/debug/profile",
        "/debug/spans",
        "/debug/slow",
        "/debug/threads",
        "/debug",
        "/debug/nonsense",
    ] {
        let reply = get(addr, path);
        assert!(reply.starts_with("HTTP/1.1 404"), "{path}: {reply}");
    }
    server.shutdown();
}

/// A synthetic pipeline big enough that its phases survive between
/// profiler sweeps: 16 references over 2000 source x 200 target units,
/// so the Gram build and the dense solver both take sampleable time.
fn pipeline_load() -> (Vec<ReferenceData>, AggregateVector) {
    let mut state = 20180326u64;
    let mut lcg = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let (n_source, n_target) = (2000usize, 200usize);
    let refs: Vec<ReferenceData> = (0..16)
        .map(|k| {
            let mut triples = Vec::new();
            for i in 0..n_source {
                let j = (lcg() * n_target as f64) as usize % n_target;
                triples.push((i, j, 0.5 + lcg() * 99.5));
                triples.push((i, (j + 1) % n_target, 0.5 + lcg() * 99.5));
            }
            triples.sort_by_key(|t| (t.0, t.1));
            triples.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
            let dm =
                DisaggregationMatrix::from_triples(format!("ref{k}"), n_source, n_target, triples)
                    .unwrap();
            ReferenceData::from_dm(format!("ref{k}"), dm).unwrap()
        })
        .collect();
    let objective = AggregateVector::new(
        "load",
        (0..n_source).map(|_| lcg() * 100.0).collect::<Vec<_>>(),
    )
    .unwrap();
    (refs, objective)
}

/// Two interval systems with enough bins that the overlay merge is
/// sampleable.
fn overlay_load() -> (IntervalUnitSystem, IntervalUnitSystem) {
    let bins = |n: usize, name: &str| {
        let units: Vec<Interval> = (0..n)
            .map(|i| Interval::new(i as f64, (i + 1) as f64).unwrap())
            .collect();
        IntervalUnitSystem::new(name, units).unwrap()
    };
    (bins(4_000, "fine"), bins(400, "coarse"))
}

#[test]
fn debug_profile_names_the_pipelines_hot_phases() {
    let server = Server::bind_with_state("127.0.0.1:0", debug_config(), populated_state()).unwrap();
    let addr = server.addr();

    // Keep the pipeline hot from a worker thread while /debug/profile
    // samples: the profiler is process-global, so any thread's spans
    // land in the collapsed stacks — exactly what an operator gets when
    // profiling a server under real load.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (refs, objective) = pipeline_load();
            let ref_slices: Vec<&ReferenceData> = refs.iter().collect();
            let (fine, coarse) = overlay_load();
            while !stop.load(Ordering::Relaxed) {
                // gram (inside prepare) and apply: the snapshot path.
                let prepared = GeoAlign::new().prepare(&ref_slices).unwrap();
                let _ = prepared.apply(&objective).unwrap();
                // solver: the one-shot estimate path solves the dense
                // least-squares system — O(n x refs^2) inside the span.
                let _ = GeoAlign::new().estimate(&objective, &ref_slices).unwrap();
                // overlay: the partition-intersection phase.
                let _ = Overlay::intervals(&fine, &coarse).unwrap();
            }
        })
    };

    // A little real HTTP traffic so server-side request spans exist too.
    let reply = send(addr, &crosswalk_request());
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");

    // Sampling is statistical: accumulate 1-second profiles until every
    // phase has been caught on a stack (a few seconds at 2 kHz).
    let want = ["overlay", "gram", "solver", "apply"];
    let mut collapsed = String::new();
    for _ in 0..12 {
        let reply = get(addr, "/debug/profile?seconds=1&hz=2000");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("Content-Type: text/plain"), "{reply}");
        assert!(reply.contains("X-Profile-Sweeps:"), "{reply}");
        let body = reply.split("\r\n\r\n").nth(1).unwrap_or("");
        collapsed.push_str(body);
        collapsed.push('\n');
        if want.iter().all(|p| collapsed.contains(p)) {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    load.join().unwrap();

    assert!(!collapsed.trim().is_empty(), "empty profile");
    for phase in want {
        assert!(
            collapsed.contains(phase),
            "phase '{phase}' never sampled; collapsed stacks:\n{collapsed}"
        );
    }
    // Collapsed-stack shape: every line is `thread;span;... count`.
    for line in collapsed.lines().filter(|l| !l.trim().is_empty()) {
        let (stack, count) = line.rsplit_once(' ').expect("count column");
        assert!(!stack.is_empty(), "{line}");
        assert!(count.parse::<u64>().is_ok(), "{line}");
    }

    server.shutdown();
}

#[test]
fn debug_suite_reports_cost_spans_slow_and_threads() {
    let server = Server::bind_with_state("127.0.0.1:0", debug_config(), populated_state()).unwrap();
    let addr = server.addr();

    // Every response carries the request's resource accounting; a cold
    // /crosswalk touches real rows and cells.
    let reply = send(addr, &crosswalk_request());
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    let cost = reply
        .lines()
        .find_map(|l| l.strip_prefix("X-Cost: "))
        .expect("X-Cost header")
        .trim()
        .to_owned();
    for key in ["rows=", "cells=", "tasks=", "alloc_bytes="] {
        assert!(cost.contains(key), "{cost}");
    }
    let rows: u64 = cost
        .split(';')
        .find_map(|kv| kv.strip_prefix("rows="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rows > 0, "cold /crosswalk should count rows: {cost}");

    // /debug/spans: the recent-span ring has the crosswalk's phases.
    let spans = get(addr, "/debug/spans");
    assert!(spans.starts_with("HTTP/1.1 200 OK"), "{spans}");
    assert!(spans.contains(r#""count":"#), "{spans}");
    assert!(spans.contains(r#""name":"prepare""#), "{spans}");

    // /debug/slow: the crosswalk request with its full span tree.
    let slow = get(addr, "/debug/slow");
    assert!(slow.starts_with("HTTP/1.1 200 OK"), "{slow}");
    assert!(slow.contains(r#""path":"/crosswalk""#), "{slow}");
    assert!(slow.contains(r#""trace_id":"#), "{slow}");
    assert!(slow.contains(r#""duration_micros":"#), "{slow}");

    // /debug/threads: pool counters and the thread budget.
    let threads = get(addr, "/debug/threads");
    assert!(threads.starts_with("HTTP/1.1 200 OK"), "{threads}");
    for key in [
        r#""pool""#,
        r#""submitted""#,
        r#""queue_depth""#,
        r#""exec_threads""#,
        r#""hardware_threads""#,
    ] {
        assert!(threads.contains(key), "{threads}");
    }

    // Wrong method on a known debug route: 405 with Allow, not 404.
    let reply = send(
        addr,
        "POST /debug/threads HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
    assert!(reply.contains("Allow: GET"), "{reply}");

    server.shutdown();
}
