//! Spin up a geoalign-serve instance on an ephemeral port, register two
//! unit systems and two references over HTTP, then crosswalk a batch of
//! attribute vectors in a single request and print the realigned columns.
//!
//! ```text
//! cargo run -p geoalign-serve --example batch_crosswalk
//! ```

use geoalign_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: example\r\nContent-Type: application/json\r\n\
         Connection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw.split("\r\n\r\n").nth(1).unwrap_or("").to_owned()
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    request(addr, "POST", path, body)
}

fn main() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();
    println!("serving on http://{addr}");

    // Two unit systems: four zips crosswalked onto three counties.
    post(
        addr,
        "/systems",
        r#"{"name":"zip","units":["z1","z2","z3","z4"]}"#,
    );
    post(
        addr,
        "/systems",
        r#"{"name":"county","units":["A","B","C"]}"#,
    );

    // Two references with known zip→county disaggregations.
    post(
        addr,
        "/references",
        r#"{"source":"zip","target":"county","name":"population",
            "entries":[["z1","A",120],["z1","B",40],["z2","B",75],
                       ["z3","B",10],["z3","C",90],["z4","C",55]]}"#,
    );
    post(
        addr,
        "/references",
        r#"{"source":"zip","target":"county","name":"households",
            "entries":[["z1","A",50],["z2","A",5],["z2","B",30],
                       ["z3","C",42],["z4","B",8],["z4","C",12]]}"#,
    );

    // One batch request: three attributes realigned with a single
    // prepared crosswalk (the second run of this example would hit the
    // snapshot cache).
    let body = r#"{"source":"zip","target":"county","attributes":[
        {"name":"crimes","values":[16,7.5,10,5.5]},
        {"name":"permits","values":[0,12,0,9]},
        {"name":"outages","values":[5,5,5,5]}]}"#;
    let reply = post(addr, "/crosswalk", body);
    let doc = geoalign_serve::json::parse(&reply).unwrap();

    let units = doc.get("target_units").unwrap().as_array().unwrap();
    println!("cache_hit: {:?}", doc.get("cache_hit").unwrap());
    for col in doc.get("columns").unwrap().as_array().unwrap() {
        let name = col.get("name").unwrap().as_str().unwrap();
        let values = col.get("values").unwrap().as_array().unwrap();
        print!("{name:>10}:");
        for (u, v) in units.iter().zip(values) {
            print!("  {}={:.3}", u.as_str().unwrap(), v.as_f64().unwrap());
        }
        println!();
    }

    let metrics = request(addr, "GET", "/metrics", "");
    println!("metrics: {metrics}");
    server.shutdown();
}
